"""Legacy setup shim: this environment lacks the `wheel` package, so the
PEP 660 editable-install path is unavailable; `setup.py develop` works."""
from setuptools import setup

setup()
