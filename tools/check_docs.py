#!/usr/bin/env python
"""Docs link check: every relative markdown link must resolve.

Scans the repo's user-facing markdown (``README.md`` and ``docs/``,
plus any extra paths given on the command line) for inline links and
images — ``[text](target)`` — and fails (exit 1) when a relative
target does not exist on disk.  External links (``http://``,
``https://``, ``mailto:``) are listed but not fetched: CI must not
depend on the network, and a renamed file is the regression this guard
is for.  ``#fragment`` suffixes are stripped before the existence
check; pure-fragment links (``(#section)``) are skipped.

Usage::

    python tools/check_docs.py            # README.md + docs/*.md
    python tools/check_docs.py FILE...    # explicit file list
"""

from __future__ import annotations

import glob
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Inline markdown link/image: [text](target) / ![alt](target).
#: Targets with spaces + titles ("path 'title'") keep only the path.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+[\"'][^)]*[\"'])?\)")

SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def default_files():
    files = []
    readme = os.path.join(REPO_ROOT, "README.md")
    if os.path.exists(readme):
        files.append(readme)
    files.extend(sorted(glob.glob(os.path.join(REPO_ROOT, "docs", "*.md"))))
    return files


def check_file(path: str):
    """Yield ``(line_no, target)`` for every broken relative link."""
    base = os.path.dirname(os.path.abspath(path))
    with open(path, encoding="utf-8") as fh:
        in_code = False
        for line_no, line in enumerate(fh, 1):
            # Fenced code blocks hold example snippets, not links.
            if line.lstrip().startswith("```"):
                in_code = not in_code
                continue
            if in_code:
                continue
            for match in LINK.finditer(line):
                target = match.group(1)
                if target.startswith(SCHEMES) or target.startswith("#"):
                    continue
                target = target.split("#", 1)[0]
                resolved = os.path.normpath(os.path.join(base, target))
                if not os.path.exists(resolved):
                    yield line_no, match.group(1)


def main(argv=None) -> int:
    files = (argv if argv else sys.argv[1:]) or default_files()
    if not files:
        print("check_docs: no markdown files found", file=sys.stderr)
        return 1
    broken = 0
    checked = 0
    for path in files:
        for line_no, target in check_file(path):
            rel = os.path.relpath(path, REPO_ROOT)
            print(f"check_docs: {rel}:{line_no}: broken link -> {target}")
            broken += 1
        checked += 1
    if broken:
        print(f"check_docs: FAIL — {broken} broken link(s) across "
              f"{checked} file(s)")
        return 1
    print(f"check_docs: OK — {checked} file(s), all relative links "
          "resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
