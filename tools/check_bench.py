#!/usr/bin/env python
"""Bench-regression gate: fail CI when a smoke run regresses a baseline.

Turns the ``BENCH_*.json`` trajectory from a log into a gate: CI runs
each benchmark in smoke mode (writing ``/tmp/bench_*_ci.json``) and this
script compares the smoke entry against the committed baseline entry,
**failing the job** (exit code 1) when any recorded timing regressed by
more than the threshold::

    python tools/check_bench.py BENCH_substrate.json /tmp/bench_ci.json \
        --current-label ci

What counts as a recorded timing
--------------------------------
Both entries are walked recursively and compared on the **intersection**
of their paths — a key absent from the baseline (a metric this PR
introduced) is skipped silently, and a gated key absent from the
current run (a smoke that only exercises a subset, e.g.
``bench_explainers --only`` or ``bench_serve --executor process``) is
skipped with a **stderr warning**, so lost bench coverage shows up in
the job log instead of passing silently.  Pass ``--strict-missing`` to
promote that warning to a failure — the right setting for smokes that
run the full benchmark, where a missing gated key means coverage was
actually lost, not subset.  Of the shared numeric leaves
only two shapes gate, chosen because they are per-unit rates that stay
comparable when the smoke run shrinks the workload:

* ``seconds`` / ``*ms_per_image`` / ``*ms_per_map`` / ``*_p95_ms`` /
  ``*_p99_ms`` — timings, **lower is better**: fail when
  ``current > threshold * baseline``.  The tail-percentile suffixes
  gate the SLO harness (``bench_slo``): per-class p95/p99 latencies are
  per-request values that stay comparable when the smoke trace shrinks,
  so a scheduling regression that fattens the interactive tail fails CI
  even when mean throughput looks fine.  Medians (``*_p50_ms``) record
  but do not gate — at smoke scale they sit within loop jitter.
* ``*_rps`` — throughput, **higher is better**: fail when
  ``current < baseline / threshold``.  This suffix rule picks up new
  rate metrics with no changes here — e.g. ``bench_serve``'s nested
  ``transport`` section contributes ``transport.shm_rps`` and
  ``transport.pipe_rps`` (the shm-vs-pipe A/B at batch 16)
  automatically.

Workload-scale-dependent values (counts, totals like
``blocked_ms_total``, ratios like ``*_speedup``) never gate, and
neither do ``offered_rps`` (reject-policy submission speed — it
measures exception overhead, not serving capacity; ``served_rps``
gates in its place) nor ``tier1_warm_rps`` (microsecond-scale memory
hits — loop jitter, not store behaviour; the cold and tier-2 rates
gate in its place).

The threshold knob
------------------
``--threshold`` (default **2.5**) is deliberately loose: the committed
baselines were recorded on a developer box and CI runners differ in
clock speed, BLAS build, and core count, so the gate catches
order-of-magnitude regressions (an accidentally quadratic path, a
dropped fast path, a serialization stall) rather than machine noise.
Tighten it once baselines are recorded on CI hardware; loosen it per
invocation if a runner class proves noisier.

Exit codes: 0 all gated metrics within threshold (or nothing to
compare), 1 at least one regression, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Iterator, Tuple

#: Leaf-key shapes that gate, and their direction.
def _classify(key: str) -> str:
    """'time' (lower better), 'rate' (higher better), or '' (ignored)."""
    if key == "seconds" or key.endswith("ms_per_image") \
            or key.endswith("ms_per_map"):
        return "time"
    if key.endswith("_p95_ms") or key.endswith("_p99_ms"):
        # Tail latencies from the SLO harness: per-request values, so
        # they gate across workload scales just like per-unit timings.
        # p50 deliberately ungated (jitter-bound at smoke scale).
        return "time"
    if key == "offered_rps":
        # Producer-side submission speed under policy="reject": most
        # submits raise immediately, so the number measures exception
        # overhead and loop noise, not serving capacity.  served_rps
        # gates instead.
        return ""
    if key == "tier1_warm_rps":
        # In-memory cache hits dispatch in microseconds, so at smoke
        # scale this rate is dominated by interpreter loop jitter (it
        # swings 2-3x between back-to-back runs on one machine).  The
        # store paths gate instead: cold_rps (compute + write-behind)
        # and tier2_warm_rps (mmap read).
        return ""
    if key.endswith("_rps"):
        return "rate"
    return ""


def _numeric_leaves(node, path=()) -> Iterator[Tuple[Tuple[str, ...],
                                                     float]]:
    if isinstance(node, dict):
        for key, value in node.items():
            yield from _numeric_leaves(value, path + (str(key),))
    elif isinstance(node, bool):
        return
    elif isinstance(node, (int, float)):
        yield path, float(node)


def compare(baseline: Dict, current: Dict,
            threshold: float) -> Tuple[list, list, list]:
    """Returns ``(regressions, checked, missing)`` comparing two label
    entries; ``missing`` lists gated baseline keys the current run did
    not record (lost bench coverage — warned, never failed, since smoke
    runs legitimately exercise subsets)."""
    base_leaves = dict(_numeric_leaves(baseline))
    cur_leaves = dict(_numeric_leaves(current))
    missing = [".".join(path) for path in base_leaves
               if _classify(path[-1]) and path not in cur_leaves]
    regressions, checked = [], []
    for path, cur in cur_leaves.items():
        kind = _classify(path[-1])
        if not kind or path not in base_leaves:
            continue                      # skip keys absent from baseline
        base = base_leaves[path]
        dotted = ".".join(path)
        if base <= 0 or cur <= 0:
            continue                      # degenerate timings can't gate
        if kind == "time":
            ratio = cur / base
            ok = ratio <= threshold
            direction = "slower"
        else:
            ratio = base / cur
            ok = ratio <= threshold
            direction = "lower throughput"
        checked.append((dotted, base, cur, ratio, ok))
        if not ok:
            regressions.append(
                f"  {dotted}: {cur:g} vs baseline {base:g} "
                f"({ratio:.2f}x {direction}, threshold {threshold}x)")
    return regressions, checked, missing


def self_check() -> int:
    """Unit-test the gating rules in-process (``--self-check``).

    CI runs this before using the gate, so a rule edit that silently
    stops gating (or starts gating a scale-dependent key) fails the job
    at the tool itself rather than masking a perf regression later."""
    cases = [
        # (key, expected class)
        ("seconds", "time"),
        ("warm_ms_per_image", "time"),
        ("gradcam_ms_per_map", "time"),
        ("interactive_p95_ms", "time"),
        ("bulk_p99_ms", "time"),
        ("interactive_p50_ms", ""),       # medians never gate
        ("p95_ms_total", ""),             # suffix, not substring
        ("served_rps", "rate"),
        ("offered_rps", ""),
        ("tier1_warm_rps", ""),
        ("deadline_miss_rate", ""),
        ("n_requests", ""),
    ]
    failures = [f"  _classify({key!r}) = {_classify(key)!r}, "
                f"expected {want!r}"
                for key, want in cases if _classify(key) != want]
    base = {"slo": {"interactive_p95_ms": 10.0, "served_rps": 100.0,
                    "n_requests": 500}}
    # 3x slower tail fails at 2.5x; missing rate key reports missing.
    regs, checked, missing = compare(
        base, {"slo": {"interactive_p95_ms": 30.0}}, 2.5)
    if len(regs) != 1 or len(checked) != 1:
        failures.append(f"  3x p95 regression not caught: {regs!r}")
    if missing != ["slo.served_rps"]:
        failures.append(f"  missing-key detection wrong: {missing!r}")
    # Within threshold passes; count keys never compare.
    regs, checked, _ = compare(
        base, {"slo": {"interactive_p95_ms": 19.0, "served_rps": 80.0,
                       "n_requests": 7}}, 2.5)
    if regs or len(checked) != 2:
        failures.append(f"  in-threshold run misjudged: regressions="
                        f"{regs!r} checked={len(checked)}")
    if failures:
        print("check_bench --self-check: FAILED", file=sys.stderr)
        print("\n".join(failures), file=sys.stderr)
        return 1
    print(f"check_bench --self-check: OK "
          f"({len(cases)} classifier cases, 3 compare scenarios)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a bench smoke regresses its baseline "
                    "(see module docstring for what gates and why).")
    parser.add_argument("baseline", nargs="?",
                        help="committed BENCH_*.json")
    parser.add_argument("current", nargs="?",
                        help="freshly-written smoke JSON")
    parser.add_argument("--self-check", action="store_true",
                        help="run the built-in unit checks of the "
                        "gating rules and exit (no input files)")
    parser.add_argument("--baseline-label", default="current",
                        help="entry in the baseline file (default: "
                        "'current', the latest committed run)")
    parser.add_argument("--current-label", default="ci",
                        help="entry in the current file (default: 'ci')")
    parser.add_argument("--threshold", type=float, default=2.5,
                        help="regression factor that fails the job "
                        "(default 2.5; see docstring before tightening)")
    parser.add_argument("--strict-missing", action="store_true",
                        help="fail (exit 1) when a gated baseline metric "
                        "is absent from the current run, instead of "
                        "warning.  Use for smokes that run the full "
                        "benchmark; leave off for deliberate subsets "
                        "(--only, --executor)")
    args = parser.parse_args()

    if args.self_check:
        return self_check()
    if not args.baseline or not args.current:
        parser.error("baseline and current are required "
                     "(unless --self-check)")

    try:
        with open(args.baseline) as fh:
            baseline_doc = json.load(fh)
        with open(args.current) as fh:
            current_doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_bench: cannot read inputs: {exc}", file=sys.stderr)
        return 2
    if args.baseline_label not in baseline_doc:
        print(f"check_bench: baseline {args.baseline} has no "
              f"{args.baseline_label!r} entry — nothing to gate")
        return 0
    if args.current_label not in current_doc:
        print(f"check_bench: current {args.current} has no "
              f"{args.current_label!r} entry", file=sys.stderr)
        return 2

    regressions, checked, missing = compare(
        baseline_doc[args.baseline_label],
        current_doc[args.current_label], args.threshold)
    print(f"check_bench: {args.current} [{args.current_label}] vs "
          f"{args.baseline} [{args.baseline_label}] — "
          f"{len(checked)} gated metrics, threshold {args.threshold}x")
    for dotted, base, cur, ratio, ok in checked:
        flag = "   " if ok else "FAIL"
        print(f"  {flag} {dotted}: {cur:g} vs {base:g} ({ratio:.2f}x)")
    if missing:
        # A gated baseline metric the current run never recorded: under
        # --strict-missing that is lost bench coverage and fails the
        # job; without it (smokes that deliberately cover a subset via
        # --only/--executor) it stays a loud warning.
        severity = "ERROR" if args.strict_missing else "WARNING"
        print(f"check_bench: {severity} — {len(missing)} gated baseline "
              "metric(s) absent from the current run "
              + ("(failed: --strict-missing):" if args.strict_missing
                 else "(not failed; verify the smoke still covers what "
                      "it should):"),
              file=sys.stderr)
        for dotted in missing:
            print(f"  missing {dotted}", file=sys.stderr)
    if regressions:
        print(f"check_bench: {len(regressions)} regression(s):",
              file=sys.stderr)
        print("\n".join(regressions), file=sys.stderr)
        return 1
    if missing and args.strict_missing:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
