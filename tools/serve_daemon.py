#!/usr/bin/env python
"""Run the ``repro.serve`` HTTP/JSON daemon over a demo engine.

This is the network entry point for the serving stack: it builds an
:class:`~repro.serve.ExplainEngine` (seeded demo classifier +
explainers from :func:`~repro.serve.demo_spec` — swap in a real spec
for a trained model), wraps it in :func:`repro.serve.http.serve`, and
handles SIGTERM/SIGINT with the graceful sequence the engine's
``close()`` contract defines: stop admitting (new POSTs get 503),
drain every queued/in-flight request so outstanding tickets resolve,
then stop the listener and exit 0.

Usage::

    PYTHONPATH=src python tools/serve_daemon.py --port 8787 \
        --api-key secret1=acme:4 --api-key secret2=globex

    curl -s -X POST localhost:8787/v1/explain \
        -H 'X-API-Key: secret1' -H 'Content-Type: application/json' \
        -d '{"method": "gradcam", "encoding": "list",
             "image": [[[0.1, 0.9], [0.5, 0.2]]]}'

Flags fall back to ``REPRO_SERVE_*`` environment knobs (flag wins):
``REPRO_SERVE_HOST``, ``REPRO_SERVE_PORT``, ``REPRO_SERVE_EXECUTOR``,
``REPRO_SERVE_WORKERS``, ``REPRO_SERVE_API_KEYS`` (comma-separated
``KEY=TENANT[:QUOTA]`` entries), ``REPRO_SERVE_STORE`` (persistent
saliency store directory).  See docs/operations.md for the full
operator guide.

On startup the daemon prints one machine-readable ready line::

    READY http://127.0.0.1:8787 methods=gradcam,occlusion

— the CI smoke job and the subprocess tests wait for it before sending
traffic.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.serve import ExplainEngine, SaliencyStore, demo_spec, make_executor  # noqa: E402
from repro.serve.http import ApiKey, ServiceConfig, serve  # noqa: E402


def parse_api_key(entry: str) -> tuple:
    """``KEY=TENANT[:QUOTA]`` -> ``(key, ApiKey)``."""
    try:
        key, rest = entry.split("=", 1)
        if ":" in rest:
            tenant, quota = rest.rsplit(":", 1)
            info = ApiKey(tenant, int(quota))
        else:
            info = ApiKey(rest)
        if not key or not info.tenant:
            raise ValueError
        return key, info
    except ValueError:
        raise SystemExit(
            f"bad --api-key {entry!r}: expected KEY=TENANT[:QUOTA]")


def build_parser() -> argparse.ArgumentParser:
    env = os.environ.get
    p = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.ArgumentDefaultsHelpFormatter)
    p.add_argument("--host", default=env("REPRO_SERVE_HOST", "127.0.0.1"),
                   help="bind address (loopback by default; this daemon "
                        "expects a proxy in front for anything else)")
    p.add_argument("--port", type=int,
                   default=int(env("REPRO_SERVE_PORT", "8787")),
                   help="bind port (0 = ephemeral, printed on the READY "
                        "line)")
    p.add_argument("--methods", default="gradcam,occlusion",
                   help="comma-separated demo explainer methods")
    p.add_argument("--executor",
                   default=env("REPRO_SERVE_EXECUTOR", "threaded"),
                   choices=("serial", "threaded", "process"),
                   help="compute executor behind the engine")
    p.add_argument("--workers", type=int,
                   default=int(env("REPRO_SERVE_WORKERS", "0")) or None,
                   help="executor worker count (default: executor's own)")
    p.add_argument("--max-batch", type=int, default=16,
                   help="micro-batch size limit")
    p.add_argument("--max-delay-ms", type=float, default=25.0,
                   help="micro-batch flush deadline")
    p.add_argument("--max-pending", type=int, default=256,
                   help="global admission bound on unresolved requests")
    p.add_argument("--policy", default="reject",
                   choices=("block", "reject"),
                   help="global admission policy when max-pending is hit "
                        "(a network daemon should reject -> 503, not tie "
                        "up handler threads)")
    p.add_argument("--tenant-quota", type=int, default=None,
                   help="default per-tenant unresolved-request slice "
                        "(429 + Retry-After past it); per-key quotas "
                        "override")
    p.add_argument("--api-key", action="append", default=None,
                   metavar="KEY=TENANT[:QUOTA]",
                   help="repeatable API key entry; with none, the "
                        "service is open (anonymous tenant)")
    p.add_argument("--store", default=env("REPRO_SERVE_STORE"),
                   help="directory for the persistent saliency store "
                        "(warm restarts); default: cache only")
    p.add_argument("--cache-size", type=int, default=512,
                   help="in-memory saliency cache capacity (entries)")
    p.add_argument("--seed", type=int, default=0,
                   help="demo engine weight seed")
    p.add_argument("--linger-s", type=float, default=0.5,
                   help="window between drain and listener shutdown in "
                        "which clients can still collect resolved "
                        "tickets")
    p.add_argument("--verbose", action="store_true",
                   help="log one line per request to stderr")
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    methods = tuple(m.strip() for m in args.methods.split(",") if m.strip())
    spec = demo_spec(methods, seed=args.seed)
    classifier, explainers = spec.materialize()
    executor = make_executor(args.executor, spec=spec, workers=args.workers)
    store = SaliencyStore(args.store) if args.store else None

    api_keys = None
    if args.api_key is None and os.environ.get("REPRO_SERVE_API_KEYS"):
        args.api_key = [e for e in
                        os.environ["REPRO_SERVE_API_KEYS"].split(",") if e]
    if args.api_key:
        api_keys = dict(parse_api_key(entry) for entry in args.api_key)

    engine = ExplainEngine(
        classifier, explainers,
        max_batch=args.max_batch, max_delay_ms=args.max_delay_ms,
        cache_size=args.cache_size,
        max_pending=args.max_pending, policy=args.policy,
        tenant_quota=args.tenant_quota,
        executor=executor, store=store)

    daemon = serve(engine, args.host, args.port,
                   ServiceConfig(api_keys=api_keys, verbose=args.verbose))
    print(f"READY {daemon.url} methods={','.join(sorted(methods))}",
          flush=True)

    done = threading.Event()

    def _graceful(signum, frame):
        del frame
        print(f"signal {signum}: draining", file=sys.stderr, flush=True)
        done.set()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    # Timed wait, not a bare wait(): the kernel may deliver the signal
    # to any thread, and a main thread parked in an untimed lock
    # acquire never re-enters the interpreter to run the Python-level
    # handler.  Waking periodically bounds the drain response to the
    # interval no matter which thread caught the signal.
    while not done.wait(0.5):
        pass

    # Graceful sequence: refuse new POSTs, resolve everything in
    # flight (tickets become deliverable), linger so pollers can
    # collect, stop the listener, release the engine (which drains
    # again, harmlessly, then closes the executor/store).
    daemon.drain()
    if args.linger_s > 0:
        time.sleep(args.linger_s)
    daemon.shutdown()
    engine.close()
    print("STOPPED", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
