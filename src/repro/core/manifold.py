"""The class-associated manifold: global explanation structure.

After CAE training, every sample's CS code lives in a low-dimensional
space where classes form separable regions (Section III.E, Fig. 5).
This module maintains the code bank, plans guided transition paths
toward counter classes, interpolates codes along paths, resamples the
manifold with SMOTE, and projects it to 2-D for visualisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..ml import PCA, TSNE, smote_sample


@dataclass
class TransitionPath:
    """A guided path in the class-associated space.

    ``codes[0]`` is the exemplar's own CS code; ``codes[-1]`` lies in the
    counter-class region.  Intermediate codes are linear interpolates
    ("dragged" codes in the paper's Fig. 11 terminology).
    """

    codes: np.ndarray            # (steps, cs_dim)
    source_label: int
    target_label: int

    @property
    def steps(self) -> int:
        return len(self.codes)


class ClassAssociatedManifold:
    """Code bank + path planning over the learned CS space."""

    def __init__(self, codes: np.ndarray, labels: np.ndarray):
        codes = np.asarray(codes, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if len(codes) != len(labels):
            raise ValueError("codes and labels must have equal length")
        if len(codes) == 0:
            raise ValueError("manifold needs at least one code")
        self.codes = codes
        self.labels = labels
        self.classes = tuple(int(c) for c in np.unique(labels))
        self._centroids: Dict[int, np.ndarray] = {
            c: codes[labels == c].mean(axis=0) for c in self.classes}

    # ------------------------------------------------------------------
    @property
    def cs_dim(self) -> int:
        return self.codes.shape[1]

    def centroid(self, label: int) -> np.ndarray:
        """Mean CS code of one class region."""
        return self._centroids[int(label)]

    def codes_of_class(self, label: int) -> np.ndarray:
        return self.codes[self.labels == int(label)]

    def counter_classes(self, label: int) -> Tuple[int, ...]:
        return tuple(c for c in self.classes if c != int(label))

    # ------------------------------------------------------------------
    def nearest_counter_code(self, code: np.ndarray,
                             target_label: int) -> np.ndarray:
        """The target-class bank code closest to ``code`` — the "nearly
        shortest class-flipping path" endpoint the paper credits for
        skipping local traps."""
        bank = self.codes_of_class(target_label)
        d2 = ((bank - code[None]) ** 2).sum(axis=1)
        return bank[int(d2.argmin())]

    def plan_path(self, code: np.ndarray, source_label: int,
                  target_label: int, steps: int = 8,
                  endpoint: str = "nearest") -> TransitionPath:
        """Plan a guided linear transition path to the counter class.

        ``endpoint`` selects the path destination: ``"nearest"`` (closest
        counter-class code — default, shortest flip), ``"centroid"``
        (class centre), or ``"random"`` handled by callers for the
        unguided ablation.
        """
        code = np.asarray(code, dtype=np.float64)
        if endpoint == "nearest":
            dest = self.nearest_counter_code(code, target_label)
        elif endpoint == "centroid":
            dest = self.centroid(target_label)
        else:
            raise ValueError(f"unknown endpoint strategy {endpoint!r}")
        t = np.linspace(0.0, 1.0, steps)[:, None]
        codes = code[None] * (1 - t) + dest[None] * t
        return TransitionPath(codes, int(source_label), int(target_label))

    def interpolate(self, code_from: np.ndarray, code_to: np.ndarray,
                    steps: int = 8) -> np.ndarray:
        """Evenly-spaced linear interpolation between two CS codes."""
        t = np.linspace(0.0, 1.0, steps)[:, None]
        return np.asarray(code_from)[None] * (1 - t) \
            + np.asarray(code_to)[None] * t

    # ------------------------------------------------------------------
    def smote_codes(self, label: int, n_samples: int, k: int = 5,
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """SMOTE-resample new codes on the class-``label`` manifold
        contour (Section IV.F.3)."""
        return smote_sample(self.codes_of_class(label), n_samples, k=k,
                            rng=rng)

    # ------------------------------------------------------------------
    def project(self, method: str = "pca", extra_codes: Optional[np.ndarray] = None,
                seed: int = 0, perplexity: float = 20.0) -> np.ndarray:
        """Project the bank (plus optional extra codes) to 2-D.

        Returns an array of shape (n_bank [+ n_extra], 2).
        """
        stack = self.codes if extra_codes is None else \
            np.vstack([self.codes, np.asarray(extra_codes)])
        if method == "pca":
            return PCA(2).fit_transform(stack)
        if method == "tsne":
            return TSNE(n_components=2, perplexity=perplexity,
                        seed=seed).fit_transform(stack)
        raise ValueError(f"unknown projection method {method!r}")

    # ------------------------------------------------------------------
    def separation_score(self) -> float:
        """Silhouette-style class-separation score in [-1, 1].

        Mean over samples of (nearest-other-centroid distance − own
        centroid distance) / max of the two; positive means classes are
        separated.  Used to compare CAE vs ICAM manifolds quantitatively
        alongside the Fig. 8 visualisation.
        """
        scores = []
        for code, label in zip(self.codes, self.labels):
            own = np.linalg.norm(code - self.centroid(int(label)))
            others = [np.linalg.norm(code - self.centroid(c))
                      for c in self.counter_classes(int(label))]
            nearest = min(others)
            denom = max(own, nearest, 1e-12)
            scores.append((nearest - own) / denom)
        return float(np.mean(scores))
