"""Building-Block Coherency Feature Extraction (BBCFE) training step.

Section III.C of the paper: random cross-class pairs are encoded, their
class-associated codes are swapped, and the resulting chimeric samples
are penalised by the discriminator unless the swap cleanly transfers the
class.  Over many random pairings this drives class-associated features
out of the individual (IS) space and into the class (CS) space.

The two-round schema of Fig. 4 is implemented verbatim:

    round 1:  (c_A, s_A), (c_B, s_B)  --swap-->  x'_A = G(c_B, s_A),
                                                 x'_B = G(c_A, s_B)
    re-encode: (c'_A, s'_A) = E(x'_A)  with  c'_A ~ c_B,  s'_A ~ s_A
    round 2:  x''_A = G(c_A, s'_A) ~ x_A   (cycle closure)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from .. import nn
from ..config import LossWeights
from ..data import ImageDataset
from . import losses as L
from .networks import Decoder, Discriminator, Encoder


@dataclass
class StepLosses:
    """Per-step loss values, keyed like the paper's equations."""

    recon_image: float
    recon_cs: float
    recon_is: float
    cyclic: float
    adv_gen: float
    cls_gen: float
    total_gen: float
    adv_disc: float
    cls_disc: float
    total_disc: float

    def as_dict(self) -> Dict[str, float]:
        return self.__dict__.copy()


class PairSampler:
    """Yield random cross-class batch pairs (the m x n pairing of BBCFE).

    Multi-class tasks are handled 1-vs-1 as in the paper: each pair draws
    two distinct classes and samples one image from each.
    """

    def __init__(self, dataset: ImageDataset,
                 rng: Optional[np.random.Generator] = None):
        self.dataset = dataset
        self.rng = rng or np.random.default_rng()
        self._by_class = {int(c): dataset.indices_of_class(int(c))
                          for c in np.unique(dataset.labels)}
        if len(self._by_class) < 2:
            raise ValueError("BBCFE needs at least two classes")
        self.classes = sorted(self._by_class)
        # Padded (num_classes, max_count) member-index matrix + counts so
        # that sample() is a handful of vectorized draws, not a per-item
        # python loop.
        counts = np.array([len(self._by_class[c]) for c in self.classes])
        members = np.zeros((len(self.classes), int(counts.max())), dtype=int)
        for row, c in enumerate(self.classes):
            members[row, :counts[row]] = self._by_class[c]
        self._member_counts = counts
        self._member_matrix = members

    def sample(self, batch_size: int
               ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return (x_A, y_A, x_B, y_B) with y_A[i] != y_B[i] for all i."""
        k = len(self.classes)
        # Uniform ordered distinct class pairs: row_b = row_a + offset mod k.
        row_a = self.rng.integers(k, size=batch_size)
        row_b = (row_a + self.rng.integers(1, k, size=batch_size)) % k
        # Uniform member of each drawn class via the padded index matrix.
        idx_a = self._member_matrix[row_a,
                                    self.rng.integers(self._member_counts[row_a])]
        idx_b = self._member_matrix[row_b,
                                    self.rng.integers(self._member_counts[row_b])]
        return (self.dataset.images[idx_a], self.dataset.labels[idx_a],
                self.dataset.images[idx_b], self.dataset.labels[idx_b])


def generator_step(encoder: Encoder, decoder: Decoder,
                   discriminator: Discriminator,
                   x_a: np.ndarray, y_a: np.ndarray,
                   x_b: np.ndarray, y_b: np.ndarray,
                   weights: LossWeights) -> Tuple[nn.Tensor, Dict[str, float]]:
    """Compute the generator objective of eq (7) for one batch pair.

    Returns the scalar loss tensor (ready for ``backward``) and a dict of
    detached component values.
    """
    ta, tb = nn.Tensor(x_a), nn.Tensor(x_b)
    cs_a, is_a = encoder(ta)
    cs_b, is_b = encoder(tb)

    # Eq (1): plain reconstruction of both samples.
    recon_a = decoder(cs_a, is_a)
    recon_b = decoder(cs_b, is_b)
    loss_recon = L.recon_image_loss(recon_a, ta) \
        + L.recon_image_loss(recon_b, tb)

    # Round-1 swap: synthetic samples with switched class assignments.
    fake_a = decoder(cs_b, is_a)    # expected class y_B
    fake_b = decoder(cs_a, is_b)    # expected class y_A

    # Re-encode the synthetic samples.
    cs_fake_a, is_fake_a = encoder(fake_a)
    cs_fake_b, is_fake_b = encoder(fake_b)

    # Eq (2): class-code consistency (c'_A ~ c_B, c'_B ~ c_A).
    loss_cs = L.recon_class_code_loss(cs_fake_a, cs_b) \
        + L.recon_class_code_loss(cs_fake_b, cs_a)
    # Eq (3): individual-code consistency (s'_A ~ s_A, s'_B ~ s_B).
    loss_is = L.recon_individual_code_loss(is_fake_a, is_a) \
        + L.recon_individual_code_loss(is_fake_b, is_b)

    # Eq (4): round-2 swap-back recovers the originals.
    cycle_a = decoder(cs_a, is_fake_a)
    cycle_b = decoder(cs_b, is_fake_b)
    loss_cyc = L.cyclic_loss(cycle_a, ta) + L.cyclic_loss(cycle_b, tb)

    # Eqs (5) and (6): fool Dr, satisfy Dc with the swapped labels.
    dr_fake_a, dc_fake_a = discriminator(fake_a)
    dr_fake_b, dc_fake_b = discriminator(fake_b)
    loss_adv = L.generator_adversarial_loss(dr_fake_a) \
        + L.generator_adversarial_loss(dr_fake_b)
    loss_cls = L.generator_classification_loss(dc_fake_a, y_b) \
        + L.generator_classification_loss(dc_fake_b, y_a)

    total = (weights.lambda1 * loss_recon + weights.lambda2 * loss_cs
             + weights.lambda3 * loss_is + weights.lambda4 * loss_cyc
             + weights.lambda5 * loss_adv + weights.lambda6 * loss_cls)
    components = {
        "recon_image": loss_recon.item(), "recon_cs": loss_cs.item(),
        "recon_is": loss_is.item(), "cyclic": loss_cyc.item(),
        "adv_gen": loss_adv.item(), "cls_gen": loss_cls.item(),
        "total_gen": total.item(),
        "fake_a": fake_a.data, "fake_b": fake_b.data,
    }
    return total, components


def discriminator_step(discriminator: Discriminator,
                       x_a: np.ndarray, y_a: np.ndarray,
                       x_b: np.ndarray, y_b: np.ndarray,
                       fake_a: np.ndarray, fake_b: np.ndarray,
                       weights: LossWeights
                       ) -> Tuple[nn.Tensor, Dict[str, float]]:
    """Compute the discriminator objective of eq (10) for one batch pair.

    ``fake_*`` are detached synthetic images from the generator step.
    """
    dr_fake_a, _ = discriminator(nn.Tensor(fake_a))
    dr_fake_b, _ = discriminator(nn.Tensor(fake_b))
    dr_real_a, dc_real_a = discriminator(nn.Tensor(x_a))
    dr_real_b, dc_real_b = discriminator(nn.Tensor(x_b))

    # Eq (8) in both swap directions.
    loss_adv = L.discriminator_adversarial_loss(dr_fake_a, dr_real_b) \
        + L.discriminator_adversarial_loss(dr_fake_b, dr_real_a)
    # Eq (9) on real images only.
    loss_cls = L.discriminator_classification_loss(dc_real_a, y_a) \
        + L.discriminator_classification_loss(dc_real_b, y_b)

    total = weights.phi1 * loss_adv + weights.phi2 * loss_cls
    return total, {"adv_disc": loss_adv.item(), "cls_disc": loss_cls.item(),
                   "total_disc": total.item()}


def bbcfe_step(encoder: Encoder, decoder: Decoder,
               discriminator: Discriminator,
               gen_optimizer: nn.Optimizer, disc_optimizer: nn.Optimizer,
               sampler: PairSampler, batch_size: int,
               weights: LossWeights) -> StepLosses:
    """One full BBCFE iteration: generator update then discriminator update."""
    x_a, y_a, x_b, y_b = sampler.sample(batch_size)

    gen_loss, parts = generator_step(encoder, decoder, discriminator,
                                     x_a, y_a, x_b, y_b, weights)
    encoder.zero_grad()
    decoder.zero_grad()
    discriminator.zero_grad()
    gen_loss.backward()
    gen_optimizer.step()

    fake_a = parts.pop("fake_a")
    fake_b = parts.pop("fake_b")
    disc_loss, disc_parts = discriminator_step(
        discriminator, x_a, y_a, x_b, y_b, fake_a, fake_b, weights)
    discriminator.zero_grad()
    disc_loss.backward()
    disc_optimizer.step()

    return StepLosses(
        recon_image=parts["recon_image"], recon_cs=parts["recon_cs"],
        recon_is=parts["recon_is"], cyclic=parts["cyclic"],
        adv_gen=parts["adv_gen"], cls_gen=parts["cls_gen"],
        total_gen=parts["total_gen"], adv_disc=disc_parts["adv_disc"],
        cls_disc=disc_parts["cls_disc"],
        total_disc=disc_parts["total_disc"])
