"""CAE training loop driving BBCFE iterations."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import nn
from ..config import ReproConfig
from ..data import ImageDataset
from .bbcfe import PairSampler, bbcfe_step
from .model import CAEModel


@dataclass
class CAETrainHistory:
    steps: List[Dict[str, float]] = field(default_factory=list)
    wall_time: float = 0.0

    def series(self, key: str) -> np.ndarray:
        return np.asarray([s[key] for s in self.steps])


class CAETrainer:
    """Adam-driven BBCFE training (paper: lr 1e-4, weight decay 1e-4)."""

    def __init__(self, model: CAEModel, config: Optional[ReproConfig] = None,
                 rng: Optional[np.random.Generator] = None):
        self.model = model
        self.config = config or model.config
        cfg = self.config
        gen_params = (model.encoder.parameters()
                      + model.decoder.parameters())
        self.gen_optimizer = nn.Adam(gen_params, lr=cfg.lr,
                                     weight_decay=cfg.weight_decay)
        self.disc_optimizer = nn.Adam(model.discriminator.parameters(),
                                      lr=cfg.lr,
                                      weight_decay=cfg.weight_decay)
        self.rng = rng or np.random.default_rng(cfg.seed)
        self.history = CAETrainHistory()

    def fit(self, dataset: ImageDataset, iterations: int = 200,
            batch_size: int = 8, verbose: bool = False,
            log_every: int = 20) -> CAETrainHistory:
        """Run ``iterations`` BBCFE steps of random cross-class pairing."""
        sampler = PairSampler(dataset, rng=self.rng)
        self.model.train()
        start = time.perf_counter()
        for step in range(iterations):
            step_losses = bbcfe_step(
                self.model.encoder, self.model.decoder,
                self.model.discriminator, self.gen_optimizer,
                self.disc_optimizer, sampler, batch_size,
                self.config.loss_weights)
            self.history.steps.append(step_losses.as_dict())
            if verbose and (step + 1) % log_every == 0:
                d = step_losses.as_dict()
                print(f"step {step + 1}/{iterations} "
                      f"gen={d['total_gen']:.3f} disc={d['total_disc']:.3f} "
                      f"recon={d['recon_image']:.3f} cls={d['cls_gen']:.3f}")
        self.history.wall_time = time.perf_counter() - start
        self.model.eval()
        return self.history


def train_cae(dataset: ImageDataset, iterations: int = 200,
              batch_size: int = 8, config: Optional[ReproConfig] = None,
              verbose: bool = False) -> CAEModel:
    """Convenience: build and BBCFE-train a CAE model on ``dataset``."""
    model = CAEModel(num_classes=dataset.num_classes, config=config)
    trainer = CAETrainer(model, config=config)
    trainer.fit(dataset, iterations=iterations, batch_size=batch_size,
                verbose=verbose)
    return model
