"""CAE networks: paired-code encoder, decoder, and two-head discriminator.

Follows Section III.B of the paper (Fig. 2):

* One **encoder** with a shared trunk and two heads — ``Ec`` produces the
  class-associated (CS) code, a low-dimensional vector (8-d by default,
  matching the paper), and ``Es`` produces the individual-style (IS)
  code, a spatial tensor at 1/4 resolution (the paper uses 256x64x64 for
  256x256 inputs; we keep the same 1/4 ratio).  The shared trunk realises
  the paper's "shared latent layers in the encoded network" through which
  features penalised out of the IS space migrate into the CS space.
* A **decoder** ``G(c, s)`` that combines any CS/IS pair into an image,
  conditioning on the CS code via FiLM-style feature modulation plus a
  broadcast concatenation.
* A **discriminator** with a real/fake head ``Dr`` and a class head
  ``Dc`` computed from a shared convolutional body (the paper notes the
  target black-box classifier could also serve as ``Dc``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .. import nn
from ..nn import functional as F


class Encoder(nn.Module):
    """Shared-trunk encoder producing (CS code, IS code)."""

    def __init__(self, in_channels: int = 1, base_channels: int = 16,
                 cs_dim: int = 8, image_size: int = 32, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        c = base_channels
        self.cs_dim = cs_dim
        self.image_size = image_size
        # Shared trunk: full res -> 1/2 res.
        self.trunk_conv = nn.Conv2d(in_channels, c, 3, padding=1, rng=rng)
        self.trunk_norm = nn.InstanceNorm2d(c)
        self.trunk_down = nn.DownBlock(c, c * 2, rng=rng)          # 1/2
        # IS head: 1/2 -> 1/4, keeps spatial structure.
        self.is_down = nn.DownBlock(c * 2, c * 2, rng=rng)         # 1/4
        self.is_res = nn.ResidualBlock(c * 2, rng=rng)
        # CS head: 1/2 -> 1/4 -> 1/8 -> pooled vector.
        self.cs_down1 = nn.DownBlock(c * 2, c * 2, rng=rng)        # 1/4
        self.cs_down2 = nn.DownBlock(c * 2, c * 4, rng=rng)        # 1/8
        self.cs_fc = nn.Linear(c * 4, cs_dim, rng=rng)

    def forward(self, x: nn.Tensor) -> Tuple[nn.Tensor, nn.Tensor]:
        """Return ``(cs_code, is_code)`` for a batch of images."""
        h = self.trunk_norm(self.trunk_conv(x)).leaky_relu(0.2)
        h = self.trunk_down(h)
        is_code = self.is_res(self.is_down(h))
        g = self.cs_down2(self.cs_down1(h))
        cs_code = self.cs_fc(F.global_avg_pool2d(g))
        return cs_code, is_code

    def encode_class(self, x: nn.Tensor) -> nn.Tensor:
        """``Ec``: class-associated code only."""
        return self.forward(x)[0]

    def encode_individual(self, x: nn.Tensor) -> nn.Tensor:
        """``Es``: individual-style code only."""
        return self.forward(x)[1]


class Decoder(nn.Module):
    """Decoder ``G(c, s)``: IS spatial code modulated by the CS vector.

    The CS code enters twice: as FiLM scale/shift on the fused features
    (strong, spatially-uniform class conditioning — suitable because
    class-associated patterns must be *pervasive*, i.e. transferable to
    any background) and as a broadcast plane concatenated to the IS code
    (letting early layers route class evidence spatially).
    """

    def __init__(self, out_channels: int = 1, base_channels: int = 16,
                 cs_dim: int = 8, image_size: int = 32, seed: int = 1):
        super().__init__()
        rng = np.random.default_rng(seed)
        c = base_channels
        self.cs_dim = cs_dim
        self.fuse = nn.Conv2d(c * 2 + cs_dim, c * 2, 3, padding=1, rng=rng)
        self.fuse_norm = nn.InstanceNorm2d(c * 2)
        self.film = nn.Linear(cs_dim, c * 4, rng=rng)   # per-channel (γ, β)
        self.res = nn.ResidualBlock(c * 2, rng=rng)
        self.up1 = nn.UpBlock(c * 2, c * 2, rng=rng)    # 1/4 -> 1/2
        self.up2 = nn.UpBlock(c * 2, c, rng=rng)        # 1/2 -> full
        self.out_conv = nn.Conv2d(c, out_channels, 3, padding=1, rng=rng)

    def forward(self, cs_code: nn.Tensor, is_code: nn.Tensor) -> nn.Tensor:
        n, _, h, w = is_code.shape
        plane = cs_code.reshape(n, self.cs_dim, 1, 1)
        ones = nn.Tensor(np.ones((n, self.cs_dim, h, w),
                                 dtype=is_code.dtype))
        plane = plane * ones                           # broadcast to spatial
        fused = nn.Tensor.concat([is_code, plane], axis=1)
        fused = self.fuse_norm(self.fuse(fused)).relu()

        film = self.film(cs_code)                      # (N, 2C)
        c2 = fused.shape[1]
        gamma = film[:, :c2].reshape(n, c2, 1, 1)
        beta = film[:, c2:].reshape(n, c2, 1, 1)
        fused = fused * (gamma + 1.0) + beta

        out = self.up2(self.up1(self.res(fused)))
        return self.out_conv(out).sigmoid()


class Discriminator(nn.Module):
    """Shared-body discriminator with real/fake (Dr) and class (Dc) heads."""

    def __init__(self, in_channels: int = 1, base_channels: int = 16,
                 num_classes: int = 2, seed: int = 2):
        super().__init__()
        rng = np.random.default_rng(seed)
        c = base_channels
        self.num_classes = num_classes
        self.down1 = nn.DownBlock(in_channels, c, rng=rng, norm=False)
        self.down2 = nn.DownBlock(c, c * 2, rng=rng)
        self.down3 = nn.DownBlock(c * 2, c * 4, rng=rng)
        self.real_head = nn.Linear(c * 4, 2, rng=rng)
        self.class_head = nn.Linear(c * 4, num_classes, rng=rng)

    def forward(self, x: nn.Tensor) -> Tuple[nn.Tensor, nn.Tensor]:
        """Return ``(Dr logits, Dc logits)``."""
        h = self.down3(self.down2(self.down1(x)))
        pooled = F.global_avg_pool2d(h)
        return self.real_head(pooled), self.class_head(pooled)
