"""The CAE loss functions, equations (1)-(10) of the paper.

Each function is named after its equation and documented with the
equation it implements, so the training step in :mod:`repro.core.bbcfe`
reads one-to-one against Section III.D.
"""

from __future__ import annotations

import numpy as np

from .. import nn


def recon_image_loss(decoded: nn.Tensor, original: nn.Tensor) -> nn.Tensor:
    """Eq (1): ``E[ || G(Ec(x), Es(x)) - x ||_1 ]`` — plain encode-decode
    reconstruction without any CS swap."""
    return nn.l1_loss(decoded, original)


def recon_class_code_loss(reencoded_cs: nn.Tensor,
                          original_cs: nn.Tensor) -> nn.Tensor:
    """Eq (2): ``E[ || Ec(G(c_A, s_B)) - c_A ||_1 ]`` — the class code
    survives decoding with a foreign individual code.  Together with eq
    (3) this enforces the homeomorphic (topology-maintaining) property of
    the embedding."""
    return nn.l1_loss(reencoded_cs, original_cs)


def recon_individual_code_loss(reencoded_is: nn.Tensor,
                               original_is: nn.Tensor) -> nn.Tensor:
    """Eq (3): ``E[ || Es(G(c_B, s_A)) - s_A ||_1 ]`` — the individual
    code survives decoding with a foreign class code."""
    return nn.l1_loss(reencoded_is, original_is)


def cyclic_loss(second_round: nn.Tensor, original: nn.Tensor) -> nn.Tensor:
    """Eq (4): ``E[ || G(c_A, Es(G(c_B, s_A))) - x_A ||_1 ]`` — the
    two-round swap cycle recovers the original sample."""
    return nn.l1_loss(second_round, original)


def generator_adversarial_loss(dr_logits_fake: nn.Tensor) -> nn.Tensor:
    """Eq (5): generator-side adversarial loss; the synthetic sample
    ``G(c_B, s_A)`` should be scored *real* (index 1) by ``Dr``."""
    return nn.binary_real_fake_loss(dr_logits_fake, is_real=True)


def generator_classification_loss(dc_logits_fake: nn.Tensor,
                                  target_labels: np.ndarray) -> nn.Tensor:
    """Eq (6): the synthetic sample must be assigned the *swapped* class
    ``y_B`` by ``Dc``."""
    return nn.cross_entropy(dc_logits_fake, target_labels)


def discriminator_adversarial_loss(dr_logits_fake: nn.Tensor,
                                   dr_logits_real: nn.Tensor) -> nn.Tensor:
    """Eq (8): discriminator-side adversarial loss — fakes scored index 0,
    reals scored index 1."""
    return nn.binary_real_fake_loss(dr_logits_fake, is_real=False) \
        + nn.binary_real_fake_loss(dr_logits_real, is_real=True)


def discriminator_classification_loss(dc_logits_real: nn.Tensor,
                                      labels: np.ndarray) -> nn.Tensor:
    """Eq (9): ``Dc`` classifies *real* images into their true class (the
    paper feeds only real images to the classification head)."""
    return nn.cross_entropy(dc_logits_real, labels)
