"""``repro.core`` — Class Association Embedding, the paper's contribution.

* :class:`CAEModel` — encoder/decoder/discriminator bundle with the
  encode / decode / swap public API.
* :class:`CAETrainer` / :func:`train_cae` — BBCFE training.
* :class:`ClassAssociatedManifold` — the global explanation structure:
  code bank, guided transition paths, SMOTE resampling, 2-D projection.
"""

from .bbcfe import PairSampler, StepLosses, bbcfe_step
from .manifold import ClassAssociatedManifold, TransitionPath
from .model import CAEModel
from .networks import Decoder, Discriminator, Encoder
from .trainer import CAETrainer, CAETrainHistory, train_cae

__all__ = [
    "CAEModel", "CAETrainer", "CAETrainHistory", "train_cae",
    "ClassAssociatedManifold", "TransitionPath",
    "Encoder", "Decoder", "Discriminator",
    "PairSampler", "StepLosses", "bbcfe_step",
]
