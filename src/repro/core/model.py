"""High-level CAE model API: encode, decode, swap, synthesize, persist."""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..config import ReproConfig
from ..data import ImageDataset
from .manifold import ClassAssociatedManifold
from .networks import Decoder, Discriminator, Encoder


class CAEModel:
    """Class Association Embedding model (encoder + decoder + discriminator).

    The public surface used by explainers and benchmarks:

    * :meth:`encode` / :meth:`encode_class` / :meth:`encode_individual`
    * :meth:`decode` — decode arbitrary (CS, IS) combinations
    * :meth:`swap_codes` — BBCFE-style cross-sample recombination
    * :meth:`build_manifold` — CS code bank for a dataset
    * :meth:`save` / :meth:`load`
    """

    def __init__(self, num_classes: int, config: Optional[ReproConfig] = None):
        self.config = config or ReproConfig()
        cfg = self.config
        self.num_classes = num_classes
        self.encoder = Encoder(cfg.channels, cfg.base_channels, cfg.cs_dim,
                               cfg.image_size, seed=cfg.seed)
        self.decoder = Decoder(cfg.channels, cfg.base_channels, cfg.cs_dim,
                               cfg.image_size, seed=cfg.seed + 1)
        self.discriminator = Discriminator(cfg.channels, cfg.base_channels,
                                           num_classes, seed=cfg.seed + 2)

    # ------------------------------------------------------------------
    def eval(self) -> "CAEModel":
        self.encoder.eval()
        self.decoder.eval()
        self.discriminator.eval()
        return self

    def train(self) -> "CAEModel":
        self.encoder.train()
        self.decoder.train()
        self.discriminator.train()
        return self

    # ------------------------------------------------------------------
    def encode(self, images: np.ndarray,
               batch_size: int = 64) -> Tuple[np.ndarray, np.ndarray]:
        """Encode images into (CS codes, IS codes) numpy arrays."""
        images = np.asarray(images, dtype=nn.get_default_dtype())
        if images.ndim == 3:
            images = images[None]
        cs_out, is_out = [], []
        with nn.no_grad():
            for start in range(0, len(images), batch_size):
                cs, is_code = self.encoder(
                    nn.Tensor(images[start:start + batch_size]))
                cs_out.append(cs.data)
                is_out.append(is_code.data)
        return np.concatenate(cs_out), np.concatenate(is_out)

    def encode_class(self, images: np.ndarray) -> np.ndarray:
        """``Ec``: CS codes only."""
        return self.encode(images)[0]

    def encode_individual(self, images: np.ndarray) -> np.ndarray:
        """``Es``: IS codes only."""
        return self.encode(images)[1]

    def decode(self, cs_codes: np.ndarray, is_codes: np.ndarray,
               batch_size: int = 64) -> np.ndarray:
        """Decode (CS, IS) code combinations into images.

        Broadcasting: a single IS code may be paired with many CS codes
        and vice versa.
        """
        cs_codes = np.asarray(cs_codes, dtype=nn.get_default_dtype())
        is_codes = np.asarray(is_codes, dtype=nn.get_default_dtype())
        if cs_codes.ndim == 1:
            cs_codes = cs_codes[None]
        if is_codes.ndim == 3:
            is_codes = is_codes[None]
        if len(cs_codes) == 1 and len(is_codes) > 1:
            cs_codes = np.repeat(cs_codes, len(is_codes), axis=0)
        if len(is_codes) == 1 and len(cs_codes) > 1:
            is_codes = np.repeat(is_codes, len(cs_codes), axis=0)
        outputs = []
        with nn.no_grad():
            for start in range(0, len(cs_codes), batch_size):
                img = self.decoder(
                    nn.Tensor(cs_codes[start:start + batch_size]),
                    nn.Tensor(is_codes[start:start + batch_size]))
                outputs.append(img.data)
        return np.concatenate(outputs)

    def reconstruct(self, images: np.ndarray) -> np.ndarray:
        """Encode-decode round trip without code manipulation."""
        cs, is_codes = self.encode(images)
        return self.decode(cs, is_codes)

    def swap_codes(self, images_a: np.ndarray,
                   images_b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Swap CS codes between two image batches.

        Returns ``(G(c_B, s_A), G(c_A, s_B))`` — each output keeps one
        batch's individual style with the other's class features.
        """
        cs_a, is_a = self.encode(images_a)
        cs_b, is_b = self.encode(images_b)
        return self.decode(cs_b, is_a), self.decode(cs_a, is_b)

    # ------------------------------------------------------------------
    def build_manifold(self, dataset: ImageDataset) -> ClassAssociatedManifold:
        """Encode a dataset's CS codes into a manifold object."""
        codes = self.encode_class(dataset.images)
        return ClassAssociatedManifold(codes, dataset.labels)

    # ------------------------------------------------------------------
    def discriminator_class_proba(self, images: np.ndarray) -> np.ndarray:
        """Class probabilities from the Dc head (used in training checks)."""
        from ..nn import functional as F
        images = np.asarray(images, dtype=nn.get_default_dtype())
        with nn.no_grad():
            _, dc = self.discriminator(nn.Tensor(images))
            return F.softmax(dc, axis=-1).data

    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Persist all three networks under ``directory``."""
        os.makedirs(directory, exist_ok=True)
        nn.save_state(self.encoder, os.path.join(directory, "encoder.npz"))
        nn.save_state(self.decoder, os.path.join(directory, "decoder.npz"))
        nn.save_state(self.discriminator,
                      os.path.join(directory, "discriminator.npz"))

    def load(self, directory: str) -> "CAEModel":
        nn.load_state(self.encoder, os.path.join(directory, "encoder.npz"))
        nn.load_state(self.decoder, os.path.join(directory, "decoder.npz"))
        nn.load_state(self.discriminator,
                      os.path.join(directory, "discriminator.npz"))
        return self
