"""Synthetic brain-MRI tumor datasets (paper: Br35H and BraTS-derived).

Two binary datasets, as in the paper:

* ``brain_tumor1`` (Br35H analog) — balanced, brighter T1-like contrast.
* ``brain_tumor2`` (BraTS analog) — imbalanced (many more tumor scans),
  T2-like contrast with stronger texture and a darker tumor rim.

Individual factors: skull size/eccentricity/rotation, ventricle geometry,
cortical texture.  Class-associated factor: a tumor mass (bright core
with ring enhancement) at a random in-brain location, plus mild midline
shift for large tumors.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from . import painting as P

CLASS_NAMES = ("NO_TUMOR", "TUMOR")


def _individual(rng: np.random.Generator, size: int) -> Dict:
    return {
        "cy": size * rng.uniform(0.46, 0.54),
        "cx": size * rng.uniform(0.46, 0.54),
        "ry": size * rng.uniform(0.34, 0.42),
        "rx": size * rng.uniform(0.28, 0.36),
        "angle": rng.uniform(-0.25, 0.25),
        "vent_gap": size * rng.uniform(0.04, 0.08),
        "vent_size": size * rng.uniform(0.05, 0.09),
        "texture_seed": rng.integers(0, 2 ** 31),
        "brightness": rng.uniform(0.55, 0.75),
    }


def render(ind: Dict, label: int, rng: np.random.Generator, size: int,
           variant: int = 1) -> Tuple[np.ndarray, np.ndarray]:
    """Render one axial brain slice and its tumor mask.

    ``variant`` selects the acquisition style (1 = Br35H-like,
    2 = BraTS-like).
    """
    brain = P.ellipse_mask(size, ind["cy"], ind["cx"], ind["ry"], ind["rx"],
                           angle=ind["angle"])
    skull = P.ellipse_mask(size, ind["cy"], ind["cx"],
                           ind["ry"] * 1.12, ind["rx"] * 1.12,
                           angle=ind["angle"])
    image = 0.95 * np.clip(skull - brain * 0.75, 0, 1)  # bright skull rim
    image += ind["brightness"] * brain

    # Ventricles: paired dark crescents near the centre (individual).
    for side in (-1, 1):
        vent = P.gaussian_blob(size, ind["cy"],
                               ind["cx"] + side * ind["vent_gap"],
                               ind["vent_size"], ind["vent_size"] * 0.45,
                               angle=side * 0.5)
        image -= 0.5 * vent * brain

    mask = np.zeros((size, size))
    if label == 1:
        # Tumor placed inside the brain, off-centre.
        theta = rng.uniform(0, 2 * np.pi)
        rad = rng.uniform(0.35, 0.75)
        t_cy = ind["cy"] + rad * ind["ry"] * 0.7 * np.sin(theta)
        t_cx = ind["cx"] + rad * ind["rx"] * 0.7 * np.cos(theta)
        t_r = size * rng.uniform(0.05, 0.11)
        core = P.gaussian_blob(size, t_cy, t_cx, t_r, t_r * rng.uniform(0.8, 1.2),
                               angle=rng.uniform(0, np.pi))
        ring = P.gaussian_blob(size, t_cy, t_cx, t_r * 1.5, t_r * 1.5) - core
        if variant == 1:
            image += (0.8 * core + 0.25 * np.clip(ring, 0, 1)) * brain
        else:
            # T2-like: bright core, dark rim.
            image += (0.9 * core - 0.35 * np.clip(ring, 0, 1)) * brain
        mask = (core > 0.3).astype(float) * (brain > 0.1)

    tex_rng = np.random.default_rng(ind["texture_seed"])
    tex_amp = 0.06 if variant == 1 else 0.12
    image += tex_amp * P.smooth_noise(size, tex_rng, scale=3) * brain
    image += 0.03 * tex_rng.standard_normal((size, size))
    if variant == 2:
        image *= 0.9  # darker field of view
    return P.normalize01(image), mask


def generate(counts: Dict[int, int], size: int, rng: np.random.Generator,
             variant: int = 1
             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate ``counts[label]`` images per class; returns (X, y, masks)."""
    images, labels, masks = [], [], []
    for label, n in counts.items():
        for _ in range(n):
            ind = _individual(rng, size)
            img, msk = render(ind, label, rng, size, variant=variant)
            images.append(img[None])
            labels.append(label)
            masks.append(msk)
    return (np.stack(images), np.asarray(labels, dtype=np.int64),
            np.stack(masks))
