"""Synthetic retinal OCT dataset (paper: Kermany et al. OCT).

Class structure mirrors the real dataset used in the paper:

* 0 ``NORMAL``  — layered retina, no lesion.
* 1 ``CNV``     — choroidal neovascularisation: a bright irregular mass
  under the retina that lifts and distorts the layers ("wavy texture").
* 2 ``DME``     — diabetic macular edema: dark intraretinal cystic voids.
* 3 ``DRUSEN``  — small bumpy deposits on the retinal pigment epithelium.

Each image is composed of an *individual* background (retina position,
curvature, layer thicknesses, speckle texture — the IS factors) and a
*class-associated* lesion pattern (the CS factors), with the lesion
footprint returned as a ground-truth mask.  Medically, DRUSEN may develop
into CNV; the generators share the "bump" motif between those two classes
(drusen bumps are small CNV-like elevations) so a faithful class manifold
should place DRUSEN between NORMAL and CNV, as Fig. 8 of the paper
observes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from . import painting as P

CLASS_NAMES = ("NORMAL", "CNV", "DME", "DRUSEN")


def _individual(rng: np.random.Generator, size: int) -> Dict:
    """Sample the IS factors: retina geometry and texture."""
    return {
        "base_y": size * rng.uniform(0.40, 0.60),
        "curve_amp": size * rng.uniform(0.02, 0.08),
        "curve_freq": rng.uniform(0.6, 1.4),
        "curve_phase": rng.uniform(0, 2 * np.pi),
        "layer_gap": size * rng.uniform(0.05, 0.09),
        "thickness": size * rng.uniform(0.018, 0.032),
        "brightness": rng.uniform(0.75, 1.0),
        "texture_seed": rng.integers(0, 2 ** 31),
        "tilt": rng.uniform(-0.08, 0.08),
    }


def _retina_centerline(ind: Dict, size: int) -> np.ndarray:
    line = P.wavy_line(size, ind["base_y"], ind["curve_amp"],
                       ind["curve_freq"], ind["curve_phase"])
    return line + ind["tilt"] * (np.arange(size) - size / 2)


def render(ind: Dict, label: int, rng: np.random.Generator,
           size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Render one OCT B-scan and its lesion mask."""
    center = _retina_centerline(ind, size)
    image = np.zeros((size, size))
    mask = np.zeros((size, size))

    lesion_cx = size * rng.uniform(0.3, 0.7)

    # Lesion-induced geometry change: CNV lifts the layers locally.
    deform = np.zeros(size)
    if label == 1:  # CNV elevates the retina over the lesion
        bump_w = size * rng.uniform(0.12, 0.22)
        x = np.arange(size)
        deform = -size * rng.uniform(0.06, 0.12) * np.exp(
            -0.5 * ((x - lesion_cx) / bump_w) ** 2)

    # Three retinal layers following the (possibly deformed) centre line.
    for k, gain in enumerate((1.0, 0.8, 0.9)):
        line = center + deform + (k - 1) * ind["layer_gap"]
        image += P.horizontal_band(size, line, ind["thickness"],
                                   intensity=gain * ind["brightness"])

    # Class-associated lesion patterns.
    if label == 1:  # CNV: bright sub-retinal mass
        ry = size * rng.uniform(0.05, 0.09)
        rx = size * rng.uniform(0.09, 0.16)
        cy = float(np.interp(lesion_cx, np.arange(size), center)) \
            + ind["layer_gap"] * 1.2
        blob = P.gaussian_blob(size, cy, lesion_cx, ry, rx,
                               angle=rng.uniform(-0.4, 0.4))
        image += 0.9 * blob
        mask = np.maximum(mask, (blob > 0.25).astype(float))
        # CNV also appears where the deformation is (the wavy lift).
        mask = np.maximum(mask, (np.abs(deform)[None, :]
                                 * P.horizontal_band(
                                     size, center + deform,
                                     ind["layer_gap"]) > 1.0).astype(float))
    elif label == 2:  # DME: dark cystic voids inside the layers
        n_cysts = rng.integers(2, 5)
        for _ in range(n_cysts):
            cx = size * rng.uniform(0.25, 0.75)
            cy = float(np.interp(cx, np.arange(size), center)) \
                + rng.uniform(-0.5, 0.5) * ind["layer_gap"]
            r = size * rng.uniform(0.025, 0.05)
            void = P.gaussian_blob(size, cy, cx, r, r * rng.uniform(1.0, 1.6))
            image -= 1.1 * void * ind["brightness"]
            mask = np.maximum(mask, (void > 0.3).astype(float))
    elif label == 3:  # DRUSEN: small bumps under the bottom layer
        n_bumps = rng.integers(3, 7)
        for i in range(n_bumps):
            cx = size * rng.uniform(0.2, 0.8)
            cy = float(np.interp(cx, np.arange(size), center)) \
                + ind["layer_gap"]
            r = size * rng.uniform(0.015, 0.03)
            bump = P.gaussian_blob(size, cy, cx, r, r)
            image += 0.7 * bump
            mask = np.maximum(mask, (bump > 0.35).astype(float))

    # Speckle texture and acquisition noise (individual factors).
    tex_rng = np.random.default_rng(ind["texture_seed"])
    image += 0.10 * P.smooth_noise(size, tex_rng, scale=2)
    image += 0.04 * tex_rng.standard_normal((size, size))
    image *= P.vignette(size, 0.15)
    return P.normalize01(image), mask


def generate(counts: Dict[int, int], size: int,
             rng: np.random.Generator
             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate ``counts[label]`` images per class; returns (X, y, masks)."""
    images, labels, masks = [], [], []
    for label, n in counts.items():
        for _ in range(n):
            ind = _individual(rng, size)
            img, msk = render(ind, label, rng, size)
            images.append(img[None])
            labels.append(label)
            masks.append(msk)
    return (np.stack(images), np.asarray(labels, dtype=np.int64),
            np.stack(masks))
