"""Synthetic face dataset for gender classification (paper: Kaggle
gender-classification faces).

Binary task matching the paper's convention: 0 ``FEMALE``, 1 ``MALE``.

Individual factors (IS): face outline geometry, eye spacing/size, nose
length, skin tone, expression (mouth curvature), background shade — the
"outline of the face, background, and glasses" the paper lists as
class-irrelevant.  Class-associated factors (CS): beard/moustache shading
and thicker, longer eyebrows for male; darker fuller lips (lipstick),
eye-shadow and longer hair shading for female — the "moustaches and
lipstick" the paper lists as class-relevant.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from . import painting as P

CLASS_NAMES = ("FEMALE", "MALE")


def _individual(rng: np.random.Generator, size: int) -> Dict:
    return {
        "cy": size * rng.uniform(0.48, 0.55),
        "cx": size * rng.uniform(0.47, 0.53),
        "ry": size * rng.uniform(0.30, 0.38),
        "rx": size * rng.uniform(0.24, 0.30),
        "eye_gap": rng.uniform(0.38, 0.5),
        "eye_size": rng.uniform(0.05, 0.075),
        "nose_len": rng.uniform(0.18, 0.28),
        "mouth_curve": rng.uniform(-0.2, 0.35),
        "skin": rng.uniform(0.55, 0.8),
        "background": rng.uniform(0.1, 0.35),
        "glasses": rng.random() < 0.25,
        "texture_seed": rng.integers(0, 2 ** 31),
    }


def render(ind: Dict, label: int, rng: np.random.Generator,
           size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Render one face portrait and its gender-feature mask."""
    image = np.full((size, size), ind["background"])
    mask = np.zeros((size, size))
    cy, cx = ind["cy"], ind["cx"]
    ry, rx = ind["ry"], ind["rx"]

    face = P.ellipse_mask(size, cy, cx, ry, rx)
    image = image * (1 - face) + ind["skin"] * face

    eye_y = cy - 0.25 * ry
    eye_dx = ind["eye_gap"] * rx
    eye_r = ind["eye_size"] * size
    for side in (-1, 1):
        eye = P.gaussian_blob(size, eye_y, cx + side * eye_dx,
                              eye_r * 0.6, eye_r)
        image -= 0.5 * eye
        # Eyebrows: thickness is the class cue; position is individual.
        brow_y = eye_y - eye_r * 1.8
        brow_th = (2.2 if label == 1 else 1.0) * size / 64 + 0.4
        brow_len = (1.5 if label == 1 else 1.1) * eye_r
        brow = P.stroke(size, brow_y, cx + side * eye_dx - brow_len,
                        brow_y - side * 0.5, cx + side * eye_dx + brow_len,
                        thickness=brow_th, intensity=0.45)
        image -= brow
        mask = np.maximum(mask, (brow > 0.1).astype(float))
        if label == 0:
            # Female: eye shadow above the eyes.
            shadow = P.gaussian_blob(size, eye_y - eye_r, cx + side * eye_dx,
                                     eye_r * 0.7, eye_r * 1.1)
            image -= 0.18 * shadow
            mask = np.maximum(mask, (shadow > 0.35).astype(float))

    # Nose (individual): faint vertical stroke.
    nose = P.stroke(size, eye_y + eye_r, cx, cy + ind["nose_len"] * ry, cx,
                    thickness=size / 64 + 0.3, intensity=0.12)
    image -= nose

    # Mouth: curvature individual, darkness/fullness class-associated.
    mouth_y = cy + 0.55 * ry
    mouth_w = 0.45 * rx
    lip_th = (2.0 if label == 0 else 1.1) * size / 64 + 0.5
    lip_dark = 0.45 if label == 0 else 0.22
    curve_off = ind["mouth_curve"] * eye_r
    mouth = np.maximum(
        P.stroke(size, mouth_y, cx - mouth_w, mouth_y - curve_off, cx,
                 thickness=lip_th, intensity=lip_dark),
        P.stroke(size, mouth_y - curve_off, cx, mouth_y, cx + mouth_w,
                 thickness=lip_th, intensity=lip_dark))
    image -= mouth
    mask = np.maximum(mask, (mouth > 0.1).astype(float))

    if label == 1:
        # Male: beard/moustache shading on chin and upper lip.
        chin = P.ellipse_mask(size, cy + 0.75 * ry, cx, 0.30 * ry, 0.55 * rx)
        tache = P.ellipse_mask(size, mouth_y - 0.12 * ry, cx,
                               0.07 * ry, 0.4 * rx)
        beard_rng = np.random.default_rng(rng.integers(0, 2 ** 31))
        stubble = 0.6 + 0.4 * P.smooth_noise(size, beard_rng, 2)
        beard = np.clip(np.maximum(chin, tache) * stubble, 0, 1) * face
        image -= 0.30 * beard
        mask = np.maximum(mask, (beard > 0.15).astype(float))
    else:
        # Female: longer hair shading framing the face.
        hair = P.ellipse_mask(size, cy - 0.05 * ry, cx, ry * 1.25, rx * 1.35) \
            - P.ellipse_mask(size, cy, cx, ry * 1.02, rx * 1.02)
        hair = np.clip(hair, 0, 1)
        hair[: int(cy - ry * 0.9), :] *= 1.0   # crown kept
        image = image * (1 - 0.6 * hair) + 0.12 * hair
        mask = np.maximum(mask, (hair > 0.3).astype(float))

    if ind["glasses"]:
        # Glasses are individual (class-irrelevant), per the paper.
        for side in (-1, 1):
            rim = P.ellipse_mask(size, eye_y, cx + side * eye_dx,
                                 eye_r * 1.5, eye_r * 1.5) \
                - P.ellipse_mask(size, eye_y, cx + side * eye_dx,
                                 eye_r * 1.2, eye_r * 1.2)
            image -= 0.25 * np.clip(rim, 0, 1)

    tex_rng = np.random.default_rng(ind["texture_seed"])
    image += 0.03 * P.smooth_noise(size, tex_rng, scale=4)
    image += 0.02 * tex_rng.standard_normal((size, size))
    return P.normalize01(image), mask


def generate(counts: Dict[int, int], size: int, rng: np.random.Generator
             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate ``counts[label]`` images per class; returns (X, y, masks)."""
    images, labels, masks = [], [], []
    for label, n in counts.items():
        for _ in range(n):
            ind = _individual(rng, size)
            img, msk = render(ind, label, rng, size)
            images.append(img[None])
            labels.append(label)
            masks.append(msk)
    return (np.stack(images), np.asarray(labels, dtype=np.int64),
            np.stack(masks))
