"""Synthetic chest X-ray dataset (paper: Kermany pediatric CXR).

Binary task: 0 ``NORMAL`` vs 1 ``PNEUMONIA``.

Individual factors: thorax width, lung field geometry, rib spacing/count,
heart-shadow size, exposure.  Class-associated factor: pneumonia rendered
as cloud-like patchy high-density shadows inside the lung fields (the
paper's Fig. 9 description), possibly multifocal.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from . import painting as P

CLASS_NAMES = ("NORMAL", "PNEUMONIA")


def _individual(rng: np.random.Generator, size: int) -> Dict:
    return {
        "lung_ry": size * rng.uniform(0.28, 0.36),
        "lung_rx": size * rng.uniform(0.14, 0.19),
        "lung_gap": size * rng.uniform(0.20, 0.26),
        "cy": size * rng.uniform(0.48, 0.56),
        "rib_count": int(rng.integers(4, 7)),
        "rib_phase": rng.uniform(0, 1),
        "heart_r": size * rng.uniform(0.10, 0.15),
        "exposure": rng.uniform(0.55, 0.75),
        "texture_seed": rng.integers(0, 2 ** 31),
    }


def render(ind: Dict, label: int, rng: np.random.Generator,
           size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Render one frontal CXR and its opacity mask."""
    cx = size / 2
    image = np.full((size, size), ind["exposure"])

    lungs = np.zeros((size, size))
    for side in (-1, 1):
        lung = P.ellipse_mask(size, ind["cy"],
                              cx + side * ind["lung_gap"] / 1.15,
                              ind["lung_ry"], ind["lung_rx"],
                              angle=side * 0.12)
        lungs = np.maximum(lungs, lung)
    image -= 0.45 * lungs  # aerated lungs are dark

    # Ribs: bright bands crossing the thorax (individual).
    for k in range(ind["rib_count"]):
        frac = (k + ind["rib_phase"]) / ind["rib_count"]
        y = ind["cy"] - ind["lung_ry"] + 2 * ind["lung_ry"] * frac
        curve = P.wavy_line(size, y, size * 0.03, 0.5, np.pi)
        image += 0.10 * P.horizontal_band(size, curve, size * 0.012)

    # Heart shadow (individual): bright mass at lower-centre-left.
    heart = P.gaussian_blob(size, ind["cy"] + ind["lung_ry"] * 0.45,
                            cx + size * 0.05,
                            ind["heart_r"], ind["heart_r"] * 1.2)
    image += 0.30 * heart

    mask = np.zeros((size, size))
    if label == 1:
        # Pneumonia: 1-3 cloudy consolidations confined to lung fields.
        n_foci = rng.integers(1, 4)
        for _ in range(n_foci):
            side = rng.choice((-1, 1))
            f_cy = ind["cy"] + rng.uniform(-0.5, 0.6) * ind["lung_ry"]
            f_cx = cx + side * ind["lung_gap"] / 1.15 \
                + rng.uniform(-0.4, 0.4) * ind["lung_rx"]
            r = size * rng.uniform(0.05, 0.10)
            cloud = P.gaussian_blob(size, f_cy, f_cx, r, r * rng.uniform(0.8, 1.4),
                                    angle=rng.uniform(0, np.pi))
            patchy_rng = np.random.default_rng(rng.integers(0, 2 ** 31))
            cloud = cloud * (0.7 + 0.5 * P.smooth_noise(size, patchy_rng, 2))
            cloud = np.clip(cloud, 0, 1) * lungs
            image += 0.55 * cloud
            mask = np.maximum(mask, (cloud > 0.2).astype(float))

    tex_rng = np.random.default_rng(ind["texture_seed"])
    image += 0.05 * P.smooth_noise(size, tex_rng, scale=4)
    image += 0.03 * tex_rng.standard_normal((size, size))
    image *= P.vignette(size, 0.12)
    return P.normalize01(image), mask


def generate(counts: Dict[int, int], size: int, rng: np.random.Generator
             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate ``counts[label]`` images per class; returns (X, y, masks)."""
    images, labels, masks = [], [], []
    for label, n in counts.items():
        for _ in range(n):
            ind = _individual(rng, size)
            img, msk = render(ind, label, rng, size)
            images.append(img[None])
            labels.append(label)
            masks.append(msk)
    return (np.stack(images), np.asarray(labels, dtype=np.int64),
            np.stack(masks))
