"""Image preprocessing and augmentation.

The paper's pipeline: center-crop to square, resize to the working
resolution, random horizontal flip with probability 0.5 during training.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def center_crop(images: np.ndarray, size: int) -> np.ndarray:
    """Center-crop NCHW images to ``size`` x ``size``."""
    __, __, h, w = images.shape
    if h < size or w < size:
        raise ValueError(f"cannot crop {h}x{w} to {size}x{size}")
    top = (h - size) // 2
    left = (w - size) // 2
    return images[:, :, top:top + size, left:left + size]


def resize_nearest(images: np.ndarray, size: int) -> np.ndarray:
    """Nearest-neighbour resize of NCHW images to ``size`` x ``size``."""
    __, __, h, w = images.shape
    rows = (np.arange(size) * h / size).astype(int).clip(0, h - 1)
    cols = (np.arange(size) * w / size).astype(int).clip(0, w - 1)
    return images[:, :, rows][:, :, :, cols]


def resize_bilinear(images: np.ndarray, size: int) -> np.ndarray:
    """Bilinear resize of NCHW images (used when upscaling saliency maps)."""
    n, c, h, w = images.shape
    ys = np.linspace(0, h - 1, size)
    xs = np.linspace(0, w - 1, size)
    y0 = np.floor(ys).astype(int).clip(0, h - 2)
    x0 = np.floor(xs).astype(int).clip(0, w - 2)
    wy = (ys - y0)[None, None, :, None]
    wx = (xs - x0)[None, None, None, :]
    top = images[:, :, y0][:, :, :, x0] * (1 - wx) \
        + images[:, :, y0][:, :, :, x0 + 1] * wx
    bot = images[:, :, y0 + 1][:, :, :, x0] * (1 - wx) \
        + images[:, :, y0 + 1][:, :, :, x0 + 1] * wx
    return top * (1 - wy) + bot * wy


def random_horizontal_flip(images: np.ndarray, rng: np.random.Generator,
                           p: float = 0.5) -> np.ndarray:
    """Flip each image left-right with probability ``p`` (paper's only
    augmentation)."""
    out = images.copy()
    flips = rng.random(len(images)) < p
    out[flips] = out[flips, :, :, ::-1]
    return out


def to_unit_range(images: np.ndarray) -> np.ndarray:
    """Clip to [0, 1]."""
    return np.clip(images, 0.0, 1.0)
