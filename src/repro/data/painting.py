"""Low-level procedural drawing primitives for the synthetic datasets.

Every generator in :mod:`repro.data` composes images from these
primitives: smooth noise fields, Gaussian blobs, elliptical masks, band
structures, and stroke segments.  All functions are pure numpy, take an
explicit ``rng``, and draw into float images in [0, 1].
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def coordinate_grid(size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return (yy, xx) index grids of shape (size, size)."""
    yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    return yy.astype(np.float64), xx.astype(np.float64)


def smooth_noise(size: int, rng: np.random.Generator, scale: int = 4,
                 amplitude: float = 1.0) -> np.ndarray:
    """Band-limited noise: coarse white noise upsampled with bilinear-ish
    smoothing; used for tissue texture and film grain."""
    coarse = rng.standard_normal((max(size // scale, 2),) * 2)
    # Upsample by repetition then box-blur twice for smoothness.
    field = np.repeat(np.repeat(coarse, scale, axis=0), scale, axis=1)
    field = field[:size, :size]
    if field.shape[0] < size or field.shape[1] < size:
        field = np.pad(field, ((0, size - field.shape[0]),
                               (0, size - field.shape[1])), mode="edge")
    field = box_blur(field, 2)
    field = box_blur(field, 2)
    peak = np.abs(field).max()
    if peak > 0:
        field = field / peak
    return field * amplitude


def box_blur(image: np.ndarray, radius: int) -> np.ndarray:
    """Separable box blur with edge padding."""
    if radius <= 0:
        return image
    kernel = np.ones(2 * radius + 1) / (2 * radius + 1)
    padded = np.pad(image, radius, mode="edge")
    blurred = np.apply_along_axis(
        lambda row: np.convolve(row, kernel, mode="valid"), 1, padded)
    blurred = np.apply_along_axis(
        lambda col: np.convolve(col, kernel, mode="valid"), 0, blurred)
    return blurred


def gaussian_blob(size: int, cy: float, cx: float, sigma_y: float,
                  sigma_x: float, angle: float = 0.0) -> np.ndarray:
    """Anisotropic Gaussian bump with values in [0, 1]."""
    yy, xx = coordinate_grid(size)
    dy, dx = yy - cy, xx - cx
    if angle:
        cos_a, sin_a = np.cos(angle), np.sin(angle)
        dy, dx = cos_a * dy - sin_a * dx, sin_a * dy + cos_a * dx
    return np.exp(-0.5 * ((dy / max(sigma_y, 1e-6)) ** 2
                          + (dx / max(sigma_x, 1e-6)) ** 2))


def ellipse_mask(size: int, cy: float, cx: float, ry: float, rx: float,
                 angle: float = 0.0, softness: float = 1.0) -> np.ndarray:
    """Soft-edged elliptical mask in [0, 1]."""
    yy, xx = coordinate_grid(size)
    dy, dx = yy - cy, xx - cx
    if angle:
        cos_a, sin_a = np.cos(angle), np.sin(angle)
        dy, dx = cos_a * dy - sin_a * dx, sin_a * dy + cos_a * dx
    dist = np.sqrt((dy / max(ry, 1e-6)) ** 2 + (dx / max(rx, 1e-6)) ** 2)
    return np.clip((1.0 - dist) / max(softness / max(ry, rx), 1e-6), 0, 1) \
        if softness != 1.0 else np.clip(1.0 - dist, 0, 1) ** 0.5


def horizontal_band(size: int, center: np.ndarray, thickness: float,
                    intensity: float = 1.0) -> np.ndarray:
    """A horizontal band whose per-column centre line is ``center``
    (array of length ``size``); used for OCT retinal layers."""
    yy, _ = coordinate_grid(size)
    dist = np.abs(yy - center[None, :].repeat(size, axis=0)
                  if center.ndim == 1 else yy - center)
    band = np.clip(1.0 - dist / max(thickness, 1e-6), 0, 1)
    return band * intensity


def stroke(size: int, y0: float, x0: float, y1: float, x1: float,
           thickness: float = 1.0, intensity: float = 1.0) -> np.ndarray:
    """Anti-aliased line segment rendered as distance-to-segment falloff."""
    yy, xx = coordinate_grid(size)
    py, px = yy - y0, xx - x0
    vy, vx = y1 - y0, x1 - x0
    norm = vy * vy + vx * vx
    t = np.clip((py * vy + px * vx) / max(norm, 1e-9), 0, 1)
    dy, dx = py - t * vy, px - t * vx
    dist = np.sqrt(dy * dy + dx * dx)
    return np.clip(1.0 - dist / max(thickness, 1e-6), 0, 1) * intensity


def wavy_line(size: int, base_y: float, amplitude: float, frequency: float,
              phase: float) -> np.ndarray:
    """Per-column y-coordinates of a sinusoidal centre line."""
    x = np.arange(size)
    return base_y + amplitude * np.sin(2 * np.pi * frequency * x / size
                                       + phase)


def normalize01(image: np.ndarray) -> np.ndarray:
    """Clip into the [0, 1] display range."""
    return np.clip(image, 0.0, 1.0)


def vignette(size: int, strength: float = 0.3) -> np.ndarray:
    """Radial darkening toward corners, mimicking acquisition falloff."""
    yy, xx = coordinate_grid(size)
    c = (size - 1) / 2
    r = np.sqrt((yy - c) ** 2 + (xx - c) ** 2) / (np.sqrt(2) * c)
    return 1.0 - strength * r ** 2
