"""Dataset containers and batching utilities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.tensor import get_default_dtype


@dataclass
class Sample:
    """One image with its label and optional ground-truth lesion mask.

    The synthetic generators know exactly which pixels carry
    class-associated evidence; exposing that mask enables localisation
    scoring that the paper's real datasets cannot provide.
    """

    image: np.ndarray            # (C, H, W) float in [0, 1]
    label: int
    mask: Optional[np.ndarray] = None   # (H, W) float in [0, 1], or None
    meta: dict = field(default_factory=dict)


class ImageDataset:
    """In-memory image classification dataset (NCHW float arrays)."""

    def __init__(self, images: np.ndarray, labels: np.ndarray,
                 masks: Optional[np.ndarray] = None,
                 class_names: Optional[Sequence[str]] = None,
                 name: str = "dataset"):
        images = np.asarray(images, dtype=get_default_dtype())
        if images.ndim != 4:
            raise ValueError("images must be (N, C, H, W)")
        labels = np.asarray(labels, dtype=np.int64)
        if len(labels) != len(images):
            raise ValueError("labels length must match images")
        if masks is not None and len(masks) != len(images):
            raise ValueError("masks length must match images")
        self.images = images
        self.labels = labels
        self.masks = masks
        self.class_names = list(class_names) if class_names else \
            [str(c) for c in np.unique(labels)]
        self.name = name

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> Sample:
        mask = self.masks[index] if self.masks is not None else None
        return Sample(self.images[index], int(self.labels[index]), mask)

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.images.shape[1:])

    # ------------------------------------------------------------------
    def indices_of_class(self, label: int) -> np.ndarray:
        return np.where(self.labels == label)[0]

    def subset(self, indices) -> "ImageDataset":
        indices = np.asarray(indices)
        masks = self.masks[indices] if self.masks is not None else None
        return ImageDataset(self.images[indices], self.labels[indices],
                            masks, self.class_names, self.name)

    def class_counts(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.num_classes)


class DataLoader:
    """Mini-batch iterator with optional shuffling and augmentation hook.

    The augmentation hook receives and returns a (B, C, H, W) array; the
    paper uses a random horizontal flip with probability 0.5.
    """

    def __init__(self, dataset: ImageDataset, batch_size: int = 8,
                 shuffle: bool = True,
                 rng: Optional[np.random.Generator] = None,
                 augment=None, drop_last: bool = False):
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng or np.random.default_rng()
        self.augment = augment
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            idx = order[start:start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                break
            images = self.dataset.images[idx]
            labels = self.dataset.labels[idx]
            if self.augment is not None:
                images = self.augment(images, self.rng)
            yield images, labels


def train_test_split(dataset: ImageDataset, test_fraction: float = 0.2,
                     rng: Optional[np.random.Generator] = None
                     ) -> Tuple[ImageDataset, ImageDataset]:
    """Stratified split preserving per-class proportions."""
    rng = rng or np.random.default_rng()
    train_idx: List[int] = []
    test_idx: List[int] = []
    for label in np.unique(dataset.labels):
        idx = dataset.indices_of_class(int(label))
        idx = idx[rng.permutation(len(idx))]
        cut = max(1, int(round(len(idx) * test_fraction)))
        test_idx.extend(idx[:cut])
        train_idx.extend(idx[cut:])
    return dataset.subset(train_idx), dataset.subset(test_idx)
