"""``repro.data`` — synthetic analogs of the paper's five image datasets.

The paper evaluates on OCT, two brain-MRI corpora, chest X-rays and a
face dataset, none of which are downloadable here.  Each generator
composes an *individual* background (IS factors) with *class-associated*
patterns (CS factors), which is precisely the structure CAE is designed
to separate — and returns ground-truth lesion masks that the real
datasets lack.
"""

from .base import DataLoader, ImageDataset, Sample, train_test_split
from .registry import load_pair, make_dataset, table1_counts
from .transforms import (center_crop, random_horizontal_flip, resize_bilinear,
                         resize_nearest, to_unit_range)

__all__ = [
    "ImageDataset", "Sample", "DataLoader", "train_test_split",
    "make_dataset", "load_pair", "table1_counts",
    "center_crop", "resize_nearest", "resize_bilinear",
    "random_horizontal_flip", "to_unit_range",
]
