"""Dataset factory replicating the paper's Table I corpus (scaled).

``make_dataset(name, split)`` returns an :class:`ImageDataset` whose class
counts follow Table I divided by :data:`repro.config.TABLE1_DIVISOR`
(default 100), preserving each dataset's class imbalance.  Pass explicit
``counts`` to override.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

import numpy as np

from ..config import DATASET_NAMES, TABLE1_COUNTS, TABLE1_DIVISOR
from . import brain, chest, face, oct as oct_mod
from .base import ImageDataset

_GENERATORS = {
    "oct": (oct_mod.generate, oct_mod.CLASS_NAMES),
    "brain_tumor1": (lambda c, s, r: brain.generate(c, s, r, variant=1),
                     brain.CLASS_NAMES),
    "brain_tumor2": (lambda c, s, r: brain.generate(c, s, r, variant=2),
                     brain.CLASS_NAMES),
    "chest_xray": (chest.generate, chest.CLASS_NAMES),
    "face": (face.generate, face.CLASS_NAMES),
}


def table1_counts(name: str, split: str,
                  divisor: Optional[int] = None,
                  min_per_class: int = 4) -> Dict[int, int]:
    """Per-class image counts for a dataset split, scaled from Table I.

    Abnormal counts are split evenly across abnormal sub-classes (OCT has
    three: CNV/DME/DRUSEN; the others have one).
    """
    if name not in TABLE1_COUNTS:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    divisor = divisor or TABLE1_DIVISOR
    row = TABLE1_COUNTS[name]
    normal = max(min_per_class, row[f"{split}_normal"] // divisor)
    abnormal_total = max(min_per_class, row[f"{split}_abnormal"] // divisor)
    __, class_names = _GENERATORS[name]
    n_abnormal_classes = len(class_names) - 1
    per = max(max(2, min_per_class // 2),
              abnormal_total // n_abnormal_classes)
    counts = {0: normal}
    for k in range(1, n_abnormal_classes + 1):
        counts[k] = per
    return counts


def make_dataset(name: str, split: str = "train", image_size: int = 32,
                 seed: int = 0, counts: Optional[Dict[int, int]] = None,
                 divisor: Optional[int] = None,
                 min_per_class: int = 4) -> ImageDataset:
    """Build a synthetic dataset analog for one of the paper's five corpora.

    Parameters
    ----------
    name:
        One of ``oct``, ``brain_tumor1``, ``brain_tumor2``, ``chest_xray``,
        ``face``.
    split:
        ``train`` or ``test``; affects the default counts and the seed so
        the two splits are disjoint samples of the same distribution.
    """
    if name not in _GENERATORS:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    if split not in ("train", "test"):
        raise ValueError("split must be 'train' or 'test'")
    generator, class_names = _GENERATORS[name]
    if counts is None:
        counts = table1_counts(name, split, divisor, min_per_class)
    # Distinct stream per (dataset, split, seed).  crc32, not hash():
    # python salts string hashing per process (PYTHONHASHSEED), which
    # would regenerate *different* data every run — silently breaking
    # disk-cached models, content-addressed persistence, and any test
    # threshold sitting near a stream-dependent value.
    stream = np.random.default_rng(
        zlib.crc32(f"{name}/{split}/{seed}".encode()))
    images, labels, masks = generator(counts, image_size, stream)
    order = stream.permutation(len(images))
    return ImageDataset(images[order], labels[order], masks[order],
                        class_names=class_names, name=f"{name}-{split}")


def load_pair(name: str, image_size: int = 32, seed: int = 0,
              divisor: Optional[int] = None
              ) -> Tuple[ImageDataset, ImageDataset]:
    """Convenience: (train, test) datasets for ``name``."""
    train = make_dataset(name, "train", image_size, seed, divisor=divisor)
    test = make_dataset(name, "test", image_size, seed, divisor=divisor)
    return train, test
