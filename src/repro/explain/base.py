"""Explainer interface shared by CAE and all nine baselines.

Batched-first invariant
-----------------------
:meth:`Explainer.explain_batch` is the primitive every subclass
implements: forward *and* backward passes run over the whole image batch
in single conv/GEMM calls.  Per-sample gradients come free because the
loss terms are independent across the batch axis — summing the
per-class-selected logits (:func:`repro.nn.class_score_sum`) and
backpropagating once yields each sample's own gradient.
:meth:`Explainer.explain` is a thin one-image wrapper; batch-of-one and
per-image results agree to float32 tolerance, which the parity test
suite asserts for every registered method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class SaliencyResult:
    """Saliency explanation for one image.

    ``saliency`` is an (H, W) non-negative importance map; higher values
    mean greater attribution toward the explained class decision.

    ``image_digest`` carries the content digest of the explained image
    when the result came through the serving runtime (which hashes each
    request exactly once and threads the digest through submit, queue,
    and cache insert); explainers called directly leave it ``None``.
    """

    saliency: np.ndarray
    label: int
    target_label: Optional[int] = None
    meta: Dict = field(default_factory=dict)
    image_digest: Optional[str] = None

    def normalized(self) -> np.ndarray:
        """Saliency rescaled to [0, 1]; monotone and ranking-preserving
        over the non-negative values (the map's contract).

        Non-finite entries are zeroed and out-of-contract negative values
        clipped to 0 before rescaling, so NaN-polluted or negative-only
        maps (which batched float32 gradient sweeps can produce) degrade
        to all-zero maps instead of propagating NaN into downstream
        metrics.  Negative entries thus collapse to 0 rather than rank.
        """
        s = np.nan_to_num(self.saliency, nan=0.0, posinf=0.0, neginf=0.0)
        s = np.clip(s, 0.0, None)
        s = s - s.min()
        peak = s.max()
        return s / peak if peak > 0 else s

    def top_pixels(self, k: int) -> np.ndarray:
        """Indices (row, col) of the k most salient pixels, descending.

        Ties break deterministically in row-major pixel order (stable
        sort), so float32 maps with repeated values rank reproducibly.
        """
        flat = np.argsort(-self.saliency, axis=None, kind="stable")[:k]
        return np.stack(np.unravel_index(flat, self.saliency.shape), axis=1)


class Explainer:
    """Base class: produce saliency maps for a batch of images.

    Subclasses set :attr:`name` and implement :meth:`explain_batch` (the
    primitive — see the module docstring for the batched-first
    invariant).  The ``target_labels`` argument selects which counter
    class to contrast against in counterfactual methods;
    gradient/perturbation methods may ignore it.  :attr:`needs_gradients`
    tells serving layers whether the method's batch call may legally run
    under ``nn.no_grad()``.
    """

    name = "base"

    #: True for white-box methods whose explain_batch records a tape and
    #: calls backward (Grad-CAM, FullGrad family, StyLEx); the serving
    #: engine wraps everything else in ``nn.no_grad()``.
    needs_gradients = False

    #: True when the method's hot path is a fixed primitive sequence the
    #: serving layer may compile into a :mod:`repro.nn.plan`
    #: ExecutionPlan and replay tape-free for repeated
    #: (batch_shape, dtype) keys.  Methods with data-dependent control
    #: flow (LIME sampling, occlusion sweeps, StyLEx/CAE optimisation
    #: loops, ICAM's manifold search) stay ineligible and always run on
    #: the tape.
    plan_eligible = False

    def compile_plan(self, images: np.ndarray, labels: np.ndarray):
        """Trace this method's hot path into an ExecutionPlan for the
        given exemplar batch (its shape/dtype fix the plan's key).

        Only called when :attr:`plan_eligible`; may raise
        ``repro.nn.plan.PlanUnsupported`` if the traced computation uses
        a primitive with no compiled kernel.
        """
        raise NotImplementedError(f"{type(self).__name__} is not plan-eligible")

    def explain_batch_planned(self, plan, images: np.ndarray,
                              labels: np.ndarray,
                              target_labels: Optional[np.ndarray] = None
                              ) -> "List[SaliencyResult]":
        """Like :meth:`explain_batch` but replaying a compiled plan from
        :meth:`compile_plan` instead of recording a tape.  Raises
        ``repro.nn.plan.PlanMismatch`` when the batch's shape or dtype
        differs from the plan's (callers then fall back to the tape).
        """
        raise NotImplementedError(f"{type(self).__name__} is not plan-eligible")

    def explain(self, image: np.ndarray, label: int,
                target_label: Optional[int] = None) -> SaliencyResult:
        """Thin one-image wrapper over :meth:`explain_batch`."""
        targets = None if target_label is None \
            else np.array([target_label], dtype=np.int64)
        return self.explain_batch(np.asarray(image)[None],
                                  np.array([label], dtype=np.int64),
                                  targets)[0]

    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      target_labels: Optional[np.ndarray] = None
                      ) -> List[SaliencyResult]:
        """Explain a batch of images, returning one result per image.

        The primitive of the explainer contract: implementations run the
        whole batch through shared conv/GEMM calls (and, for white-box
        methods, one shared backward pass).  Legacy subclasses that only
        override :meth:`explain` fall back to a per-image loop; all ten
        registered methods implement the batched path directly.
        """
        if type(self).explain is not Explainer.explain:
            targets = resolve_targets(labels, target_labels)
            results = []
            for i, (image, label) in enumerate(zip(images, labels)):
                results.append(self.explain(image, int(label),
                                            target_or_none(targets, i)))
            return results
        raise NotImplementedError(
            f"{type(self).__name__} implements neither explain_batch (the "
            "batched-first primitive) nor a legacy explain override")


def default_counter_label(label: int, num_classes: int) -> int:
    """Default counter class: NORMAL (0) for abnormal samples, class 1
    otherwise — mirroring the paper's normal-vs-abnormal transitions."""
    return 0 if label != 0 else 1 % num_classes


def resolve_targets(labels: np.ndarray,
                    target_labels: Optional[np.ndarray],
                    num_classes: Optional[int] = None) -> np.ndarray:
    """Per-image target labels as an int array.

    The sentinel -1 marks "no target" entries (``target_labels=None``
    sets it everywhere; micro-batched serving can also mix -1 with real
    targets in one array).  When ``num_classes`` is given every sentinel
    entry is resolved to :func:`default_counter_label` for its image;
    otherwise sentinels pass through for :func:`target_or_none`.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if target_labels is None:
        targets = np.full(len(labels), -1, dtype=np.int64)
    else:
        targets = np.array(target_labels, dtype=np.int64, copy=True)
    if num_classes is not None:
        for i in np.nonzero(targets < 0)[0]:
            targets[i] = default_counter_label(int(labels[i]), num_classes)
    return targets


def target_or_none(targets: np.ndarray, i: int) -> Optional[int]:
    """Per-image target for result metadata (-1 sentinel -> None)."""
    t = int(targets[i])
    return None if t < 0 else t
