"""Explainer interface shared by CAE and all nine baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


@dataclass
class SaliencyResult:
    """Saliency explanation for one image.

    ``saliency`` is an (H, W) non-negative importance map; higher values
    mean greater attribution toward the explained class decision.
    """

    saliency: np.ndarray
    label: int
    target_label: Optional[int] = None
    meta: Dict = field(default_factory=dict)

    def normalized(self) -> np.ndarray:
        """Saliency rescaled to [0, 1] (monotone, ranking-preserving)."""
        s = self.saliency - self.saliency.min()
        peak = s.max()
        return s / peak if peak > 0 else s

    def top_pixels(self, k: int) -> np.ndarray:
        """Indices (row, col) of the k most salient pixels, descending."""
        flat = np.argsort(self.saliency, axis=None)[::-1][:k]
        return np.stack(np.unravel_index(flat, self.saliency.shape), axis=1)


class Explainer:
    """Base class: produce a saliency map for one image.

    Subclasses set :attr:`name` and implement :meth:`explain`.  The
    ``target_label`` argument selects which counter class to contrast
    against in counterfactual methods; gradient/perturbation methods may
    ignore it.
    """

    name = "base"

    def explain(self, image: np.ndarray, label: int,
                target_label: Optional[int] = None) -> SaliencyResult:
        raise NotImplementedError

    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      target_labels: Optional[np.ndarray] = None) -> list:
        """Explain a batch of images, returning one result per image.

        Default path: loop over :meth:`explain`.  Perturbation methods
        (occlusion, LIME) override this to score all masked variants of
        all images through the classifier in shared conv batches, which
        is substantially faster than per-image sweeps.
        """
        results = []
        for i, (image, label) in enumerate(zip(images, labels)):
            target = None if target_labels is None else int(target_labels[i])
            results.append(self.explain(image, int(label), target))
        return results


def default_counter_label(label: int, num_classes: int) -> int:
    """Default counter class: NORMAL (0) for abnormal samples, class 1
    otherwise — mirroring the paper's normal-vs-abnormal transitions."""
    return 0 if label != 0 else 1 % num_classes
