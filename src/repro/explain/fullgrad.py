"""FullGrad (Srinivas & Fleuret 2019) and its Simple/Smooth variants.

FullGrad aggregates the input-gradient term with per-layer "bias
gradient" feature maps.  With our classifier we realise the layer terms
as |feature x feature-gradient| maps from every residual stage
(the implicit-bias formulation), matching the reference repo's
``fullgrad.py`` structure:

* **FullGrad** — input term + all stage terms, each min-max normalised
  before aggregation.
* **Simple FullGrad** — same but without per-map normalisation
  (the "simple" variant of the idiap repository).
* **Smooth FullGrad** — FullGrad averaged over noisy copies of the input.

All three are batched-first: a whole batch runs one forward and one
backward pass (per-sample gradients are independent because the summed
per-class logits decouple across the batch axis), and each per-map
normalisation happens per sample.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from ..nn import plan
from ..classifiers import SmallResNet
from ..data.transforms import resize_bilinear
from .base import Explainer, SaliencyResult, resolve_targets, target_or_none


def _postprocess(gradient_maps: np.ndarray, normalize: bool) -> np.ndarray:
    """Abs -> (optionally) per-sample min-max normalise (N, H, W) maps."""
    g = np.abs(gradient_maps)
    if normalize:
        g = g - g.min(axis=(1, 2), keepdims=True)
        peak = g.max(axis=(1, 2), keepdims=True)
        g = np.divide(g, peak, out=g, where=peak > 0)
    return g


class FullGradExplainer(Explainer):
    """Full-gradient decomposition saliency."""

    name = "fullgrad"
    needs_gradients = True
    plan_eligible = True

    def __init__(self, classifier: SmallResNet, normalize: bool = True):
        self.classifier = classifier
        self.normalize = normalize

    def _aggregate(self, images: np.ndarray, x_grad: np.ndarray,
                   feat_pairs) -> np.ndarray:
        """Combine input and stage terms; shared by tape and plan paths.

        ``feat_pairs`` is a sequence of (feature, feature_grad) arrays.
        """
        h, w = images.shape[2:]
        # Input-gradient term: |x * dL/dx| summed over channels.
        saliency = _postprocess((x_grad * images).sum(axis=1), self.normalize)
        # Layer terms: |feat * dL/dfeat| channel-summed, upsampled.
        for data, grad in feat_pairs:
            term = np.abs(grad * data).sum(axis=1)          # (N, h', w')
            if term.shape[1:] != (h, w):
                term = resize_bilinear(term[:, None], h)[:, 0]
            saliency = saliency + _postprocess(term, self.normalize)
        return saliency

    def _saliency_batch(self, images: np.ndarray,
                        labels: np.ndarray) -> np.ndarray:
        """(N, H, W) FullGrad maps from one batched forward/backward."""
        self.classifier.eval()
        x = nn.Tensor(images, requires_grad=True)
        # Only input/feature gradients are consumed; freezing the weights
        # drops every weight-gradient GEMM from the shared backward pass.
        with nn.frozen(self.classifier):
            logits, feats = self.classifier.forward_with_all_features(x)
            for f in feats:
                f.retain_grad()
            nn.class_score_sum(logits, labels).backward()

        return self._aggregate(images, x.grad,
                               [(f.data, f.grad) for f in feats])

    def compile_plan(self, images: np.ndarray, labels: np.ndarray):
        """Trace the full forward with gradients requested at the input
        and every residual stage.  Weight gradients are pruned by the
        plan's demand analysis, matching the tape path's ``nn.frozen``.
        """
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        self.classifier.eval()

        def core(tr: plan.Tracer) -> None:
            x = tr.input("x", images)
            lab = tr.aux_input("labels", labels)
            logits, feats = self.classifier.forward_with_all_features(x)
            tr.grad("x_grad", x)
            for i, f in enumerate(feats):
                tr.output(f"f{i}", f)
                tr.grad(f"f{i}_grad", f)
            tr.loss(nn.class_score_sum(logits, lab))

        return plan.trace(core)

    def _saliency_batch_planned(self, compiled, images: np.ndarray,
                                labels: np.ndarray) -> np.ndarray:
        out = compiled.replay({"x": images, "labels": labels})
        feat_pairs = []
        i = 0
        while f"f{i}" in out:
            feat_pairs.append((out[f"f{i}"], out[f"f{i}_grad"]))
            i += 1
        return self._aggregate(images, out["x_grad"], feat_pairs)

    def explain_batch_planned(self, compiled, images: np.ndarray,
                              labels: np.ndarray,
                              target_labels: Optional[np.ndarray] = None
                              ) -> List[SaliencyResult]:
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        targets = resolve_targets(labels, target_labels)
        saliency = self._saliency_batch_planned(compiled, images, labels)
        return [SaliencyResult(saliency[i], int(labels[i]),
                               target_or_none(targets, i))
                for i in range(len(images))]

    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      target_labels: Optional[np.ndarray] = None
                      ) -> List[SaliencyResult]:
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        targets = resolve_targets(labels, target_labels)
        saliency = self._saliency_batch(images, labels)
        return [SaliencyResult(saliency[i], int(labels[i]),
                               target_or_none(targets, i))
                for i in range(len(images))]


class SimpleFullGradExplainer(FullGradExplainer):
    """FullGrad without per-component normalisation."""

    name = "simple_fullgrad"

    def __init__(self, classifier: SmallResNet):
        super().__init__(classifier, normalize=False)


class SmoothFullGradExplainer(FullGradExplainer):
    """FullGrad averaged over Gaussian-noised inputs (SmoothGrad-style).

    The noise stream is reseeded per call and shared across the batch
    (sample s applies one noise map to every image), so batch-of-one and
    full-batch runs see identical perturbations — the property the
    batch-vs-single parity suite relies on.
    """

    name = "smooth_fullgrad"

    def __init__(self, classifier: SmallResNet, n_samples: int = 8,
                 noise_scale: float = 0.05, seed: int = 0):
        super().__init__(classifier, normalize=True)
        self.n_samples = n_samples
        self.noise_scale = noise_scale
        self.seed = seed

    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      target_labels: Optional[np.ndarray] = None
                      ) -> List[SaliencyResult]:
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        targets = resolve_targets(labels, target_labels)
        rng = np.random.default_rng(self.seed)
        total = np.zeros(images.shape[:1] + images.shape[2:])
        for _ in range(self.n_samples):
            noise = rng.standard_normal(images.shape[1:]).astype(images.dtype)
            noisy = np.clip(images + self.noise_scale * noise[None], 0, 1)
            total += self._saliency_batch(noisy, labels)
        total /= self.n_samples
        return [SaliencyResult(total[i], int(labels[i]),
                               target_or_none(targets, i))
                for i in range(len(images))]

    def explain_batch_planned(self, compiled, images: np.ndarray,
                              labels: np.ndarray,
                              target_labels: Optional[np.ndarray] = None
                              ) -> List[SaliencyResult]:
        """One plan replay per noisy copy (same noise stream as the tape
        path, so planned and taped maps agree to float tolerance)."""
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        targets = resolve_targets(labels, target_labels)
        rng = np.random.default_rng(self.seed)
        total = np.zeros(images.shape[:1] + images.shape[2:])
        for _ in range(self.n_samples):
            noise = rng.standard_normal(images.shape[1:]).astype(images.dtype)
            noisy = np.clip(images + self.noise_scale * noise[None], 0, 1)
            total += self._saliency_batch_planned(compiled, noisy, labels)
        total /= self.n_samples
        return [SaliencyResult(total[i], int(labels[i]),
                               target_or_none(targets, i))
                for i in range(len(images))]
