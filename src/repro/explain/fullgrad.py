"""FullGrad (Srinivas & Fleuret 2019) and its Simple/Smooth variants.

FullGrad aggregates the input-gradient term with per-layer "bias
gradient" feature maps.  With our classifier we realise the layer terms
as |feature x feature-gradient| maps from every residual stage
(the implicit-bias formulation), matching the reference repo's
``fullgrad.py`` structure:

* **FullGrad** — input term + all stage terms, each min-max normalised
  before aggregation.
* **Simple FullGrad** — same but without per-map normalisation
  (the "simple" variant of the idiap repository).
* **Smooth FullGrad** — FullGrad averaged over noisy copies of the input.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from ..classifiers import SmallResNet
from ..data.transforms import resize_bilinear
from .base import Explainer, SaliencyResult


def _postprocess(gradient_map: np.ndarray, normalize: bool) -> np.ndarray:
    """Abs -> (optionally) min-max normalise one saliency component."""
    g = np.abs(gradient_map)
    if normalize:
        g = g - g.min()
        peak = g.max()
        if peak > 0:
            g = g / peak
    return g


class FullGradExplainer(Explainer):
    """Full-gradient decomposition saliency."""

    name = "fullgrad"

    def __init__(self, classifier: SmallResNet, normalize: bool = True):
        self.classifier = classifier
        self.normalize = normalize

    def _saliency_once(self, image: np.ndarray, label: int) -> np.ndarray:
        self.classifier.eval()
        x = nn.Tensor(image[None], requires_grad=True)
        logits, feats = self.classifier.forward_with_all_features(x)
        for f in feats:
            f.retain_grad()
        score = logits[np.arange(1), np.array([label])].sum()
        score.backward()

        h, w = image.shape[1:]
        # Input-gradient term: |x * dL/dx| summed over channels.
        saliency = _postprocess((x.grad[0] * image).sum(axis=0),
                                self.normalize)
        # Layer terms: |feat * dL/dfeat| channel-summed, upsampled.
        for f in feats:
            term = np.abs(f.grad[0] * f.data[0]).sum(axis=0)
            if term.shape != (h, w):
                term = resize_bilinear(term[None, None], h)[0, 0]
            saliency = saliency + _postprocess(term, self.normalize)
        return saliency

    def explain(self, image: np.ndarray, label: int,
                target_label: Optional[int] = None) -> SaliencyResult:
        image = np.asarray(image, dtype=nn.get_default_dtype())
        saliency = self._saliency_once(image, label)
        return SaliencyResult(saliency, label, target_label)


class SimpleFullGradExplainer(FullGradExplainer):
    """FullGrad without per-component normalisation."""

    name = "simple_fullgrad"

    def __init__(self, classifier: SmallResNet):
        super().__init__(classifier, normalize=False)


class SmoothFullGradExplainer(FullGradExplainer):
    """FullGrad averaged over Gaussian-noised inputs (SmoothGrad-style)."""

    name = "smooth_fullgrad"

    def __init__(self, classifier: SmallResNet, n_samples: int = 8,
                 noise_scale: float = 0.05, seed: int = 0):
        super().__init__(classifier, normalize=True)
        self.n_samples = n_samples
        self.noise_scale = noise_scale
        self.rng = np.random.default_rng(seed)

    def explain(self, image: np.ndarray, label: int,
                target_label: Optional[int] = None) -> SaliencyResult:
        image = np.asarray(image, dtype=nn.get_default_dtype())
        total = np.zeros(image.shape[1:])
        for _ in range(self.n_samples):
            noise = self.rng.standard_normal(image.shape).astype(image.dtype)
            noisy = image + self.noise_scale * noise
            total += self._saliency_once(np.clip(noisy, 0, 1), label)
        return SaliencyResult(total / self.n_samples, label, target_label)
