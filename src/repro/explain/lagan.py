"""LAGAN-style baseline: lesion-aware masking counterfactual.

LAGAN (Tao et al. 2023) trains a generator that predicts the lesion area
to remove so the image turns "healthy"; at explanation time a single
forward pass yields the mask, which is why LAGAN is fast at inference in
Table V but expensive to train in Table VI.  Our analog trains a small
conv mask-generator whose masked-and-filled output must (a) be
classified as the normal class and (b) use as little mask area as
possible; saliency is the predicted mask.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import plan
from ..classifiers import SmallResNet
from ..data import DataLoader, ImageDataset
from .base import Explainer, SaliencyResult, resolve_targets, target_or_none


class MaskGenerator(nn.Module):
    """U-ish conv net producing a soft mask in [0, 1]."""

    def __init__(self, in_channels: int = 1, base: int = 8, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.down1 = nn.DownBlock(in_channels, base, rng=rng)
        self.down2 = nn.DownBlock(base, base * 2, rng=rng)
        self.up1 = nn.UpBlock(base * 2, base, rng=rng)
        self.up2 = nn.UpBlock(base, base, rng=rng)
        self.out_conv = nn.Conv2d(base, 1, 3, padding=1, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        h = self.down2(self.down1(x))
        return self.out_conv(self.up2(self.up1(h))).sigmoid()


def train_lagan(dataset: ImageDataset, classifier: SmallResNet,
                epochs: int = 5, lr: float = 1e-3,
                sparsity: float = 0.5, seed: int = 0,
                normal_label: int = 0) -> MaskGenerator:
    """Train the mask generator to neutralise abnormal evidence.

    Abnormal images, with the masked region filled by the image mean,
    must be classified ``normal_label``; the mask is L1-penalised to stay
    small (lesion-sized).
    """
    model = MaskGenerator(dataset.image_shape[0], seed=seed)
    optimizer = nn.Adam(model.parameters(), lr=lr)
    abnormal = dataset.subset(np.where(dataset.labels != normal_label)[0])
    loader = DataLoader(abnormal, batch_size=16,
                        rng=np.random.default_rng(seed))
    classifier.eval()
    for _ in range(epochs):
        for images, __ in loader:
            x = nn.Tensor(images)
            mask = model(x)                        # (N, 1, H, W)
            fill = nn.Tensor(images.mean(axis=(2, 3), keepdims=True)
                             * np.ones_like(images))
            healthy = x * (1.0 - mask) + fill * mask
            logits = classifier(healthy)
            targets = np.full(len(images), normal_label, dtype=np.int64)
            loss = nn.cross_entropy(logits, targets) + sparsity * mask.mean()
            model.zero_grad()
            classifier.zero_grad()
            loss.backward()
            optimizer.step()
    model.eval()
    return model


class LAGANExplainer(Explainer):
    """Saliency = the trained mask-generator's predicted lesion mask."""

    name = "lagan"
    plan_eligible = True

    def __init__(self, mask_generator: MaskGenerator,
                 classifier: SmallResNet):
        self.mask_generator = mask_generator
        self.classifier = classifier

    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      target_labels: Optional[np.ndarray] = None) -> list:
        """One batched generator forward: saliency for the whole batch."""
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        targets = resolve_targets(labels, target_labels)
        self.mask_generator.eval()
        with nn.no_grad():
            masks = self.mask_generator(nn.Tensor(images)).data[:, 0]
        return [SaliencyResult(masks[i], int(labels[i]),
                               target_or_none(targets, i))
                for i in range(len(images))]

    def compile_plan(self, images: np.ndarray, labels: np.ndarray):
        """Forward-only plan over the mask generator (the classifier is
        never run at explanation time)."""
        images = np.asarray(images, dtype=nn.get_default_dtype())
        self.mask_generator.eval()

        def core(tr: plan.Tracer) -> None:
            x = tr.input("x", images)
            tr.output("mask", self.mask_generator(x))

        return plan.trace(core)

    def explain_batch_planned(self, compiled, images: np.ndarray,
                              labels: np.ndarray,
                              target_labels: Optional[np.ndarray] = None
                              ) -> list:
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        targets = resolve_targets(labels, target_labels)
        # Replay output is a view into the plan arena; copy before the
        # results outlive the next replay.
        masks = compiled.replay({"x": images})["mask"][:, 0].copy()
        return [SaliencyResult(masks[i], int(labels[i]),
                               target_or_none(targets, i))
                for i in range(len(images))]
