"""TS-CAM analog: token-semantic coupled attention maps.

TS-CAM (Yao et al. 2022) splits the image into patch tokens, trains a
vision transformer, and couples the class token's attention over patches
with per-token semantic (class) scores.  As the paper notes, TS-CAM
"created its own classifier rather than explaining external ones"; we do
the same: a small single-block patch-attention classifier is trained per
dataset, and the saliency map is attention x token-class-score.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn import plan
from ..data import DataLoader, ImageDataset
from ..data.transforms import resize_bilinear
from .base import Explainer, SaliencyResult, resolve_targets, target_or_none


class PatchAttentionClassifier(nn.Module):
    """Patch embedding + single-head self-attention + dual heads.

    A class token attends over patch tokens; classification uses the
    class token, while a token head scores every patch per class (the
    "token semantics" of TS-CAM).
    """

    def __init__(self, num_classes: int, in_channels: int = 1,
                 image_size: int = 32, patch: int = 4, dim: int = 16,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.patch = patch
        self.dim = dim
        self.tokens_per_side = image_size // patch
        n_tokens = self.tokens_per_side ** 2
        self.embed = nn.Conv2d(in_channels, dim, patch, stride=patch, rng=rng)
        self.pos = nn.Parameter(rng.standard_normal((1, n_tokens + 1, dim))
                                * 0.02)
        self.cls_token = nn.Parameter(rng.standard_normal((1, 1, dim)) * 0.02)
        self.norm = nn.LayerNorm(dim)
        self.wq = nn.Linear(dim, dim, rng=rng)
        self.wk = nn.Linear(dim, dim, rng=rng)
        self.wv = nn.Linear(dim, dim, rng=rng)
        self.mlp = nn.Linear(dim, dim, rng=rng)
        self.head = nn.Linear(dim, num_classes, rng=rng)       # class token
        self.token_head = nn.Linear(dim, num_classes, rng=rng)  # semantics
        self.num_classes = num_classes

    def forward_full(self, x: nn.Tensor):
        """Return (logits, attention over patches, token class scores)."""
        n = x.shape[0]
        patches = self.embed(x)                       # (N, D, t, t)
        t = patches.shape[2]
        tokens = patches.reshape(n, self.dim, t * t).transpose(0, 2, 1)
        ones = nn.ones((n, 1, 1))
        cls_tok = self.cls_token * ones               # broadcast to batch
        seq = nn.Tensor.concat([cls_tok, tokens], axis=1)
        seq = seq + self.pos
        normed = self.norm(seq)

        q = self.wq(normed)
        k = self.wk(normed)
        v = self.wv(normed)
        scale = 1.0 / np.sqrt(self.dim)
        attn = F.softmax(q.matmul(k.transpose(0, 2, 1)) * scale, axis=-1)
        mixed = attn.matmul(v)
        seq = seq + mixed
        seq = seq + self.mlp(self.norm(seq)).relu()

        cls_repr = seq[:, 0]
        logits = self.head(cls_repr)
        token_scores = self.token_head(seq[:, 1:])    # (N, T, classes)
        cls_attention = attn[:, 0, 1:]                # (N, T)
        return logits, cls_attention, token_scores

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.forward_full(x)[0]


def train_tscam(dataset: ImageDataset, epochs: int = 5, lr: float = 1e-3,
                seed: int = 0, dim: int = 16) -> PatchAttentionClassifier:
    """Train the TS-CAM analog classifier on ``dataset``."""
    model = PatchAttentionClassifier(
        dataset.num_classes, dataset.image_shape[0],
        image_size=dataset.image_shape[1], dim=dim, seed=seed)
    optimizer = nn.Adam(model.parameters(), lr=lr)
    loader = DataLoader(dataset, batch_size=16,
                        rng=np.random.default_rng(seed))
    for _ in range(epochs):
        for images, labels in loader:
            logits, __, token_scores = model.forward_full(nn.Tensor(images))
            # Token scores are supervised with the image label (weak
            # localisation supervision, as in TS-CAM's coupled training).
            pooled_tokens = token_scores.mean(axis=1)
            loss = nn.cross_entropy(logits, labels) \
                + 0.5 * nn.cross_entropy(pooled_tokens, labels)
            model.zero_grad()
            loss.backward()
            optimizer.step()
    model.eval()
    return model


class TSCAMExplainer(Explainer):
    """Saliency = class-token attention x per-token class score.

    Batched-first: one ``no_grad`` forward over the whole batch; the
    attention/semantic coupling is a vectorized elementwise product.
    """

    name = "tscam"
    plan_eligible = True

    def __init__(self, tscam_model: PatchAttentionClassifier):
        self.model = tscam_model

    def _couple(self, attention: np.ndarray, semantic: np.ndarray,
                labels: np.ndarray, out_h: int) -> np.ndarray:
        """Couple attention with label-selected token softmax scores;
        shared by tape and plan paths."""
        n = len(labels)
        t = self.model.tokens_per_side
        attn_maps = attention.reshape(n, t, t)
        semantic = np.take_along_axis(
            semantic, labels[:, None, None], axis=2)[:, :, 0]
        coupled = attn_maps * semantic.reshape(n, t, t)
        return resize_bilinear(coupled[:, None], out_h)[:, 0]

    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      target_labels: Optional[np.ndarray] = None) -> list:
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        targets = resolve_targets(labels, target_labels)
        n = len(images)
        self.model.eval()
        with nn.no_grad():
            __, attention, token_scores = self.model.forward_full(
                nn.Tensor(images))
        saliency = self._couple(attention.data,
                                F.softmax(token_scores, axis=-1).data,
                                labels, images.shape[2])
        return [SaliencyResult(saliency[i], int(labels[i]),
                               target_or_none(targets, i))
                for i in range(n)]

    def compile_plan(self, images: np.ndarray, labels: np.ndarray):
        """Forward-only plan: the class-token attention row and the
        token-score softmax are the only traced outputs (label selection
        happens in numpy after replay, so one plan serves any labels).
        The unused classification head is pruned as a dead op."""
        images = np.asarray(images, dtype=nn.get_default_dtype())
        self.model.eval()

        def core(tr: plan.Tracer) -> None:
            x = tr.input("x", images)
            __, attention, token_scores = self.model.forward_full(x)
            tr.output("attention", attention)
            tr.output("semantic", F.softmax(token_scores, axis=-1))

        return plan.trace(core)

    def explain_batch_planned(self, compiled, images: np.ndarray,
                              labels: np.ndarray,
                              target_labels: Optional[np.ndarray] = None
                              ) -> list:
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        targets = resolve_targets(labels, target_labels)
        out = compiled.replay({"x": images})
        saliency = self._couple(out["attention"], out["semantic"],
                                labels, images.shape[2])
        return [SaliencyResult(saliency[i], int(labels[i]),
                               target_or_none(targets, i))
                for i in range(len(images))]
