"""StyLEx-style baseline: latent-space counterfactual by per-image
optimisation.

StyLEx (Lang et al. 2021, "Explaining in Style") trains a generator whose
style space is coupled to the classifier and finds the style coordinates
that flip the prediction.  Our analog trains a compact autoencoder with a
classifier-consistency term, then — per explained image — performs
gradient descent in the latent space until the black-box classifier
flips, exactly the "local random walk in latent space" family the paper
groups StyLEx into.  The per-image optimisation is why StyLEx is by far
the slowest method in the paper's Table V; the same holds here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..classifiers import SmallResNet
from ..data import DataLoader, ImageDataset
from .base import Explainer, SaliencyResult, default_counter_label


class LatentAutoencoder(nn.Module):
    """Conv autoencoder with a single flat latent vector."""

    def __init__(self, in_channels: int = 1, image_size: int = 32,
                 latent_dim: int = 32, base: int = 8, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.latent_dim = latent_dim
        spatial = image_size // 4
        self.enc1 = nn.DownBlock(in_channels, base, rng=rng)
        self.enc2 = nn.DownBlock(base, base * 2, rng=rng)
        self.enc_fc = nn.Linear(base * 2 * spatial * spatial, latent_dim,
                                rng=rng)
        self.dec_fc = nn.Linear(latent_dim, base * 2 * spatial * spatial,
                                rng=rng)
        self.dec1 = nn.UpBlock(base * 2, base, rng=rng)
        self.dec2 = nn.UpBlock(base, base, rng=rng)
        self.out_conv = nn.Conv2d(base, in_channels, 3, padding=1, rng=rng)
        self._spatial = spatial
        self._base = base

    def encode(self, x: nn.Tensor) -> nn.Tensor:
        h = self.enc2(self.enc1(x))
        return self.enc_fc(h.flatten(1))

    def decode(self, z: nn.Tensor) -> nn.Tensor:
        n = z.shape[0]
        h = self.dec_fc(z).relu()
        h = h.reshape(n, self._base * 2, self._spatial, self._spatial)
        return self.out_conv(self.dec2(self.dec1(h))).sigmoid()

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.decode(self.encode(x))


def train_stylex(dataset: ImageDataset, classifier: SmallResNet,
                 epochs: int = 5, lr: float = 1e-3, latent_dim: int = 32,
                 seed: int = 0) -> LatentAutoencoder:
    """Train the StyLEx autoencoder with a classifier-consistency term."""
    model = LatentAutoencoder(dataset.image_shape[0],
                              dataset.image_shape[1],
                              latent_dim=latent_dim, seed=seed)
    optimizer = nn.Adam(model.parameters(), lr=lr)
    loader = DataLoader(dataset, batch_size=16,
                        rng=np.random.default_rng(seed))
    classifier.eval()
    for _ in range(epochs):
        for images, labels in loader:
            recon = model(nn.Tensor(images))
            loss = nn.l1_loss(recon, nn.Tensor(images))
            # Classifier-consistency: reconstructions keep their class.
            logits = classifier(recon)
            loss = loss + 0.1 * nn.cross_entropy(logits, labels)
            model.zero_grad()
            classifier.zero_grad()
            loss.backward()
            optimizer.step()
    model.eval()
    return model


class StylexExplainer(Explainer):
    """Per-image latent-space counterfactual search (slow by design)."""

    name = "stylex"

    def __init__(self, autoencoder: LatentAutoencoder,
                 classifier: SmallResNet, steps: int = 40,
                 step_size: float = 0.5, l2_penalty: float = 0.01):
        self.autoencoder = autoencoder
        self.classifier = classifier
        self.steps = steps
        self.step_size = step_size
        self.l2_penalty = l2_penalty

    def explain(self, image: np.ndarray, label: int,
                target_label: Optional[int] = None) -> SaliencyResult:
        image = np.asarray(image, dtype=nn.get_default_dtype())
        if target_label is None:
            target_label = default_counter_label(
                label, self.classifier.num_classes)
        self.autoencoder.eval()
        self.classifier.eval()

        with nn.no_grad():
            z0 = self.autoencoder.encode(nn.Tensor(image[None])).data.copy()
            base = self.autoencoder.decode(nn.Tensor(z0)).data[0]
        z = z0.copy()
        targets = np.array([target_label])
        for _ in range(self.steps):
            zt = nn.Tensor(z, requires_grad=True)
            decoded = self.autoencoder.decode(zt)
            logits = self.classifier(decoded)
            loss = nn.cross_entropy(logits, targets) \
                + self.l2_penalty * ((zt - nn.Tensor(z0)) ** 2).sum()
            self.autoencoder.zero_grad()
            self.classifier.zero_grad()
            loss.backward()
            z = z - self.step_size * zt.grad
            if logits.data.argmax(axis=1)[0] == target_label:
                break

        with nn.no_grad():
            counterfactual = self.autoencoder.decode(nn.Tensor(z)).data[0]
        saliency = np.abs(counterfactual - base).sum(axis=0)
        return SaliencyResult(saliency, label, target_label,
                              meta={"z_shift": float(np.abs(z - z0).sum())})
