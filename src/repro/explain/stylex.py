"""StyLEx-style baseline: latent-space counterfactual by per-image
optimisation.

StyLEx (Lang et al. 2021, "Explaining in Style") trains a generator whose
style space is coupled to the classifier and finds the style coordinates
that flip the prediction.  Our analog trains a compact autoencoder with a
classifier-consistency term, then — per explained image — performs
gradient descent in the latent space until the black-box classifier
flips, exactly the "local random walk in latent space" family the paper
groups StyLEx into.  The per-image optimisation is why StyLEx is by far
the slowest method in the paper's Table V; the same holds here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..classifiers import SmallResNet
from ..data import DataLoader, ImageDataset
from .base import Explainer, SaliencyResult, resolve_targets


class LatentAutoencoder(nn.Module):
    """Conv autoencoder with a single flat latent vector."""

    def __init__(self, in_channels: int = 1, image_size: int = 32,
                 latent_dim: int = 32, base: int = 8, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.latent_dim = latent_dim
        spatial = image_size // 4
        self.enc1 = nn.DownBlock(in_channels, base, rng=rng)
        self.enc2 = nn.DownBlock(base, base * 2, rng=rng)
        self.enc_fc = nn.Linear(base * 2 * spatial * spatial, latent_dim,
                                rng=rng)
        self.dec_fc = nn.Linear(latent_dim, base * 2 * spatial * spatial,
                                rng=rng)
        self.dec1 = nn.UpBlock(base * 2, base, rng=rng)
        self.dec2 = nn.UpBlock(base, base, rng=rng)
        self.out_conv = nn.Conv2d(base, in_channels, 3, padding=1, rng=rng)
        self._spatial = spatial
        self._base = base

    def encode(self, x: nn.Tensor) -> nn.Tensor:
        h = self.enc2(self.enc1(x))
        return self.enc_fc(h.flatten(1))

    def decode(self, z: nn.Tensor) -> nn.Tensor:
        n = z.shape[0]
        h = self.dec_fc(z).relu()
        h = h.reshape(n, self._base * 2, self._spatial, self._spatial)
        return self.out_conv(self.dec2(self.dec1(h))).sigmoid()

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.decode(self.encode(x))


def train_stylex(dataset: ImageDataset, classifier: SmallResNet,
                 epochs: int = 5, lr: float = 1e-3, latent_dim: int = 32,
                 seed: int = 0) -> LatentAutoencoder:
    """Train the StyLEx autoencoder with a classifier-consistency term."""
    model = LatentAutoencoder(dataset.image_shape[0],
                              dataset.image_shape[1],
                              latent_dim=latent_dim, seed=seed)
    optimizer = nn.Adam(model.parameters(), lr=lr)
    loader = DataLoader(dataset, batch_size=16,
                        rng=np.random.default_rng(seed))
    classifier.eval()
    for _ in range(epochs):
        for images, labels in loader:
            recon = model(nn.Tensor(images))
            loss = nn.l1_loss(recon, nn.Tensor(images))
            # Classifier-consistency: reconstructions keep their class.
            logits = classifier(recon)
            loss = loss + 0.1 * nn.cross_entropy(logits, labels)
            model.zero_grad()
            classifier.zero_grad()
            loss.backward()
            optimizer.step()
    model.eval()
    return model


class StylexExplainer(Explainer):
    """Latent-space counterfactual search (slow by design).

    Batched-first: all images' latent codes descend together — each
    optimisation step decodes and classifies the whole active set in
    shared conv batches.  ``cross_entropy(..., reduction="sum")`` plus a
    summed L2 penalty keeps every sample's gradient identical to its
    batch-of-one value, and samples whose prediction has flipped drop
    out of the active set exactly as the per-image loop would break.
    """

    name = "stylex"
    needs_gradients = True

    def __init__(self, autoencoder: LatentAutoencoder,
                 classifier: SmallResNet, steps: int = 40,
                 step_size: float = 0.5, l2_penalty: float = 0.01):
        self.autoencoder = autoencoder
        self.classifier = classifier
        self.steps = steps
        self.step_size = step_size
        self.l2_penalty = l2_penalty

    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      target_labels: Optional[np.ndarray] = None) -> list:
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        targets = resolve_targets(labels, target_labels,
                                  self.classifier.num_classes)
        n = len(images)
        self.autoencoder.eval()
        self.classifier.eval()

        with nn.no_grad():
            z0 = self.autoencoder.encode(nn.Tensor(images)).data.copy()
            base = self.autoencoder.decode(nn.Tensor(z0)).data
        z = z0.copy()
        active = np.ones(n, dtype=bool)
        # Only latent-code gradients are consumed, so both networks'
        # weights are frozen for the whole descent: the shared backward
        # pass skips every weight-gradient GEMM.
        with nn.frozen(self.autoencoder, self.classifier):
            for _ in range(self.steps):
                idx = np.nonzero(active)[0]
                if not len(idx):
                    break
                zt = nn.Tensor(z[idx], requires_grad=True)
                decoded = self.autoencoder.decode(zt)
                logits = self.classifier(decoded)
                loss = nn.cross_entropy(logits, targets[idx],
                                        reduction="sum") \
                    + self.l2_penalty * ((zt - nn.Tensor(z0[idx])) ** 2).sum()
                loss.backward()
                z[idx] = z[idx] - self.step_size * zt.grad
                flipped = logits.data.argmax(axis=1) == targets[idx]
                active[idx[flipped]] = False

        with nn.no_grad():
            counterfactual = self.autoencoder.decode(nn.Tensor(z)).data
        saliency = np.abs(counterfactual - base).sum(axis=1)
        shifts = np.abs(z - z0).sum(axis=1)
        return [SaliencyResult(saliency[i], int(labels[i]), int(targets[i]),
                               meta={"z_shift": float(shifts[i])})
                for i in range(n)]
