"""LIME (Ribeiro et al. 2016) adapted to our black-box classifier.

Superpixels are a regular grid (appropriate at 32x32 where classic
quickshift superpixels would be single pixels anyway).  Perturbed samples
mask random superpixel subsets with the image mean; a ridge regression
weighted by proximity to the original yields per-superpixel importance.
The perturbed variants of every image in a batch are scored through the
classifier together, one shared conv batch per chunk.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..classifiers import SmallResNet
from .base import Explainer, SaliencyResult


class LimeExplainer(Explainer):
    """Grid-superpixel LIME with exponential-kernel ridge regression."""

    name = "lime"

    def __init__(self, classifier: SmallResNet, grid: int = 8,
                 n_samples: int = 200, ridge: float = 1.0,
                 kernel_width: float = 0.25, seed: int = 0,
                 max_batch: int = 4096):
        self.classifier = classifier
        self.grid = grid
        self.n_samples = n_samples
        self.ridge = ridge
        self.kernel_width = kernel_width
        self.rng = np.random.default_rng(seed)
        self.max_batch = max_batch

    def _segments(self, h: int, w: int) -> np.ndarray:
        """Segment map (H, W) of grid superpixel ids."""
        rows = (np.arange(h) * self.grid // h)[:, None]
        cols = (np.arange(w) * self.grid // w)[None, :]
        return rows * self.grid + cols

    def explain(self, image: np.ndarray, label: int,
                target_label: Optional[int] = None) -> SaliencyResult:
        target = None if target_label is None else np.array([target_label])
        return self.explain_batch(np.asarray(image)[None],
                                  np.array([label]), target)[0]

    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      target_labels: Optional[np.ndarray] = None) -> list:
        """Fit one local surrogate per image, scoring all perturbed
        variants of a chunk of images in a single classifier sweep."""
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        n, c, h, w = images.shape
        segments = self._segments(h, w)
        n_segments = self.grid * self.grid
        s = self.n_samples

        # Binary presence matrices; first row per image is unperturbed.
        z = self.rng.random((n, s, n_segments)) > 0.5
        z[:, 0] = True

        chunk = max(1, self.max_batch // s)
        probs = np.empty((n, s))
        for start in range(0, n, chunk):
            imgs = images[start:start + chunk]
            m = len(imgs)
            off = ~z[start:start + m][..., segments]        # (m, S, H, W)
            fills = imgs.mean(axis=(1, 2, 3))
            batch = np.where(off[:, :, None],
                             fills[:, None, None, None, None],
                             imgs[:, None])                 # (m, S, C, H, W)
            out = self.classifier.predict_proba(
                batch.reshape(m * s, c, h, w)).reshape(m, s, -1)
            probs[start:start + m] = out[np.arange(m)[:, None],
                                         np.arange(s)[None, :],
                                         labels[start:start + m, None]]

        results = []
        eye = self.ridge * np.eye(n_segments)
        for i in range(n):
            # Proximity kernel on cosine-like distance in mask space.
            distance = 1.0 - z[i].mean(axis=1)
            kernel = np.exp(-(distance ** 2) / self.kernel_width ** 2)

            # Weighted ridge regression: solve (X^T W X + rI) w = X^T W y.
            x = z[i].astype(np.float64)
            xw = x * kernel[:, None]
            gram = x.T @ xw + eye
            coef = np.linalg.solve(gram, xw.T @ probs[i])

            saliency = np.maximum(coef[segments], 0.0)
            target = None if target_labels is None else int(target_labels[i])
            results.append(SaliencyResult(saliency, int(labels[i]), target,
                                          meta={"coef": coef}))
        return results
