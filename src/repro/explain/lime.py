"""LIME (Ribeiro et al. 2016) adapted to our black-box classifier.

Superpixels are a regular grid (appropriate at 32x32 where classic
quickshift superpixels would be single pixels anyway).  Perturbed samples
mask random superpixel subsets with the image mean; a ridge regression
weighted by proximity to the original yields per-superpixel importance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..classifiers import SmallResNet
from .base import Explainer, SaliencyResult


class LimeExplainer(Explainer):
    """Grid-superpixel LIME with exponential-kernel ridge regression."""

    name = "lime"

    def __init__(self, classifier: SmallResNet, grid: int = 8,
                 n_samples: int = 200, ridge: float = 1.0,
                 kernel_width: float = 0.25, seed: int = 0):
        self.classifier = classifier
        self.grid = grid
        self.n_samples = n_samples
        self.ridge = ridge
        self.kernel_width = kernel_width
        self.rng = np.random.default_rng(seed)

    def _segments(self, h: int, w: int) -> np.ndarray:
        """Segment map (H, W) of grid superpixel ids."""
        rows = (np.arange(h) * self.grid // h)[:, None]
        cols = (np.arange(w) * self.grid // w)[None, :]
        return rows * self.grid + cols

    def explain(self, image: np.ndarray, label: int,
                target_label: Optional[int] = None) -> SaliencyResult:
        image = np.asarray(image, dtype=np.float64)
        c, h, w = image.shape
        segments = self._segments(h, w)
        n_segments = self.grid * self.grid
        fill = image.mean()

        # Binary presence matrix; first row is the unperturbed image.
        z = self.rng.random((self.n_samples, n_segments)) > 0.5
        z[0] = True
        batch = np.empty((self.n_samples, c, h, w))
        for i in range(self.n_samples):
            masked = image.copy()
            off = ~z[i][segments]
            masked[:, off] = fill
            batch[i] = masked

        probs = self.classifier.predict_proba(batch)[:, label]

        # Proximity kernel on cosine-like distance in mask space.
        distance = 1.0 - z.mean(axis=1)
        kernel = np.exp(-(distance ** 2) / self.kernel_width ** 2)

        # Weighted ridge regression: solve (X^T W X + rI) w = X^T W y.
        x = z.astype(np.float64)
        xw = x * kernel[:, None]
        gram = x.T @ xw + self.ridge * np.eye(n_segments)
        coef = np.linalg.solve(gram, xw.T @ probs)

        saliency = coef[segments]
        saliency = np.maximum(saliency, 0.0)
        return SaliencyResult(saliency, label, target_label,
                              meta={"coef": coef})
