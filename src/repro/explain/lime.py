"""LIME (Ribeiro et al. 2016) adapted to our black-box classifier.

Superpixels are a regular grid (appropriate at 32x32 where classic
quickshift superpixels would be single pixels anyway).  Perturbed samples
mask random superpixel subsets with the image mean; a ridge regression
weighted by proximity to the original yields per-superpixel importance.

Batched-first: the mask design matrix is drawn once per call (reseeded
from ``seed``, shared by every image in the batch), so the weighted ridge
normal matrix is factorised a single time, all images' perturbed
variants are scored through the classifier in shared conv batches, and
batch-of-one ``explain`` results match the batched path exactly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..classifiers import SmallResNet
from .base import Explainer, SaliencyResult, resolve_targets, target_or_none


class LimeExplainer(Explainer):
    """Grid-superpixel LIME with exponential-kernel ridge regression."""

    name = "lime"

    def __init__(self, classifier: SmallResNet, grid: int = 8,
                 n_samples: int = 200, ridge: float = 1.0,
                 kernel_width: float = 0.25, seed: int = 0,
                 max_batch: int = 4096):
        self.classifier = classifier
        self.grid = grid
        self.n_samples = n_samples
        self.ridge = ridge
        self.kernel_width = kernel_width
        self.seed = seed
        self.max_batch = max_batch

    def _segments(self, h: int, w: int) -> np.ndarray:
        """Segment map (H, W) of grid superpixel ids."""
        rows = (np.arange(h) * self.grid // h)[:, None]
        cols = (np.arange(w) * self.grid // w)[None, :]
        return rows * self.grid + cols

    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      target_labels: Optional[np.ndarray] = None) -> list:
        """Fit one local surrogate per image over a shared mask design,
        scoring all perturbed variants of a chunk of images in a single
        classifier sweep."""
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        targets = resolve_targets(labels, target_labels)
        n, c, h, w = images.shape
        segments = self._segments(h, w)
        n_segments = self.grid * self.grid
        s = self.n_samples

        # Shared binary presence design; first row is unperturbed.  Drawn
        # fresh per call so batch composition cannot shift the stream.
        rng = np.random.default_rng(self.seed)
        z = rng.random((s, n_segments)) > 0.5
        z[0] = True
        off = ~z[:, segments]                               # (S, H, W)

        chunk = max(1, self.max_batch // s)
        probs = np.empty((n, s))
        for start in range(0, n, chunk):
            imgs = images[start:start + chunk]
            m = len(imgs)
            fills = imgs.mean(axis=(1, 2, 3))
            batch = np.where(off[None, :, None],
                             fills[:, None, None, None, None],
                             imgs[:, None])                 # (m, S, C, H, W)
            out = self.classifier.predict_proba(
                batch.reshape(m * s, c, h, w)).reshape(m, s, -1)
            probs[start:start + m] = out[np.arange(m)[:, None],
                                         np.arange(s)[None, :],
                                         labels[start:start + m, None]]

        # Proximity kernel on cosine-like distance in mask space; the
        # design is shared, so the weighted normal matrix is solved once
        # for every image's response vector.
        distance = 1.0 - z.mean(axis=1)
        kernel = np.exp(-(distance ** 2) / self.kernel_width ** 2)
        x = z.astype(np.float64)
        xw = x * kernel[:, None]
        gram = x.T @ xw + self.ridge * np.eye(n_segments)
        coefs = np.linalg.solve(gram, xw.T @ probs.T).T     # (n, n_segments)

        return [SaliencyResult(np.maximum(coefs[i][segments], 0.0),
                               int(labels[i]), target_or_none(targets, i),
                               meta={"coef": coefs[i]})
                for i in range(n)]
