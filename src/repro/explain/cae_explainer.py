"""The paper's explainer: guided counterfactual generation on the
class-associated manifold (Section III.E, Fig. 5).

Pipeline for one exemplar:

1. Encode the exemplar into (CS, IS) codes; locate its CS code on the
   manifold learned from the training set.
2. Plan a guided transition path from the exemplar's code toward the
   counter class (nearest counter-class code by default — the "nearly
   shortest class-flipping path").
3. Decode synthetic samples along the path, all sharing the exemplar's
   IS code; optionally stop early once the black-box classifier flips.
4. Saliency = sum of frame-to-frame absolute difference maps weighted by
   the classifier's probability changes (or the simple endpoint contrast
   for linear paths).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..classifiers import SmallResNet
from ..core import CAEModel, ClassAssociatedManifold
from .base import Explainer, SaliencyResult, resolve_targets


class CAEExplainer(Explainer):
    """Guided counterfactual explainer over a trained CAE model.

    Parameters
    ----------
    model:
        A trained :class:`~repro.core.CAEModel`.
    manifold:
        Manifold built from training-set CS codes (the global knowledge).
    classifier:
        The black-box classifier whose behaviour is being explained; used
        to weight the differential maps and to detect class flips.
    steps:
        Number of interpolation points along the transition path.
    endpoint:
        Path destination strategy: ``"nearest"`` counter code (default)
        or counter-class ``"centroid"``.
    stop_at_flip:
        If True, truncate the generated series once the classifier's
        argmax reaches the target class (the paper's early stop).
    """

    name = "cae"

    def __init__(self, model: CAEModel, manifold: ClassAssociatedManifold,
                 classifier: SmallResNet, steps: int = 8,
                 endpoint: str = "nearest", stop_at_flip: bool = True):
        self.model = model
        self.manifold = manifold
        self.classifier = classifier
        self.steps = steps
        self.endpoint = endpoint
        self.stop_at_flip = stop_at_flip

    # ------------------------------------------------------------------
    @staticmethod
    def _truncate_at_flip(probs_all: np.ndarray, target_label: int) -> int:
        """Series length after the paper's early stop (>= 2 frames)."""
        flipped = probs_all.argmax(axis=1) == target_label
        if flipped.any():
            return max(int(np.argmax(flipped)) + 1, 2)
        return len(probs_all)

    def generate_series(self, image: np.ndarray, label: int,
                        target_label: int) -> tuple:
        """Decode the synthetic sample series along the guided path.

        Returns ``(series, probs)`` where ``series`` is (steps, C, H, W)
        and ``probs`` is the classifier's probability of ``label`` at
        each step.
        """
        image = np.asarray(image, dtype=nn.get_default_dtype())
        cs, is_code = self.model.encode(image[None])
        path = self.manifold.plan_path(cs[0], label, target_label,
                                       steps=self.steps,
                                       endpoint=self.endpoint)
        series = self.model.decode(path.codes, np.repeat(
            is_code, path.steps, axis=0))
        probs_all = self.classifier.predict_proba(series)
        if self.stop_at_flip:
            stop = self._truncate_at_flip(probs_all, target_label)
            series = series[:stop]
            probs_all = probs_all[:stop]
        return series, probs_all[:, label]

    @staticmethod
    def _saliency_from_series(image: np.ndarray, series: np.ndarray,
                              probs: np.ndarray) -> np.ndarray:
        """Differential-map weighting + endpoint contrast for one image."""
        # Frame-to-frame differential maps weighted by probability drops.
        diffs = np.abs(np.diff(series, axis=0)).sum(axis=1)  # (T-1, H, W)
        prob_drops = np.maximum(probs[:-1] - probs[1:], 0.0)
        if prob_drops.sum() <= 1e-9:
            weights = np.ones(len(diffs)) / max(len(diffs), 1)
        else:
            weights = prob_drops / prob_drops.sum()
        saliency = (diffs * weights[:, None, None]).sum(axis=0)

        # Anchor on the original-vs-destination contrast as well, which the
        # paper notes suffices for linear paths; blending both is robust to
        # decoder reconstruction error in the first frame.
        endpoint_contrast = np.abs(series[-1] - np.asarray(image)).sum(axis=0)
        return 0.5 * saliency / max(saliency.max(), 1e-9) \
            + 0.5 * endpoint_contrast / max(endpoint_contrast.max(), 1e-9)

    # ------------------------------------------------------------------
    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      target_labels: Optional[np.ndarray] = None) -> list:
        """Guided counterfactual series for a whole batch at once.

        Batched-first: one encoder pass locates every exemplar on the
        manifold, all transition paths are decoded in one shared decoder
        sweep, and one classifier sweep scores every generated frame.
        Only the cheap per-image numpy post-processing (early stop,
        differential-map weighting) stays in a loop.
        """
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        targets = resolve_targets(labels, target_labels,
                                  self.classifier.num_classes)
        n = len(images)

        cs, is_codes = self.model.encode(images)
        paths = [self.manifold.plan_path(cs[i], int(labels[i]),
                                         int(targets[i]), steps=self.steps,
                                         endpoint=self.endpoint)
                 for i in range(n)]
        all_codes = np.concatenate([p.codes for p in paths])
        all_series = self.model.decode(
            all_codes, np.repeat(is_codes, self.steps, axis=0))
        all_probs = self.classifier.predict_proba(all_series)

        results = []
        for i in range(n):
            series = all_series[i * self.steps:(i + 1) * self.steps]
            probs_all = all_probs[i * self.steps:(i + 1) * self.steps]
            if self.stop_at_flip:
                stop = self._truncate_at_flip(probs_all, int(targets[i]))
                series = series[:stop]
                probs_all = probs_all[:stop]
            probs = probs_all[:, int(labels[i])]
            saliency = self._saliency_from_series(images[i], series, probs)
            results.append(SaliencyResult(
                saliency, int(labels[i]), int(targets[i]),
                meta={"probs": probs, "series_len": len(series)}))
        return results

    # ------------------------------------------------------------------
    def explain_all_counters(self, image: np.ndarray, label: int) -> list:
        """Multi-class mode: one saliency map per counter class."""
        return [self.explain(image, label, counter)
                for counter in self.manifold.counter_classes(label)]
