"""Explainer factory: builds the full Table II method suite for a dataset.

``build_all_explainers`` trains the auxiliary models the baselines need
(TS-CAM's own classifier, StyLEx's autoencoder, LAGAN's mask generator,
ICAM-reg's dual-code model) and returns a name -> Explainer mapping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..classifiers import SmallResNet
from ..config import ReproConfig
from ..core import CAEModel, train_cae
from ..data import ImageDataset
from .base import Explainer
from .cae_explainer import CAEExplainer
from .fullgrad import (FullGradExplainer, SimpleFullGradExplainer,
                       SmoothFullGradExplainer)
from .gradcam import GradCAMExplainer
from .icam import ICAMExplainer, ICAMRegModel, train_icam
from .lagan import LAGANExplainer, train_lagan
from .lime import LimeExplainer
from .occlusion import OcclusionExplainer
from .stylex import StylexExplainer, train_stylex
from .tscam import TSCAMExplainer, train_tscam

#: Column order of the paper's Table II (ours last).
TABLE2_METHODS = ("lime", "fullgrad", "simple_fullgrad", "smooth_fullgrad",
                  "gradcam", "stylex", "tscam", "lagan", "icam", "cae")


@dataclass
class ExplainerSuite:
    """All trained explainers for one dataset plus training wall-times."""

    explainers: Dict[str, Explainer]
    training_times: Dict[str, float] = field(default_factory=dict)
    cae_model: Optional[CAEModel] = None
    icam_model: Optional[ICAMRegModel] = None

    def __getitem__(self, name: str) -> Explainer:
        return self.explainers[name]

    def __iter__(self):
        return iter(self.explainers.items())


def build_all_explainers(train_set: ImageDataset, classifier: SmallResNet,
                         config: Optional[ReproConfig] = None,
                         cae_iterations: int = 200,
                         aux_epochs: int = 3,
                         include: Optional[tuple] = None,
                         verbose: bool = False) -> ExplainerSuite:
    """Train and assemble the Table II explainer suite.

    ``include`` restricts which methods are built (e.g. for quick tests);
    the CAE and ICAM generative models are only trained when requested.
    """
    include = tuple(include) if include else TABLE2_METHODS
    explainers: Dict[str, Explainer] = {}
    times: Dict[str, float] = {}
    cae_model = None
    icam_model = None

    if "lime" in include:
        explainers["lime"] = LimeExplainer(classifier)
    if "gradcam" in include:
        explainers["gradcam"] = GradCAMExplainer(classifier)
    if "fullgrad" in include:
        explainers["fullgrad"] = FullGradExplainer(classifier)
    if "simple_fullgrad" in include:
        explainers["simple_fullgrad"] = SimpleFullGradExplainer(classifier)
    if "smooth_fullgrad" in include:
        explainers["smooth_fullgrad"] = SmoothFullGradExplainer(classifier)
    if "occlusion" in include:
        explainers["occlusion"] = OcclusionExplainer(classifier)

    if "tscam" in include:
        start = time.perf_counter()
        tscam_model = train_tscam(train_set, epochs=aux_epochs)
        times["tscam"] = time.perf_counter() - start
        explainers["tscam"] = TSCAMExplainer(tscam_model)

    if "stylex" in include:
        start = time.perf_counter()
        autoencoder = train_stylex(train_set, classifier, epochs=aux_epochs)
        times["stylex"] = time.perf_counter() - start
        explainers["stylex"] = StylexExplainer(autoencoder, classifier)

    if "lagan" in include:
        start = time.perf_counter()
        mask_gen = train_lagan(train_set, classifier, epochs=aux_epochs)
        times["lagan"] = time.perf_counter() - start
        explainers["lagan"] = LAGANExplainer(mask_gen, classifier)

    if "icam" in include:
        start = time.perf_counter()
        icam_model = train_icam(train_set, iterations=cae_iterations,
                                config=config, verbose=verbose)
        times["icam"] = time.perf_counter() - start
        icam_manifold = icam_model.build_manifold(train_set)
        explainers["icam"] = ICAMExplainer(icam_model, icam_manifold,
                                           train_set.num_classes)

    if "cae" in include:
        start = time.perf_counter()
        cae_model = train_cae(train_set, iterations=cae_iterations,
                              config=config, verbose=verbose)
        times["cae"] = time.perf_counter() - start
        manifold = cae_model.build_manifold(train_set)
        explainers["cae"] = CAEExplainer(cae_model, manifold, classifier)

    return ExplainerSuite(explainers, times, cae_model, icam_model)
