"""Grad-CAM (Selvaraju et al. 2017) on the classifier's last conv stage."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..classifiers import SmallResNet
from ..data.transforms import resize_bilinear
from .base import Explainer, SaliencyResult


class GradCAMExplainer(Explainer):
    """Channel-weighted activation map from last-stage gradients."""

    name = "gradcam"

    def __init__(self, classifier: SmallResNet):
        self.classifier = classifier

    def explain(self, image: np.ndarray, label: int,
                target_label: Optional[int] = None) -> SaliencyResult:
        image = np.asarray(image, dtype=nn.get_default_dtype())
        self.classifier.eval()
        x = nn.Tensor(image[None], requires_grad=True)
        logits, feats = self.classifier.forward_with_features(x)
        feats.retain_grad()
        score = logits[np.arange(1), np.array([label])].sum()
        score.backward()

        grads = feats.grad[0]                  # (C, h, w)
        activations = feats.data[0]
        channel_weights = grads.mean(axis=(1, 2))   # GAP of gradients
        cam = np.maximum(
            (channel_weights[:, None, None] * activations).sum(axis=0), 0.0)

        h, w = image.shape[1:]
        cam = resize_bilinear(cam[None, None], h)[0, 0]
        return SaliencyResult(cam, label, target_label)
