"""Grad-CAM (Selvaraju et al. 2017) on the classifier's last conv stage."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from ..classifiers import SmallResNet
from ..data.transforms import resize_bilinear
from .base import Explainer, SaliencyResult, resolve_targets, target_or_none


class GradCAMExplainer(Explainer):
    """Channel-weighted activation map from last-stage gradients.

    Batched-first: one forward and one backward over the whole batch.
    Summing each sample's selected class logit keeps the per-sample
    gradients independent, so ``feats.grad[i]`` is exactly the gradient
    a one-image pass would produce.  Grad-CAM only needs gradients *at*
    the last feature map, so the conv trunk runs under ``no_grad`` and
    the tape restarts there: the backward pass covers just the pooling +
    head (with classifier weights frozen), never the conv stack.
    """

    name = "gradcam"
    needs_gradients = True

    def __init__(self, classifier: SmallResNet):
        self.classifier = classifier

    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      target_labels: Optional[np.ndarray] = None
                      ) -> List[SaliencyResult]:
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        targets = resolve_targets(labels, target_labels)
        self.classifier.eval()

        with nn.no_grad():
            trunk = self.classifier.features(nn.Tensor(images))
        feats = nn.Tensor(trunk.data, requires_grad=True)
        with nn.frozen(self.classifier):
            logits = self.classifier.head_from_features(feats)
            nn.class_score_sum(logits, labels).backward()

        channel_weights = feats.grad.mean(axis=(2, 3))      # (N, C)
        cams = np.maximum(
            (channel_weights[:, :, None, None] * feats.data).sum(axis=1),
            0.0)                                            # (N, h, w)
        h = images.shape[2]
        cams = resize_bilinear(cams[:, None], h)[:, 0]
        return [SaliencyResult(cams[i], int(labels[i]),
                               target_or_none(targets, i))
                for i in range(len(images))]
