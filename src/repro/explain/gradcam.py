"""Grad-CAM (Selvaraju et al. 2017) on the classifier's last conv stage."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from ..nn import plan
from ..classifiers import SmallResNet
from ..data.transforms import resize_bilinear
from .base import Explainer, SaliencyResult, resolve_targets, target_or_none


class GradCAMExplainer(Explainer):
    """Channel-weighted activation map from last-stage gradients.

    Batched-first: one forward and one backward over the whole batch.
    Summing each sample's selected class logit keeps the per-sample
    gradients independent, so ``feats.grad[i]`` is exactly the gradient
    a one-image pass would produce.  Grad-CAM only needs gradients *at*
    the last feature map, so the conv trunk runs under ``no_grad`` and
    the tape restarts there: the backward pass covers just the pooling +
    head (with classifier weights frozen), never the conv stack.
    """

    name = "gradcam"
    needs_gradients = True
    plan_eligible = True

    def __init__(self, classifier: SmallResNet):
        self.classifier = classifier

    def _cams_from(self, feats_data: np.ndarray, feats_grad: np.ndarray,
                   out_h: int) -> np.ndarray:
        """Channel-weight + ReLU + upsample; shared by tape and plan."""
        channel_weights = feats_grad.mean(axis=(2, 3))      # (N, C)
        cams = np.maximum(
            (channel_weights[:, :, None, None] * feats_data).sum(axis=1),
            0.0)                                            # (N, h, w)
        return resize_bilinear(cams[:, None], out_h)[:, 0]

    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      target_labels: Optional[np.ndarray] = None
                      ) -> List[SaliencyResult]:
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        targets = resolve_targets(labels, target_labels)
        self.classifier.eval()

        with nn.no_grad():
            trunk = self.classifier.features(nn.Tensor(images))
        feats = nn.Tensor(trunk.data, requires_grad=True)
        with nn.frozen(self.classifier):
            logits = self.classifier.head_from_features(feats)
            nn.class_score_sum(logits, labels).backward()

        cams = self._cams_from(feats.data, feats.grad, images.shape[2])
        return [SaliencyResult(cams[i], int(labels[i]),
                               target_or_none(targets, i))
                for i in range(len(images))]

    def compile_plan(self, images: np.ndarray, labels: np.ndarray):
        """Trace trunk + head + class_score_sum with the gradient taken
        at the last feature map.  Plan demand analysis restricts the
        backward sweep to the head (weight gradients are never
        scheduled), so ``nn.frozen`` is unnecessary inside the core.
        """
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        self.classifier.eval()

        def core(tr: plan.Tracer) -> None:
            x = tr.input("x", images)
            lab = tr.aux_input("labels", labels)
            feats = self.classifier.features(x)
            logits = self.classifier.head_from_features(feats)
            tr.output("feats", feats)
            tr.grad("feats_grad", feats)
            tr.loss(nn.class_score_sum(logits, lab))

        return plan.trace(core)

    def explain_batch_planned(self, compiled, images: np.ndarray,
                              labels: np.ndarray,
                              target_labels: Optional[np.ndarray] = None
                              ) -> List[SaliencyResult]:
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        targets = resolve_targets(labels, target_labels)
        out = compiled.replay({"x": images, "labels": labels})
        cams = self._cams_from(out["feats"], out["feats_grad"],
                               images.shape[2])
        return [SaliencyResult(cams[i], int(labels[i]),
                               target_or_none(targets, i))
                for i in range(len(images))]
