"""Sliding-window occlusion saliency (Zeiler & Fergus 2014).

A classic perturbation baseline: mask a square window at each location
and record the drop in the explained class probability.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..classifiers import SmallResNet
from .base import Explainer, SaliencyResult


class OcclusionExplainer(Explainer):
    """Probability-drop map from sliding square occluders."""

    name = "occlusion"

    def __init__(self, classifier: SmallResNet, window: int = 5,
                 stride: int = 2, fill: Optional[float] = None):
        self.classifier = classifier
        self.window = window
        self.stride = stride
        self.fill = fill

    def explain(self, image: np.ndarray, label: int,
                target_label: Optional[int] = None) -> SaliencyResult:
        image = np.asarray(image, dtype=np.float64)
        c, h, w = image.shape
        fill = self.fill if self.fill is not None else image.mean()

        base = self.classifier.predict_proba(image[None])[0, label]
        positions = [(top, left)
                     for top in range(0, h - self.window + 1, self.stride)
                     for left in range(0, w - self.window + 1, self.stride)]
        batch = np.repeat(image[None], len(positions), axis=0)
        for i, (top, left) in enumerate(positions):
            batch[i, :, top:top + self.window, left:left + self.window] = fill
        probs = self.classifier.predict_proba(batch)[:, label]

        saliency = np.zeros((h, w))
        counts = np.zeros((h, w))
        for (top, left), p in zip(positions, probs):
            drop = max(base - p, 0.0)
            saliency[top:top + self.window, left:left + self.window] += drop
            counts[top:top + self.window, left:left + self.window] += 1
        counts[counts == 0] = 1
        return SaliencyResult(saliency / counts, label, target_label,
                              meta={"base_prob": base})
