"""Sliding-window occlusion saliency (Zeiler & Fergus 2014).

A classic perturbation baseline: mask a square window at each location
and record the drop in the explained class probability.  All masked
variants — across every image of a batch — are scored through the
classifier in shared conv batches, so explaining N images costs one
batched sweep instead of N independent ones.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .. import nn
from ..classifiers import SmallResNet
from .base import Explainer, SaliencyResult, resolve_targets, target_or_none


class OcclusionExplainer(Explainer):
    """Probability-drop map from sliding square occluders."""

    name = "occlusion"

    def __init__(self, classifier: SmallResNet, window: int = 5,
                 stride: int = 2, fill: Optional[float] = None,
                 max_batch: int = 4096):
        self.classifier = classifier
        self.window = window
        self.stride = stride
        self.fill = fill
        self.max_batch = max_batch

    def _positions(self, h: int, w: int) -> List[Tuple[int, int]]:
        return [(top, left)
                for top in range(0, h - self.window + 1, self.stride)
                for left in range(0, w - self.window + 1, self.stride)]

    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      target_labels: Optional[np.ndarray] = None) -> list:
        """Score all masked variants of all images in shared conv batches."""
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        targets = resolve_targets(labels, target_labels)
        n, c, h, w = images.shape
        positions = self._positions(h, w)
        n_pos = len(positions)
        fills = np.full(n, self.fill, dtype=images.dtype) \
            if self.fill is not None else images.mean(axis=(1, 2, 3))

        base = self.classifier.predict_proba(images)[np.arange(n), labels]

        # Group as many images' masked variants as fit one sweep.
        chunk = max(1, self.max_batch // n_pos)
        drops = np.empty((n, n_pos))
        for start in range(0, n, chunk):
            imgs = images[start:start + chunk]
            m = len(imgs)
            batch = np.repeat(imgs, n_pos, axis=0).reshape(m, n_pos, c, h, w)
            for j, (top, left) in enumerate(positions):
                batch[:, j, :, top:top + self.window,
                      left:left + self.window] = \
                    fills[start:start + m, None, None, None]
            probs = self.classifier.predict_proba(
                batch.reshape(m * n_pos, c, h, w)).reshape(m, n_pos, -1)
            picked = probs[np.arange(m)[:, None],
                           np.arange(n_pos)[None, :],
                           labels[start:start + m, None]]
            drops[start:start + m] = np.maximum(
                base[start:start + m, None] - picked, 0.0)

        results = []
        for i in range(n):
            saliency = np.zeros((h, w))
            counts = np.zeros((h, w))
            for (top, left), drop in zip(positions, drops[i]):
                saliency[top:top + self.window, left:left + self.window] += drop
                counts[top:top + self.window, left:left + self.window] += 1
            counts[counts == 0] = 1
            results.append(SaliencyResult(saliency / counts, int(labels[i]),
                                          target_or_none(targets, i),
                                          meta={"base_prob": float(base[i])}))
        return results
