"""ICAM-reg baseline (Bass et al. 2022): the paper's closest peer.

ICAM-reg also learns a dual (attribute, content) latent decomposition
with a generative model, but — per the paper's analysis in Sections IV.E
and IV.F — differs from CAE in the ways that matter:

* it optimises latent-space classification *directly* (a classifier head
  on the attribute code) instead of the BBCFE swap-coherency training;
* it has an analogue of eq (2) (attribute-code reconstruction) but lacks
  eq (3) (individual-code reconstruction) and the full two-round cycle,
  which the paper blames for the drift and topology distortion of its
  latent space.

We implement it with the same network architecture as CAE so that every
observed difference comes from the training objective, not capacity.
Its explainer produces ICAM's feature-attribution (FA) map: the
difference between the input and its translation to the counter class.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from .. import nn
from ..config import ReproConfig
from ..core.bbcfe import PairSampler
from ..core.manifold import ClassAssociatedManifold
from ..core.model import CAEModel
from ..data import ImageDataset
from .base import Explainer, SaliencyResult, resolve_targets


class ICAMRegModel(CAEModel):
    """Dual-code generative model trained with the ICAM-reg objective."""

    def __init__(self, num_classes: int, config: Optional[ReproConfig] = None):
        super().__init__(num_classes, config)
        rng = np.random.default_rng(self.config.seed + 7)
        # Direct latent classifier head on the attribute (CS) code — the
        # "strived to optimize the latent-space classification accuracy"
        # component the paper describes.
        self.latent_head = nn.Linear(self.config.cs_dim, num_classes, rng=rng)

    def encode_attribute(self, images: np.ndarray) -> np.ndarray:
        """ICAM terminology: the attribute latent code (= CS code slot)."""
        return self.encode_class(images)


def train_icam(dataset: ImageDataset, iterations: int = 200,
               batch_size: int = 8, config: Optional[ReproConfig] = None,
               verbose: bool = False) -> ICAMRegModel:
    """Train ICAM-reg: swap translation without eq (3)/cycle, plus a
    direct latent classification loss."""
    model = ICAMRegModel(num_classes=dataset.num_classes, config=config)
    cfg = model.config
    w = cfg.loss_weights
    gen_params = (model.encoder.parameters() + model.decoder.parameters()
                  + model.latent_head.parameters())
    gen_opt = nn.Adam(gen_params, lr=cfg.lr, weight_decay=cfg.weight_decay)
    disc_opt = nn.Adam(model.discriminator.parameters(), lr=cfg.lr,
                       weight_decay=cfg.weight_decay)
    sampler = PairSampler(dataset, rng=np.random.default_rng(cfg.seed))

    model.train()
    start = time.perf_counter()
    for step in range(iterations):
        x_a, y_a, x_b, y_b = sampler.sample(batch_size)
        ta, tb = nn.Tensor(x_a), nn.Tensor(x_b)
        cs_a, is_a = model.encoder(ta)
        cs_b, is_b = model.encoder(tb)

        recon_a = model.decoder(cs_a, is_a)
        recon_b = model.decoder(cs_b, is_b)
        loss_recon = nn.l1_loss(recon_a, ta) + nn.l1_loss(recon_b, tb)

        fake_a = model.decoder(cs_b, is_a)
        fake_b = model.decoder(cs_a, is_b)
        cs_fake_a, __ = model.encoder(fake_a)
        cs_fake_b, __ = model.encoder(fake_b)
        # Attribute-code reconstruction (analogue of eq 2 only).
        loss_cs = nn.l1_loss(cs_fake_a, cs_b) + nn.l1_loss(cs_fake_b, cs_a)

        dr_fa, dc_fa = model.discriminator(fake_a)
        dr_fb, dc_fb = model.discriminator(fake_b)
        loss_adv = nn.binary_real_fake_loss(dr_fa, True) \
            + nn.binary_real_fake_loss(dr_fb, True)
        loss_cls = nn.cross_entropy(dc_fa, y_b) + nn.cross_entropy(dc_fb, y_a)

        # Direct latent-space classification (ICAM's regression/cls head).
        latent_logits_a = model.latent_head(cs_a)
        latent_logits_b = model.latent_head(cs_b)
        loss_latent = nn.cross_entropy(latent_logits_a, y_a) \
            + nn.cross_entropy(latent_logits_b, y_b)

        total = (w.lambda1 * loss_recon + w.lambda2 * loss_cs
                 + w.lambda5 * loss_adv + w.lambda6 * loss_cls
                 + 1.0 * loss_latent)
        model.encoder.zero_grad()
        model.decoder.zero_grad()
        model.discriminator.zero_grad()
        model.latent_head.zero_grad()
        total.backward()
        gen_opt.step()

        # Discriminator update (same adversarial/classification form).
        dr_fa2, __ = model.discriminator(nn.Tensor(fake_a.data))
        dr_fb2, __ = model.discriminator(nn.Tensor(fake_b.data))
        dr_ra, dc_ra = model.discriminator(ta)
        dr_rb, dc_rb = model.discriminator(tb)
        d_adv = (nn.binary_real_fake_loss(dr_fa2, False)
                 + nn.binary_real_fake_loss(dr_fb2, False)
                 + nn.binary_real_fake_loss(dr_ra, True)
                 + nn.binary_real_fake_loss(dr_rb, True))
        d_cls = nn.cross_entropy(dc_ra, y_a) + nn.cross_entropy(dc_rb, y_b)
        d_total = w.phi1 * d_adv + w.phi2 * d_cls
        model.discriminator.zero_grad()
        d_total.backward()
        disc_opt.step()

        if verbose and (step + 1) % 20 == 0:
            print(f"icam step {step + 1}/{iterations} "
                  f"gen={total.item():.3f} disc={d_total.item():.3f}")
    model.eval()
    return model


class ICAMExplainer(Explainer):
    """ICAM FA map: |translate-to-counter-class - input|."""

    name = "icam"

    def __init__(self, model: ICAMRegModel,
                 manifold: ClassAssociatedManifold, num_classes: int):
        self.model = model
        self.manifold = manifold
        self.num_classes = num_classes

    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      target_labels: Optional[np.ndarray] = None) -> list:
        """One encoder pass + one decoder pass for the whole batch."""
        images = np.asarray(images, dtype=nn.get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        targets = resolve_targets(labels, target_labels, self.num_classes)
        __, is_codes = self.model.encode(images)
        counter_cs = np.stack([self.manifold.centroid(int(t))
                               for t in targets])
        translated = self.model.decode(counter_cs, is_codes)
        saliency = np.abs(translated - images).sum(axis=1)
        return [SaliencyResult(saliency[i], int(labels[i]), int(targets[i]))
                for i in range(len(images))]
