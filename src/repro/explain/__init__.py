"""``repro.explain`` — the CAE explainer and the nine Table II baselines."""

from .base import Explainer, SaliencyResult, default_counter_label
from .cae_explainer import CAEExplainer
from .fullgrad import (FullGradExplainer, SimpleFullGradExplainer,
                       SmoothFullGradExplainer)
from .gradcam import GradCAMExplainer
from .icam import ICAMExplainer, ICAMRegModel, train_icam
from .lagan import LAGANExplainer, MaskGenerator, train_lagan
from .lime import LimeExplainer
from .occlusion import OcclusionExplainer
from .registry import TABLE2_METHODS, ExplainerSuite, build_all_explainers
from .stylex import LatentAutoencoder, StylexExplainer, train_stylex
from .tscam import PatchAttentionClassifier, TSCAMExplainer, train_tscam

__all__ = [
    "Explainer", "SaliencyResult", "default_counter_label",
    "CAEExplainer", "LimeExplainer", "GradCAMExplainer",
    "FullGradExplainer", "SimpleFullGradExplainer", "SmoothFullGradExplainer",
    "OcclusionExplainer", "TSCAMExplainer", "train_tscam",
    "PatchAttentionClassifier", "StylexExplainer", "train_stylex",
    "LatentAutoencoder", "LAGANExplainer", "train_lagan", "MaskGenerator",
    "ICAMExplainer", "ICAMRegModel", "train_icam",
    "TABLE2_METHODS", "ExplainerSuite", "build_all_explainers",
]
