"""repro — reproduction of "Accurate Explanation Model for Image
Classifiers using Class Association Embedding" (ICDE 2024).

Subpackages
-----------
* :mod:`repro.nn` — numpy autodiff deep-learning substrate.
* :mod:`repro.data` — synthetic analogs of the paper's five datasets.
* :mod:`repro.ml` — random forest / t-SNE / SMOTE / PCA substrate.
* :mod:`repro.classifiers` — the black-box classifier under explanation.
* :mod:`repro.core` — Class Association Embedding + BBCFE (the paper's
  contribution) and the class-associated manifold.
* :mod:`repro.explain` — the CAE explainer and nine baseline XAI methods.
* :mod:`repro.eval` — AOPC/PD, separability, re-assignment, smoothness,
  timing, and trap-demonstration harnesses.
* :mod:`repro.serve` — the micro-batching, caching saliency serving
  layer (:class:`~repro.serve.ExplainEngine`).

Quickstart
----------
>>> from repro.data import make_dataset
>>> from repro.classifiers import train_classifier
>>> from repro.core import train_cae
>>> from repro.explain import CAEExplainer
>>> train = make_dataset("oct", "train")
>>> classifier = train_classifier(train, epochs=5)
>>> cae = train_cae(train, iterations=200)
>>> explainer = CAEExplainer(cae, cae.build_manifold(train), classifier)
>>> result = explainer.explain(train.images[0], int(train.labels[0]))
"""

from .config import DATASET_NAMES, TABLE1_COUNTS, LossWeights, ReproConfig

__version__ = "1.0.0"

__all__ = ["ReproConfig", "LossWeights", "TABLE1_COUNTS", "DATASET_NAMES",
           "__version__"]
