"""Saliency localisation against ground-truth lesion masks.

The synthetic datasets expose the exact pixels carrying class-associated
evidence — something the paper's real datasets cannot — so we add IoU
and pointing-game scores as a reproduction-only sanity layer on top of
the paper's AOPC/PD protocol.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..explain.base import Explainer
from ..ml import iou_score


def pointing_game(saliency: np.ndarray, mask: np.ndarray,
                  tolerance: int = 1) -> float:
    """1.0 if the most salient pixel falls in (or within ``tolerance`` px
    of) the ground-truth mask, else 0.0."""
    idx = int(np.argmax(saliency))
    cy, cx = divmod(idx, saliency.shape[1])
    h, w = mask.shape
    top, bottom = max(cy - tolerance, 0), min(cy + tolerance + 1, h)
    left, right = max(cx - tolerance, 0), min(cx + tolerance + 1, w)
    return 1.0 if mask[top:bottom, left:right].max() > 0.5 else 0.0


def saliency_iou(saliency: np.ndarray, mask: np.ndarray,
                 coverage: float = 0.1) -> float:
    """IoU between the top-``coverage`` fraction of salient pixels and
    the ground-truth mask."""
    k = max(1, int(coverage * saliency.size))
    threshold = np.sort(saliency, axis=None)[-k]
    pred = (saliency >= threshold).astype(float)
    return iou_score(pred, mask)


def localization_scores(explainer: Explainer, images: np.ndarray,
                        labels: np.ndarray, masks: np.ndarray,
                        coverage: float = 0.1,
                        method: str = None) -> Dict[str, float]:
    """Mean pointing-game and IoU over lesioned (abnormal) images.

    All lesioned images are explained through one ``explain_batch``
    sweep (shared conv/GEMM calls) instead of a per-image loop.  Pass
    ``method`` to score through a serving
    :class:`~repro.serve.ExplainEngine` instead of a bare explainer —
    repeat sweeps then hit the engine's saliency cache.
    """
    masks = np.asarray(masks)
    keep = [i for i in range(len(masks)) if masks[i].max() > 0]
    if not keep:
        return {"pointing": 0.0, "iou": 0.0, "n": 0}
    batch_images = np.asarray(images)[keep]
    batch_labels = np.asarray(labels, dtype=np.int64)[keep]
    if method is not None:
        results = explainer.explain_batch(batch_images, batch_labels, method)
    else:
        results = explainer.explain_batch(batch_images, batch_labels)
    pointing = [pointing_game(r.saliency, masks[i])
                for r, i in zip(results, keep)]
    ious = [saliency_iou(r.saliency, masks[i], coverage)
            for r, i in zip(results, keep)]
    return {"pointing": float(np.mean(pointing)),
            "iou": float(np.mean(ious)), "n": len(pointing)}
