"""``repro.eval`` — the paper's evaluation harness.

AOPC/PD perturbation curves (Table II), latent separability (Table III),
class re-assignment (Table IV), saliency timing (Table V), manifold
smoothness / SMOTE validity (Section IV.F.3, Fig 11), trap
demonstrations (Figs 1 and 7), plus mask-based localisation enabled by
the synthetic ground truth.
"""

from .localization import localization_scores, pointing_game, saliency_iou
from .perturbation import DegradationCurve, evaluate_methods, perturbation_curve
from .pipeline import (DEFAULT_CACHE_DIR, ExperimentContext, ExperimentScale,
                       QUICK_SCALE)
from .reassignment import class_reassignment_rate
from .separability import latent_separability
from .smoothness import PathProbe, probe_path, smote_validity
from .timing import (MethodTiming, batched_saliency_time_ms, method_timing,
                     saliency_time_ms, served_saliency_time_ms,
                     time_all_methods, time_all_methods_batched)
from .traps import (PathTrace, decision_surface, false_positive_case,
                    gradient_descent_path, greedy_walk_path, guided_path,
                    trap_demo_2d)

__all__ = [
    "DegradationCurve", "perturbation_curve", "evaluate_methods",
    "class_reassignment_rate", "latent_separability",
    "smote_validity", "probe_path", "PathProbe",
    "saliency_time_ms", "time_all_methods", "batched_saliency_time_ms",
    "served_saliency_time_ms", "method_timing", "time_all_methods_batched",
    "MethodTiming",
    "localization_scores", "pointing_game", "saliency_iou",
    "trap_demo_2d", "decision_surface", "PathTrace",
    "gradient_descent_path", "greedy_walk_path", "guided_path",
    "false_positive_case",
    "ExperimentContext", "ExperimentScale", "QUICK_SCALE",
    "DEFAULT_CACHE_DIR",
]
