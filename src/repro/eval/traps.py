"""Local-trap demonstrations (paper Fig. 1 and Fig. 7).

Fig. 1 is a conceptual 2-D illustration: on a multi-peaked decision
surface, gradient descent and greedy multi-perturbation walks stall in
local optima while a globally-guided straight path crosses the
class-flipping border.  :func:`trap_demo_2d` reproduces it numerically.

Fig. 7 is an empirical case: masking a false-positive region found by a
local method lowers the classification probability *without* flipping
the class, while masking the true lesion flips it with a shorter
modification path.  :func:`false_positive_case` measures those three
probability drops on a real (synthetic-OCT) classifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .. import nn
from ..classifiers import SmallResNet


# ----------------------------------------------------------------------
# Fig. 1: 2-D decision surface with deceptive local structure
# ----------------------------------------------------------------------
def decision_surface(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Class-A probability on a 2-D plane with a deceptive local basin.

    The surface has its true class-flipping region toward +x, plus a
    local dip near the origin that attracts greedy descent without ever
    crossing the 0.5 border.
    """
    true_flip = 1.0 / (1.0 + np.exp(-(3.0 - 1.8 * x)))        # drops as x grows
    local_trap = -0.25 * np.exp(-((x + 0.5) ** 2 + (y - 1.2) ** 2) / 0.3)
    ripple = 0.05 * np.sin(3 * x) * np.cos(2 * y)
    return np.clip(true_flip + local_trap + ripple, 0.0, 1.0)


@dataclass
class PathTrace:
    points: np.ndarray          # (T, 2)
    probs: np.ndarray           # (T,)

    @property
    def flipped(self) -> bool:
        return bool((self.probs < 0.5).any())

    @property
    def length(self) -> float:
        return float(np.sqrt(
            ((np.diff(self.points, axis=0)) ** 2).sum(axis=1)).sum())


def _surface_prob(point: np.ndarray) -> float:
    return float(decision_surface(np.array(point[0]), np.array(point[1])))


def gradient_descent_path(start, steps: int = 60,
                          lr: float = 0.12) -> PathTrace:
    """Steepest-descent on the class probability (the Fig. 1 ① method)."""
    point = np.asarray(start, dtype=np.float64)
    points, probs = [point.copy()], [_surface_prob(point)]
    eps = 1e-4
    for _ in range(steps):
        gx = (_surface_prob(point + [eps, 0]) - _surface_prob(point - [eps, 0])) / (2 * eps)
        gy = (_surface_prob(point + [0, eps]) - _surface_prob(point - [0, eps])) / (2 * eps)
        point = point - lr * np.array([gx, gy])
        points.append(point.copy())
        probs.append(_surface_prob(point))
    return PathTrace(np.asarray(points), np.asarray(probs))


def greedy_walk_path(start, steps: int = 60, step_size: float = 0.15,
                     rng: Optional[np.random.Generator] = None) -> PathTrace:
    """Greedy random walk accepting only probability-decreasing moves
    (the Fig. 1 ② multi-perturbation family)."""
    rng = rng or np.random.default_rng(0)
    point = np.asarray(start, dtype=np.float64)
    points, probs = [point.copy()], [_surface_prob(point)]
    for _ in range(steps):
        candidates = point + step_size * rng.standard_normal((8, 2))
        cand_probs = [_surface_prob(c) for c in candidates]
        best = int(np.argmin(cand_probs))
        if cand_probs[best] < probs[-1]:
            point = candidates[best]
            points.append(point.copy())
            probs.append(cand_probs[best])
    return PathTrace(np.asarray(points), np.asarray(probs))


def guided_path(start, steps: int = 60) -> PathTrace:
    """Straight path toward the counter-class region (Fig. 1 ④⑤ —
    what the class-associated manifold provides)."""
    start = np.asarray(start, dtype=np.float64)
    destination = np.array([3.5, start[1] * 0.3])   # inside the flip region
    t = np.linspace(0, 1, steps)[:, None]
    points = start[None] * (1 - t) + destination[None] * t
    probs = np.array([_surface_prob(p) for p in points])
    return PathTrace(points, probs)


def trap_demo_2d(start=(-1.2, 1.0), seed: int = 0) -> Dict[str, PathTrace]:
    """Run all three strategies from the same start point."""
    return {
        "gradient": gradient_descent_path(start),
        "greedy_walk": greedy_walk_path(start,
                                        rng=np.random.default_rng(seed)),
        "guided": guided_path(start),
    }


# ----------------------------------------------------------------------
# Fig. 7: false-positive masking case on a trained classifier
# ----------------------------------------------------------------------
def mask_region_drop(classifier: SmallResNet, image: np.ndarray, label: int,
                     region: np.ndarray,
                     rng: Optional[np.random.Generator] = None
                     ) -> Tuple[float, bool]:
    """Probability drop and flip status after random-filling ``region``."""
    rng = rng or np.random.default_rng(0)
    image = np.asarray(image, dtype=nn.get_default_dtype())
    masked = image.copy()
    sel = region > 0.5
    masked[:, sel] = rng.random((image.shape[0], int(sel.sum())))
    base = classifier.predict_proba(image[None])[0]
    after = classifier.predict_proba(masked[None])[0]
    drop = float(base[label] - after[label])
    flipped = bool(after.argmax() != label)
    return drop, flipped


def false_positive_case(classifier: SmallResNet, image: np.ndarray,
                        label: int, true_mask: np.ndarray,
                        candidate_saliency: np.ndarray,
                        seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Reproduce Fig. 7's three maskings.

    ``candidate_saliency`` is a (possibly trap-prone) saliency map; its
    strongest region *outside* the ground-truth mask is the false
    positive.  Returns drops/flips for masking FP only, TP only, and
    both.
    """
    rng = np.random.default_rng(seed)
    outside = candidate_saliency * (true_mask < 0.5)
    k = max(1, int(0.05 * outside.size))
    threshold = np.sort(outside, axis=None)[-k]
    fp_region = (outside >= threshold) & (outside > 0)

    tp_region = true_mask > 0.5
    both = fp_region | tp_region

    results = {}
    for name, region in (("false_positive", fp_region),
                         ("true_positive", tp_region), ("both", both)):
        drop, flipped = mask_region_drop(
            classifier, image, label, region.astype(float),
            rng=np.random.default_rng(seed))
        results[name] = {"drop": drop, "flipped": float(flipped),
                         "area": float(region.sum())}
    return results
