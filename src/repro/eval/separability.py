"""Latent-space class separability (paper Table III, Section IV.E).

Ten-fold cross-validated random-forest accuracy of classifying test
samples from their latent codes alone — "the most objective and
undoubtful measurement" of whether a latent space preserves the
classification patterns.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..ml import RandomForestClassifier, cross_val_accuracy


def latent_separability(codes: np.ndarray, labels: np.ndarray,
                        n_splits: int = 10, n_estimators: int = 50,
                        seed: int = 0) -> Tuple[float, float]:
    """Mean +/- std of k-fold RF accuracy on latent codes.

    The same forest hyperparameters are used for every method compared,
    matching the paper's protocol.
    """
    rng = np.random.default_rng(seed)

    def make_model():
        return RandomForestClassifier(
            n_estimators=n_estimators, max_depth=8,
            rng=np.random.default_rng(rng.integers(0, 2 ** 31)))

    mean, std, _ = cross_val_accuracy(make_model, codes, labels,
                                      n_splits=n_splits,
                                      rng=np.random.default_rng(seed))
    return mean, std
