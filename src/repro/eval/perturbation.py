"""Saliency-accuracy metric: patch-coverage degradation curves.

Implements the evaluation of the paper's Section IV.C (following Hooker
et al. 2019 and Samek et al. 2017): pixels are ranked by saliency; the
most important ones are covered with random-valued square patches; the
drop in the classifier's ground-truth class probability is recorded as
coverage grows.

* **AOPC** (eq 11): mean degradation over all coverage levels.
* **PD** (eq 12): maximum (peak) degradation over coverage levels.

The paper covers 7x7 patches on 256x256 inputs; we default to 3x3
patches on 32x32, preserving the covered-area fraction per patch.

Batched-first: the sweep explains the whole sample set through one
``explain_batch`` call and scores all patched variants of all images in
shared classifier conv batches — no per-image model calls remain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from .. import nn
from ..classifiers import SmallResNet
from ..explain.base import Explainer


@dataclass
class DegradationCurve:
    """Per-coverage-level mean probability drops for one explainer."""

    drops: np.ndarray        # (N,) overall degradation at p = 1..N patches

    @property
    def aopc(self) -> float:
        """Eq (11): area over the perturbation curve."""
        return float(self.drops.mean())

    @property
    def pd(self) -> float:
        """Eq (12): peak degradation."""
        return float(self.drops.max())


def _select_patch_centers(saliency: np.ndarray, n_patches: int,
                          patch: int) -> list:
    """Greedy non-overlapping selection of the most salient patch centres."""
    h, w = saliency.shape
    half = patch // 2
    working = saliency.copy()
    centers = []
    for _ in range(n_patches):
        idx = int(np.argmax(working))
        cy, cx = divmod(idx, w)
        centers.append((cy, cx))
        top = max(cy - half, 0)
        left = max(cx - half, 0)
        working[top:cy + half + 1, left:cx + half + 1] = -np.inf
    return centers


def perturbation_curve(explainer: Explainer, classifier: SmallResNet,
                       images: np.ndarray, labels: np.ndarray,
                       n_patches: int = 20, patch: int = 3,
                       rng: Optional[np.random.Generator] = None,
                       target_labels: Optional[np.ndarray] = None,
                       fill: str = "mean",
                       max_batch: int = 4096,
                       method: str = None) -> DegradationCurve:
    """Compute the degradation curve of ``explainer`` on a sample set.

    For each image: explain, rank pixels, cover the top-p patches (p =
    1..n_patches), and measure the classifier's ground-truth probability
    drop.  ``fill`` selects the cover content: the paper fills with
    random values; on our synthetic data random speckle itself resembles
    lesion evidence, so the default is ``"mean"`` (image-mean fill),
    which removes evidence as the metric intends.  Pass ``"random"``
    for the paper-verbatim protocol.

    Pass ``method`` to treat ``explainer`` as a serving
    :class:`~repro.serve.ExplainEngine`: the explain step then runs
    through the engine's cache/dedup/micro-batch runtime, so repeat
    sweeps over the same sample set (or other eval layers sharing the
    engine) reuse cached maps instead of recomputing them.
    """
    rng = rng or np.random.default_rng(0)
    images = np.asarray(images, dtype=nn.get_default_dtype())
    labels = np.asarray(labels, dtype=np.int64)
    half = patch // 2
    n_images = len(images)
    c, h, w = images.shape[1:]

    # Batched explains + shared variant-scoring sweeps, both chunked so
    # peak memory (explainer tape and variant buffer alike) stays
    # bounded at ~max_batch images regardless of sample-set size.
    base_probs = classifier.predict_proba(images)[np.arange(n_images), labels]

    chunk = max(1, max_batch // n_patches)
    drops = np.empty((n_images, n_patches))
    for start in range(0, n_images, chunk):
        m = min(chunk, n_images - start)
        chunk_targets = None if target_labels is None \
            else target_labels[start:start + m]
        if method is not None:           # serving-engine path
            results = explainer.explain_batch(
                images[start:start + m], labels[start:start + m],
                method, chunk_targets)
        else:
            results = explainer.explain_batch(
                images[start:start + m], labels[start:start + m],
                chunk_targets)
        variants = np.empty((m, n_patches, c, h, w), dtype=images.dtype)
        for j in range(m):
            i = start + j
            centers = _select_patch_centers(results[j].saliency, n_patches,
                                            patch)
            covered = images[i].copy()
            fill_value = images[i].mean()
            for p, (cy, cx) in enumerate(centers):
                top, bottom = max(cy - half, 0), min(cy + half + 1, h)
                left, right = max(cx - half, 0), min(cx + half + 1, w)
                if fill == "random":
                    covered[:, top:bottom, left:right] = rng.random(
                        (c, bottom - top, right - left))
                else:
                    covered[:, top:bottom, left:right] = fill_value
                variants[j, p] = covered
        probs = classifier.predict_proba(
            variants.reshape(m * n_patches, c, h, w))
        picked = probs.reshape(m, n_patches, -1)[
            np.arange(m)[:, None], np.arange(n_patches)[None, :],
            labels[start:start + m, None]]
        drops[start:start + m] = base_probs[start:start + m, None] - picked
    return DegradationCurve(drops.mean(axis=0))


def evaluate_methods(explainers: Optional[Dict[str, Explainer]],
                     classifier: SmallResNet, images: np.ndarray,
                     labels: np.ndarray, n_patches: int = 20, patch: int = 3,
                     seed: int = 0, fill: str = "mean",
                     engine=None) -> Dict[str, DegradationCurve]:
    """Degradation curves for every explainer on the same image set.

    With ``engine`` set (a :class:`~repro.serve.ExplainEngine`), every
    method's explain step is served through the engine runtime — pass
    ``explainers=None`` to sweep every method the engine serves, or a
    dict/iterable to restrict the sweep.  Reproduction runs then share
    the serving code path (and its cache/dedup/admission counters) with
    traffic: on a ``max_pending`` engine the sweep's ingestion is
    bounded, and on an adaptive (``min_batch``) engine each method's
    batches settle at its own latency-matched size.
    """
    if engine is not None:
        names = list(explainers) if explainers is not None \
            else list(engine.methods)
        return {
            name: perturbation_curve(
                engine, classifier, images, labels, n_patches, patch,
                rng=np.random.default_rng(seed), fill=fill, method=name)
            for name in names
        }
    return {
        name: perturbation_curve(
            explainer, classifier, images, labels, n_patches, patch,
            rng=np.random.default_rng(seed), fill=fill)
        for name, explainer in explainers.items()
    }
