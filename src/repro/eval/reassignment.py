"""Class re-assignment success rate (paper Table IV, Section IV.F.1).

Semantic pervasiveness test: swap class-associated codes between
test-set samples of different classes and measure how often the
black-box classifier assigns the swapped-in class to the synthetic
image.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..classifiers import SmallResNet
from ..core.model import CAEModel
from ..data import ImageDataset


def class_reassignment_rate(model: CAEModel, classifier: SmallResNet,
                            dataset: ImageDataset, n_pairs: int = 100,
                            rng: Optional[np.random.Generator] = None,
                            batch_size: int = 32) -> float:
    """Fraction of CS-code swaps that transfer the class assignment.

    Each trial draws two test images of different classes, decodes
    ``G(c_B, s_A)``, and counts success when the classifier predicts
    ``y_B``.  Works for :class:`CAEModel` and its ICAM subclass alike.

    Pair drawing is fully vectorized (no per-pair python loop): the
    class pairs are sampled in one shot, then one ``rng.choice`` per
    *class* picks the member indices.  Swap decoding and classifier
    scoring run in ``batch_size`` chunks to bound decoder activations.
    """
    rng = rng or np.random.default_rng(0)
    by_class = {int(c): dataset.indices_of_class(int(c))
                for c in np.unique(dataset.labels)}
    classes = np.array(sorted(by_class))
    if len(classes) < 2:
        raise ValueError("re-assignment needs at least two classes")

    # Unordered-distinct class pairs, vectorized: draw the first class
    # uniformly, then the second uniformly over the remaining ones.
    first = rng.integers(len(classes), size=n_pairs)
    second = rng.integers(len(classes) - 1, size=n_pairs)
    second += second >= first
    class_a, class_b = classes[first], classes[second]

    idx_a = np.empty(n_pairs, dtype=int)
    idx_b = np.empty(n_pairs, dtype=int)
    for c in classes:                     # one draw per class, not per pair
        sel_a = class_a == c
        if sel_a.any():
            idx_a[sel_a] = rng.choice(by_class[int(c)], size=int(sel_a.sum()))
        sel_b = class_b == c
        if sel_b.any():
            idx_b[sel_b] = rng.choice(by_class[int(c)], size=int(sel_b.sum()))

    successes = 0
    for start in range(0, n_pairs, batch_size):
        a = dataset.images[idx_a[start:start + batch_size]]
        b = dataset.images[idx_b[start:start + batch_size]]
        yb = dataset.labels[idx_b[start:start + batch_size]]
        swapped, _ = model.swap_codes(a, b)  # G(c_B, s_A) -> expect y_B
        pred = classifier.predict(swapped)
        successes += int((pred == yb).sum())
    return successes / n_pairs
