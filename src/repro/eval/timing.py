"""Computation-cost measurements (paper Tables V and VI).

With the batched-first explainer contract, Table V reports two numbers
per method: the classic per-image latency (one ``explain`` call per
image) and the batched throughput cost (one ``explain_batch`` over the
whole set, amortised per image) — the latter is the serving-relevant
headline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..explain.base import Explainer


@dataclass
class MethodTiming:
    """Per-method Table V row: single-image vs batched vs served cost.

    ``served_ms`` is the cost per map through a serving
    :class:`~repro.serve.ExplainEngine` (micro-batching + cache +
    dedup); ``None`` when no engine was timed.
    """

    per_image_ms: float
    batched_ms: float
    served_ms: Optional[float] = None

    @property
    def speedup(self) -> float:
        """How much cheaper one map is when produced in a batch."""
        return self.per_image_ms / self.batched_ms if self.batched_ms > 0 \
            else float("inf")


def saliency_time_ms(explainer: Explainer, images: np.ndarray,
                     labels: np.ndarray, n_images: Optional[int] = None
                     ) -> float:
    """Average wall time (milliseconds) to produce one saliency map via
    per-image ``explain`` calls, matching Table V's protocol (paper: 100
    brain images)."""
    if n_images is not None:
        images = images[:n_images]
        labels = labels[:n_images]
    start = time.perf_counter()
    for image, label in zip(images, labels):
        explainer.explain(image, int(label))
    elapsed = time.perf_counter() - start
    return 1000.0 * elapsed / max(len(images), 1)


def batched_saliency_time_ms(explainer: Explainer, images: np.ndarray,
                             labels: np.ndarray,
                             n_images: Optional[int] = None,
                             batch_size: int = 16) -> float:
    """Average milliseconds per map when maps are produced in batches of
    ``batch_size`` through ``explain_batch`` (the serving path)."""
    if n_images is not None:
        images = images[:n_images]
        labels = labels[:n_images]
    start = time.perf_counter()
    for lo in range(0, len(images), batch_size):
        explainer.explain_batch(images[lo:lo + batch_size],
                                labels[lo:lo + batch_size])
    elapsed = time.perf_counter() - start
    return 1000.0 * elapsed / max(len(images), 1)


def served_saliency_time_ms(engine, method: str, images: np.ndarray,
                            labels: np.ndarray,
                            n_images: Optional[int] = None) -> float:
    """Average milliseconds per map through a serving
    :class:`~repro.serve.ExplainEngine` (one cache-aware
    ``explain_batch`` sweep).  On a warm cache this measures pure
    serving overhead; on a cold cache, the micro-batched compute path.

    ``explain_batch`` ingests through the engine's admission-controlled
    async path, so timing a ``max_pending`` engine measures the same
    bounded-memory pipeline (and, when adaptive batching is on, the
    same per-queue batch limits) that serves live traffic.
    """
    if n_images is not None:
        images = images[:n_images]
        labels = labels[:n_images]
    start = time.perf_counter()
    engine.explain_batch(images, labels, method)
    elapsed = time.perf_counter() - start
    return 1000.0 * elapsed / max(len(images), 1)


def method_timing(explainer: Explainer, images: np.ndarray,
                  labels: np.ndarray, n_images: Optional[int] = None,
                  batch_size: int = 16, engine=None,
                  method: Optional[str] = None) -> MethodTiming:
    """Both Table V numbers for one method (plus the served cost when
    ``engine`` is given; ``method`` defaults to the explainer's name).

    One untimed warmup batch absorbs lazy-initialisation and cache-
    warming costs so they don't inflate whichever pass runs first.
    """
    explainer.explain_batch(images[:1], labels[:1])
    served_ms = None
    if engine is not None:
        served_ms = served_saliency_time_ms(
            engine, method or explainer.name, images, labels, n_images)
    return MethodTiming(
        per_image_ms=saliency_time_ms(explainer, images, labels, n_images),
        batched_ms=batched_saliency_time_ms(explainer, images, labels,
                                            n_images, batch_size),
        served_ms=served_ms)


def time_all_methods(explainers: Dict[str, Explainer], images: np.ndarray,
                     labels: np.ndarray,
                     n_images: Optional[int] = None) -> Dict[str, float]:
    """Classic Table V row: method -> ms per saliency map (per-image)."""
    return {name: saliency_time_ms(explainer, images, labels, n_images)
            for name, explainer in explainers.items()}


def time_all_methods_batched(explainers: Dict[str, Explainer],
                             images: np.ndarray, labels: np.ndarray,
                             n_images: Optional[int] = None,
                             batch_size: int = 16,
                             engine=None) -> Dict[str, MethodTiming]:
    """Extended Table V: method -> (per-image ms, batched ms, speedup).

    With ``engine`` set, each row also records the engine-served cost
    per map (``MethodTiming.served_ms``).
    """
    return {name: method_timing(explainer, images, labels, n_images,
                                batch_size, engine=engine, method=name)
            for name, explainer in explainers.items()}
