"""Computation-cost measurements (paper Tables V and VI)."""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from ..explain.base import Explainer


def saliency_time_ms(explainer: Explainer, images: np.ndarray,
                     labels: np.ndarray, n_images: Optional[int] = None
                     ) -> float:
    """Average wall time (milliseconds) to produce one saliency map,
    matching Table V's protocol (paper: 100 brain images)."""
    if n_images is not None:
        images = images[:n_images]
        labels = labels[:n_images]
    start = time.perf_counter()
    for image, label in zip(images, labels):
        explainer.explain(image, int(label))
    elapsed = time.perf_counter() - start
    return 1000.0 * elapsed / max(len(images), 1)


def time_all_methods(explainers: Dict[str, Explainer], images: np.ndarray,
                     labels: np.ndarray,
                     n_images: Optional[int] = None) -> Dict[str, float]:
    """Table V row: method -> ms per saliency map."""
    return {name: saliency_time_ms(explainer, images, labels, n_images)
            for name, explainer in explainers.items()}
