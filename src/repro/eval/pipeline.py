"""Shared experiment pipeline with on-disk model caching.

Every table/figure benchmark needs the same expensive artefacts: a
trained black-box classifier, a trained CAE, a trained ICAM-reg, and the
auxiliary baseline models.  :class:`ExperimentContext` builds them once
per (dataset, scale) and caches network weights under
``.repro_cache/`` so the full benchmark suite runs in one sitting.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .. import nn
from ..classifiers import SmallResNet, train_classifier
from ..config import ReproConfig
from ..core import CAEModel, train_cae
from ..data import ImageDataset, make_dataset
from ..explain import (ExplainerSuite, ICAMRegModel, build_all_explainers,
                       train_icam)

DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")


@dataclass
class ExperimentScale:
    """Knobs controlling how big one experiment run is."""

    image_size: int = 32
    train_divisor: int = 200     # Table I counts / divisor
    classifier_epochs: int = 8
    classifier_width: int = 12
    cae_iterations: int = 250
    aux_epochs: int = 3
    base_channels: int = 8
    seed: int = 0
    min_train_per_class: int = 60
    min_test_per_class: int = 10

    def tag(self, dataset: str) -> str:
        return (f"{dataset}_s{self.image_size}_d{self.train_divisor}"
                f"_e{self.classifier_epochs}_w{self.classifier_width}"
                f"_i{self.cae_iterations}_b{self.base_channels}"
                f"_m{self.min_train_per_class}_seed{self.seed}")


QUICK_SCALE = ExperimentScale(train_divisor=400, classifier_epochs=4,
                              cae_iterations=80, aux_epochs=2)


class ExperimentContext:
    """Lazily-built, disk-cached bundle of everything one dataset needs."""

    def __init__(self, dataset_name: str,
                 scale: Optional[ExperimentScale] = None,
                 cache_dir: str = DEFAULT_CACHE_DIR):
        self.dataset_name = dataset_name
        self.scale = scale or ExperimentScale()
        self.cache_dir = cache_dir
        self.config = ReproConfig(base_channels=self.scale.base_channels,
                                  image_size=self.scale.image_size,
                                  seed=self.scale.seed)
        self._train: Optional[ImageDataset] = None
        self._test: Optional[ImageDataset] = None
        self._classifier: Optional[SmallResNet] = None
        self._cae: Optional[CAEModel] = None
        self._icam: Optional[ICAMRegModel] = None
        self._suite: Optional[ExplainerSuite] = None
        self._engine = None
        self.train_times: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def _cache_path(self, kind: str) -> str:
        return os.path.join(self.cache_dir,
                            f"{self.scale.tag(self.dataset_name)}_{kind}.npz")

    @property
    def train_set(self) -> ImageDataset:
        if self._train is None:
            self._train = make_dataset(
                self.dataset_name, "train", self.scale.image_size,
                seed=self.scale.seed, divisor=self.scale.train_divisor,
                min_per_class=self.scale.min_train_per_class)
        return self._train

    @property
    def test_set(self) -> ImageDataset:
        if self._test is None:
            self._test = make_dataset(
                self.dataset_name, "test", self.scale.image_size,
                seed=self.scale.seed, divisor=self.scale.train_divisor,
                min_per_class=self.scale.min_test_per_class)
        return self._test

    # ------------------------------------------------------------------
    @property
    def classifier(self) -> SmallResNet:
        if self._classifier is None:
            model = SmallResNet(self.train_set.num_classes,
                                self.train_set.image_shape[0],
                                width=self.scale.classifier_width,
                                seed=self.scale.seed)
            path = self._cache_path("classifier")
            if os.path.exists(path):
                nn.load_state(model, path)
                model.eval()
            else:
                start = time.perf_counter()
                model = train_classifier(
                    self.train_set, epochs=self.scale.classifier_epochs,
                    width=self.scale.classifier_width, seed=self.scale.seed)
                self.train_times["classifier"] = time.perf_counter() - start
                nn.save_state(model, path)
            self._classifier = model
        return self._classifier

    # ------------------------------------------------------------------
    def _load_or_train_generative(self, kind: str):
        """Shared cache logic for the CAE and ICAM dual-code models."""
        if kind == "cae":
            model = CAEModel(self.train_set.num_classes, self.config)
        else:
            model = ICAMRegModel(self.train_set.num_classes, self.config)
        enc_path = self._cache_path(f"{kind}_encoder")
        if os.path.exists(enc_path):
            nn.load_state(model.encoder, enc_path)
            nn.load_state(model.decoder, self._cache_path(f"{kind}_decoder"))
            nn.load_state(model.discriminator,
                          self._cache_path(f"{kind}_disc"))
            model.eval()
            return model
        start = time.perf_counter()
        if kind == "cae":
            model = train_cae(self.train_set,
                              iterations=self.scale.cae_iterations,
                              config=self.config)
        else:
            model = train_icam(self.train_set,
                               iterations=self.scale.cae_iterations,
                               config=self.config)
        self.train_times[kind] = time.perf_counter() - start
        nn.save_state(model.encoder, enc_path)
        nn.save_state(model.decoder, self._cache_path(f"{kind}_decoder"))
        nn.save_state(model.discriminator, self._cache_path(f"{kind}_disc"))
        return model

    @property
    def cae(self) -> CAEModel:
        if self._cae is None:
            self._cae = self._load_or_train_generative("cae")
        return self._cae

    @property
    def icam(self) -> ICAMRegModel:
        if self._icam is None:
            self._icam = self._load_or_train_generative("icam")
        return self._icam

    # ------------------------------------------------------------------
    def suite(self, include: Optional[tuple] = None) -> ExplainerSuite:
        """The full explainer suite; CAE/ICAM reuse the cached models."""
        if self._suite is None:
            from ..explain import (CAEExplainer, ICAMExplainer)
            include_rest = tuple(m for m in (include or
                                             ("lime", "gradcam", "fullgrad",
                                              "simple_fullgrad",
                                              "smooth_fullgrad", "tscam",
                                              "stylex", "lagan"))
                                 if m not in ("cae", "icam"))
            suite = build_all_explainers(
                self.train_set, self.classifier, config=self.config,
                cae_iterations=self.scale.cae_iterations,
                aux_epochs=self.scale.aux_epochs, include=include_rest)
            cae_manifold = self.cae.build_manifold(self.train_set)
            suite.explainers["icam"] = ICAMExplainer(
                self.icam, self.icam.build_manifold(self.train_set),
                self.train_set.num_classes)
            suite.explainers["cae"] = CAEExplainer(
                self.cae, cae_manifold, self.classifier)
            suite.cae_model = self.cae
            suite.icam_model = self.icam
            self._suite = suite
        return self._suite

    # ------------------------------------------------------------------
    def engine_spec(self, include: Optional[tuple] = None):
        """Picklable :class:`~repro.serve.worker.EngineSpec` describing
        how a worker process rebuilds this context's classifier +
        explainer suite.

        The factory (:func:`context_explainers`, resolved by import in
        the worker) reconstructs the context from ``(dataset_name,
        scale, cache_dir)`` and loads the classifier/CAE/ICAM weights
        from the disk cache the parent populated — only the small
        auxiliary explainer models retrain, deterministically from the
        same seeds.  Build the suite (or call :meth:`engine`) *before*
        spawning workers from this spec so the weight cache is warm.
        """
        from ..serve.worker import EngineSpec
        return EngineSpec("repro.eval.pipeline:context_explainers",
                          kwargs=dict(dataset_name=self.dataset_name,
                                      scale=self.scale,
                                      cache_dir=self.cache_dir,
                                      include=include))

    def engine(self, include: Optional[tuple] = None, max_batch: int = 16,
               max_delay_ms: Optional[float] = None,
               min_batch: Optional[int] = None,
               target_batch_ms: float = 200.0,
               cache_size: int = 256, cache_shards: int = 4,
               eviction: str = "lru",
               max_pending: Optional[int] = None, policy: str = "block",
               tenant_quota: Optional[int] = None,
               tenant_quotas: Optional[dict] = None,
               executor=None, workers: Optional[int] = None,
               store=None, priority: bool = True,
               aging_ms: float = 1000.0):
        """The serving-layer :class:`~repro.serve.ExplainEngine` over this
        context's classifier + suite, so repeated sweeps hit the saliency
        cache and share micro-batched model calls.  The engine is cached
        per configuration: calling again with the same arguments returns
        the same engine (warm cache); different arguments rebuild it —
        **invalidating** a previously returned engine whose executor the
        context created ("serial"/"threaded"/"process" strings): its
        workers are shut down (after a drain) so nothing leaks or
        strands.  An executor *instance* passed by the caller stays the
        caller's to close.
        ``executor`` picks the batch executor (``None``/"serial",
        "threaded", "process", or an instance) and ``workers`` its pool
        size; ``executor="process"`` derives the worker-side
        :meth:`engine_spec` automatically, so each worker process
        materializes its own model replicas from the disk cache this
        call populates.  The cache defaults to 4 shards.
        The admission-control knobs pass straight through:
        ``min_batch``/``target_batch_ms`` turn on adaptive per-queue
        micro-batching, ``eviction`` picks "lru" or cost-aware "cost",
        and ``max_pending``/``policy`` bound async ingestion (block or
        reject on overload).  ``store`` names a directory for the
        persistent saliency tier (warm restarts: a rebuilt engine on
        the same directory serves yesterday's maps from disk); the
        engine owns it for its lifetime — single-writer rule — so two
        live engines must not share one directory.
        ``priority``/``aging_ms`` control SLO-aware flush ordering:
        with ``priority`` on (default) ready queues flush
        interactive-before-bulk with starvation aging; off restores the
        legacy insertion-order flush.
        ``tenant_quota``/``tenant_quotas`` bound each tenant's unique
        unresolved requests (per-tenant fairness admission; over-quota
        submits raise :class:`~repro.serve.TenantOverQuota`).
        """
        config = (include, max_batch, max_delay_ms, cache_size,
                  cache_shards, executor, min_batch, target_batch_ms,
                  eviction, max_pending, policy, workers,
                  None if store is None else os.fspath(store),
                  priority, aging_ms, tenant_quota,
                  None if tenant_quotas is None
                  else tuple(sorted(tenant_quotas.items())))
        if self._engine is None or self._engine[0] != config:
            from ..serve import ExplainEngine, make_executor
            if self._engine is not None:
                old_executor = self._engine[0][5]
                if old_executor is None or isinstance(old_executor, str):
                    self._engine[1].close()
            # suite() caches whatever method set it was first built with,
            # so filter here: the engine serves exactly `include` even
            # when the cached suite is broader, and fails loudly when the
            # cached suite is too narrow to honour the request.
            explainers = self.suite(include).explainers
            if include is not None:
                missing = [name for name in include
                           if name not in explainers]
                if missing:
                    raise KeyError(
                        f"suite was built without {missing}; construct the "
                        "context's suite with those methods first")
                explainers = {name: explainers[name] for name in include}
            # Build string executors here (not inside the engine): the
            # process pool needs the worker-side spec, and it must spawn
            # only after suite() above has written every cached weight
            # file the workers will load.
            engine_executor = executor
            if isinstance(executor, str) or executor is None:
                engine_executor = make_executor(
                    executor, spec=self.engine_spec(include),
                    workers=workers)
            self._engine = (config, ExplainEngine(
                self.classifier, explainers,
                max_batch=max_batch, max_delay_ms=max_delay_ms,
                min_batch=min_batch, target_batch_ms=target_batch_ms,
                cache_size=cache_size, cache_shards=cache_shards,
                eviction=eviction, max_pending=max_pending, policy=policy,
                tenant_quota=tenant_quota, tenant_quotas=tenant_quotas,
                executor=engine_executor, store=store,
                priority=priority, aging_ms=aging_ms))
        return self._engine[1]

    # ------------------------------------------------------------------
    def sample_test_images(self, n: int, abnormal_only: bool = False,
                           seed: int = 0) -> Tuple[np.ndarray, np.ndarray,
                                                   np.ndarray]:
        """Random test images (images, labels, masks) for evaluation."""
        test = self.test_set
        idx = np.arange(len(test))
        if abnormal_only:
            idx = idx[test.labels[idx] != 0]
        rng = np.random.default_rng(seed)
        pick = rng.choice(idx, size=min(n, len(idx)), replace=False)
        masks = test.masks[pick] if test.masks is not None else \
            np.zeros((len(pick),) + test.image_shape[1:])
        return test.images[pick], test.labels[pick], masks


# ----------------------------------------------------------------------
def context_explainers(dataset_name: str,
                       scale: Optional[ExperimentScale] = None,
                       cache_dir: str = DEFAULT_CACHE_DIR,
                       include: Optional[tuple] = None):
    """Worker-process factory behind :meth:`ExperimentContext.engine_spec`.

    Rebuilds the context in the worker's own interpreter and returns
    ``(classifier, explainers)``.  The classifier/CAE/ICAM weights load
    from the disk cache the parent already populated; auxiliary
    explainer models retrain deterministically from the same seeds.
    Module-level on purpose: the :class:`~repro.serve.worker.EngineSpec`
    references it by ``"module:attr"`` string, which every
    ``multiprocessing`` start method can resolve by import.
    """
    context = ExperimentContext(dataset_name, scale=scale,
                                cache_dir=cache_dir)
    explainers = context.suite(include).explainers
    if include is not None:
        explainers = {name: explainers[name] for name in include}
    return context.classifier, explainers
