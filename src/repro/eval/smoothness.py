"""Manifold smoothness analyses (paper Section IV.F.3 and Fig 11b).

* **SMOTE validity** — resample new CS codes as convex combinations of
  test-set codes per class, decode them against a fixed individual code,
  and measure how often the classifier assigns the intended class
  (paper: 93.4-97.6% on OCT).
* **Path monotonicity** — along a linear CS path between two classes,
  the classifier's target-class probability should rise continuously
  and (near-)monotonously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..classifiers import SmallResNet
from ..core.manifold import ClassAssociatedManifold
from ..core.model import CAEModel


def smote_validity(model: CAEModel, manifold: ClassAssociatedManifold,
                   classifier: SmallResNet, anchor_is_code: np.ndarray,
                   n_samples: int = 100,
                   rng: Optional[np.random.Generator] = None
                   ) -> Dict[int, float]:
    """Per-class fraction of SMOTE-resampled codes decoding to the
    intended class."""
    rng = rng or np.random.default_rng(0)
    anchor_is_code = np.asarray(anchor_is_code)
    if anchor_is_code.ndim == 3:
        anchor_is_code = anchor_is_code[None]
    rates: Dict[int, float] = {}
    for label in manifold.classes:
        codes = manifold.smote_codes(label, n_samples, rng=rng)
        images = model.decode(codes, np.repeat(anchor_is_code,
                                               len(codes), axis=0))
        pred = classifier.predict(images)
        rates[label] = float((pred == label).mean())
    return rates


@dataclass
class PathProbe:
    """Classifier probabilities along one interpolated CS path."""

    probs: np.ndarray          # (steps,) target-class probability
    images: np.ndarray         # (steps, C, H, W) generated series

    @property
    def monotonicity(self) -> float:
        """Fraction of steps that do not decrease the target probability
        (1.0 = perfectly monotone)."""
        if len(self.probs) < 2:
            return 1.0
        diffs = np.diff(self.probs)
        return float((diffs >= -1e-6).mean())

    @property
    def total_rise(self) -> float:
        return float(self.probs[-1] - self.probs[0])


def probe_path(model: CAEModel, classifier: SmallResNet,
               code_from: np.ndarray, code_to: np.ndarray,
               is_code: np.ndarray, target_label: int,
               steps: int = 10) -> PathProbe:
    """Decode a linear CS path with a fixed IS code and record the
    classifier's target-class probability at each step."""
    t = np.linspace(0.0, 1.0, steps)[:, None]
    codes = np.asarray(code_from)[None] * (1 - t) \
        + np.asarray(code_to)[None] * t
    is_code = np.asarray(is_code)
    if is_code.ndim == 3:
        is_code = is_code[None]
    images = model.decode(codes, np.repeat(is_code, steps, axis=0))
    probs = classifier.predict_proba(images)[:, target_label]
    return PathProbe(probs, images)
