"""Tape-based reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the ``repro.nn`` deep-learning substrate.
The paper trains its networks with PyTorch; this environment has no deep
learning framework installed, so we implement the required subset from
scratch: a :class:`Tensor` wrapping a ``numpy.ndarray`` that records the
operations applied to it and can backpropagate gradients through them.

Design notes
------------
* Gradients are accumulated into ``tensor.grad`` (a plain ndarray) during
  :meth:`Tensor.backward`, which performs a topological sort of the tape.
* Broadcasting is supported for elementwise ops; gradients are un-broadcast
  (summed over broadcast axes) before accumulation.
* Heavy structured ops (convolution, pooling) live in
  :mod:`repro.nn.functional` and register custom backward closures through
  the same mechanism used here.
* Inference mode: inside :class:`no_grad` (or after
  ``set_grad_enabled(False)``) :meth:`Tensor._make` skips parent tracking
  and backward-closure retention entirely, so gradient-free sweeps pay
  neither tape memory nor graph bookkeeping.  The switch is
  **thread-local** (default: recording on), so the serving runtime can
  run gradient-free and white-box micro-batches on concurrent worker
  threads without leaking inference mode across tapes.
* Dtype regime: new tensors built from scalars/lists and fresh parameters
  default to float32 (``set_default_dtype`` switches to float64 for
  gradient checking); existing float arrays are never silently recast.
* Tracing: every primitive routes through :meth:`Tensor._make` with a
  symbolic ``op`` name and the metadata its kernel/VJP need.  When a
  (thread-local) trace hook is installed — see :mod:`repro.nn.plan` —
  ``_make`` reports each op to it, letting a single instrumented forward
  pass be compiled into a tape-free execution plan.  With no hook
  installed the cost is one thread-local attribute read per op.
"""

from __future__ import annotations

import functools
import threading

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, "Tensor"]

_DEFAULT_DTYPE = np.dtype(np.float32)


class _GradState(threading.local):
    """Per-thread tape switch; the class attribute is the default every
    new thread starts from (recording on).  Thread-locality matters for
    the serving runtime: a worker running a gradient-free method under
    ``no_grad`` must not strip the tape from a concurrent worker's
    white-box backward pass."""

    enabled = True


_GRAD_STATE = _GradState()


class _TraceState(threading.local):
    """Per-thread trace hook consulted by :meth:`Tensor._make`.

    ``hook`` is ``None`` except while :func:`repro.nn.plan.trace` is
    instrumenting a forward pass on this thread; then it is an object
    with a ``record(op, out, parents, meta)`` method."""

    hook = None


_TRACE = _TraceState()


def _set_trace_hook(hook) -> None:
    """Install (or clear, with ``None``) the calling thread's trace hook."""
    _TRACE.hook = hook


def _get_trace_hook():
    return _TRACE.hook


#: Callbacks fired (with the new dtype) whenever ``set_default_dtype``
#: actually changes the default.  The serving layer's PlanCache registers
#: here: compiled plans bake buffer dtypes, so a dtype flip must drop them.
_DTYPE_LISTENERS: list = []


def register_dtype_listener(fn: Callable) -> Callable:
    """Register ``fn(new_dtype)`` to fire on default-dtype changes."""
    _DTYPE_LISTENERS.append(fn)
    return fn


def unregister_dtype_listener(fn: Callable) -> None:
    try:
        _DTYPE_LISTENERS.remove(fn)
    except ValueError:
        pass


def set_default_dtype(dtype) -> None:
    """Set the dtype used when tensors are created from python scalars/lists."""
    global _DEFAULT_DTYPE
    new = np.dtype(dtype)
    changed = new != _DEFAULT_DTYPE
    _DEFAULT_DTYPE = new
    if changed:
        for fn in list(_DTYPE_LISTENERS):
            fn(new)


def get_default_dtype():
    """Return the current default floating dtype for new tensors."""
    return _DEFAULT_DTYPE


def is_grad_enabled() -> bool:
    """Return whether this thread records new operations on the tape."""
    return _GRAD_STATE.enabled


class set_grad_enabled:
    """Enable/disable tape recording; usable as a call or context manager.

    ``set_grad_enabled(False)`` flips the calling thread's switch
    immediately; used as a context manager it restores the previous
    state on exit.
    """

    def __init__(self, mode: bool):
        self.prev = _GRAD_STATE.enabled
        _GRAD_STATE.enabled = bool(mode)

    def __enter__(self) -> "set_grad_enabled":
        return self

    def __exit__(self, *exc) -> bool:
        _GRAD_STATE.enabled = self.prev
        return False


class _GradSwitch:
    """Context manager / decorator forcing tape recording on or off
    (for the calling thread only)."""

    _mode: bool = True

    def __enter__(self) -> "_GradSwitch":
        self.prev = _GRAD_STATE.enabled
        _GRAD_STATE.enabled = self._mode
        return self

    def __exit__(self, *exc) -> bool:
        _GRAD_STATE.enabled = self.prev
        return False

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with self.__class__():
                return fn(*args, **kwargs)
        return wrapper


class no_grad(_GradSwitch):
    """Inference mode: ops inside produce untracked tensors.

    Forward results are bit-identical to tracked execution; only the tape
    (parent links, backward closures, gradient buffers) is skipped.
    """

    _mode = False


class enable_grad(_GradSwitch):
    """Re-enable tape recording inside an outer :class:`no_grad` scope."""

    _mode = True


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast to reach ``grad.shape``.

    ``shape`` is the original operand shape.  Handles both prepended axes
    and size-1 axes that were expanded.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that supports reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array content.  Lists and scalars are converted to float arrays.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` on backward.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "name", "retains_grad")

    def __init__(self, data, requires_grad: bool = False, name: Optional[str] = None):
        if isinstance(data, Tensor):
            data = data.data
        if isinstance(data, np.generic):
            # numpy scalars (e.g. from axis=None reductions) keep their
            # precision so float64 gradient-check tapes stay float64.
            data = np.asarray(data)
        if not isinstance(data, np.ndarray):
            data = np.asarray(data, dtype=_DEFAULT_DTYPE)
        if not np.issubdtype(data.dtype, np.floating):
            data = data.astype(_DEFAULT_DTYPE)
        self.data: np.ndarray = data
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name
        self.retains_grad = False

    def retain_grad(self) -> "Tensor":
        """Keep this tensor's gradient after backward (white-box explainers
        like Grad-CAM read gradients at interior feature maps)."""
        self.retains_grad = True
        return self

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (not a copy)."""
        return self.data

    # ------------------------------------------------------------------
    # graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None],
              op: Optional[str] = None, meta: Optional[dict] = None) -> "Tensor":
        """Create a result tensor wired into the autodiff tape.

        Under :class:`no_grad` the result is a plain untracked tensor:
        no parent links, no backward closure, so the whole upstream graph
        (including any arrays the closure captured) is released as soon
        as the caller drops its references.

        ``op``/``meta`` name the primitive symbolically for the trace
        hook (see :mod:`repro.nn.plan`); they are ignored on the normal
        tape path.
        """
        hook = _TRACE.hook
        if not _GRAD_STATE.enabled:
            out = Tensor(data)
            if hook is not None:
                hook.record(op, out, parents, meta)
            return out
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        if hook is not None:
            hook.record(op, out, parents, meta)
        return out

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        """Return a copy participating in the graph (identity op)."""
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
        return Tensor._make(self.data.copy(), (self,), backward, op="clone")

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError(
                "backward() called on a tensor that is not part of the "
                "autodiff tape; the forward pass ran under no_grad() or "
                "no input had requires_grad=True")
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without an explicit gradient "
                                 "requires a scalar tensor")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(f"gradient shape {grad.shape} does not match "
                                 f"tensor shape {self.data.shape}")

        # Topological order over the tape.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        # Seed the output gradient, then sweep in reverse topological order.
        # Backward closures accumulate directly into parent .grad; interior
        # node gradients are released after use to bound memory.
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Interior nodes are re-created on every forward pass, so
                # their gradient buffer can be dropped immediately unless
                # explicitly retained.
                if not node.retains_grad:
                    node.grad = None

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))
        return Tensor._make(out_data, (self, other), backward, op="add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)
        return Tensor._make(-self.data, (self,), backward, op="neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(-grad, other.shape))
        return Tensor._make(out_data, (self, other), backward, op="sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))
        return Tensor._make(out_data, (self, other), backward, op="mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape))
        return Tensor._make(out_data, (self, other), backward, op="div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))
        return Tensor._make(out_data, (self,), backward,
                            op="pow", meta={"exponent": exponent})

    # ------------------------------------------------------------------
    # unary math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)
        return Tensor._make(out_data, (self,), backward, op="exp")

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)
        return Tensor._make(np.log(self.data), (self,), backward, op="log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))
        return Tensor._make(out_data, (self,), backward, op="sqrt")

    def abs(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))
        return Tensor._make(np.abs(self.data), (self,), backward, op="abs")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))
        return Tensor._make(out_data, (self,), backward, op="tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))
        return Tensor._make(out_data, (self,), backward, op="sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)
        return Tensor._make(self.data * mask, (self,), backward, op="relu")

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope).astype(self.data.dtype,
                                                           copy=False)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * scale)
        return Tensor._make(self.data * scale, (self,), backward,
                            op="leaky_relu", meta={"slope": negative_slope})

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data > low) & (self.data < high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)
        return Tensor._make(np.clip(self.data, low, high), (self,), backward,
                            op="clip", meta={"low": low, "high": high})

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())
        return Tensor._make(out_data, (self,), backward,
                            op="sum", meta={"axis": axis, "keepdims": keepdims})

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False, eps: float = 0.0) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        if eps:
            out = out + eps
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                o = np.expand_dims(o, axis)
            mask = (self.data == o)
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None \
                else mask.sum()
            self._accumulate(mask * g / counts)
        return Tensor._make(out_data, (self,), backward,
                            op="max", meta={"axis": axis, "keepdims": keepdims})

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))
        return Tensor._make(self.data.reshape(shape), (self,), backward,
                            op="reshape")

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))
        return Tensor._make(self.data.transpose(axes), (self,), backward,
                            op="transpose", meta={"axes": tuple(axes)})

    def flatten(self, start_dim: int = 1) -> "Tensor":
        lead = self.shape[:start_dim]
        return self.reshape(lead + (-1,))

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)
        return Tensor._make(out_data, (self,), backward,
                            op="getitem", meta={"index": index})

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two axes symmetrically (NCHW images)."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding)] * 2

        def backward(grad: np.ndarray) -> None:
            slices = tuple([slice(None)] * (self.ndim - 2)
                           + [slice(padding, -padding)] * 2)
            self._accumulate(grad[slices])
        return Tensor._make(np.pad(self.data, pad_width), (self,), backward,
                            op="pad2d", meta={"padding": padding})

    # ------------------------------------------------------------------
    # linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                ga = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(ga, self.shape))
            if other.requires_grad:
                gb = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(gb, other.shape))
        return Tensor._make(out_data, (self, other), backward, op="matmul")

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                t._accumulate(grad[tuple(slicer)])
        return Tensor._make(out_data, tuple(tensors), backward,
                            op="concat", meta={"axis": axis})

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            parts = np.split(grad, len(tensors), axis=axis)
            for t, g in zip(tensors, parts):
                t._accumulate(np.squeeze(g, axis=axis))
        return Tensor._make(out_data, tuple(tensors), backward,
                            op="stack", meta={"axis": axis})


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def randn(shape, rng: Optional[np.random.Generator] = None,
          scale: float = 1.0, requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    data = (rng.standard_normal(shape) * scale).astype(_DEFAULT_DTYPE,
                                                       copy=False)
    return Tensor(data, requires_grad=requires_grad)
