"""Trace-and-replay compiled execution plans for repeated-shape batches.

Serving traffic is shape-repetitive: the engine runs the same
``(method, batch_shape)`` micro-batch thousands of times, yet the tape
re-records parent links and backward closures and re-allocates every
forward/VJP intermediate on each batch.  This module kills that cost for
the hot path, HIPS-autograd-style: run the batch **once** under
instrumentation (:func:`trace`), record every primitive (op name, input
slots, shape, dtype, VJP metadata) into an :class:`ExecutionPlan`, then
:meth:`ExecutionPlan.replay` re-executes with *no Tensor objects, no
tape, no per-batch closures* — every step is a precompiled callable
writing into a preallocated per-plan buffer arena (``out=`` for GEMMs
and elementwise ufuncs, adjacent elementwise chains fused into a single
shared buffer).

Pipeline
--------
``trace(build_fn)`` installs a thread-local hook inside
:meth:`Tensor._make`, runs ``build_fn(tracer)`` under ``no_grad`` (the
trace needs op metadata, not closures) and hands the recorded program to
:class:`ExecutionPlan`, which compiles it in five passes:

1. **const folding** — ops whose inputs are all constants (weights,
   biases, positional embeddings) collapse to baked arrays; parameter
   leaves are referenced zero-copy so in-place ``load_state_dict``
   updates propagate, while *computed* folds (e.g. batch-norm's
   ``running_var + eps``) are baked at trace time.
2. **dead-op pruning** — anything not an ancestor of a declared output,
   gradient target, or the loss is dropped (e.g. an unused head).
3. **demand-driven backward scheduling** — gradients are computed only
   for slots lying on a path from a requested gradient target to the
   loss; weight-gradient work is skipped at compile time, making
   ``nn.frozen`` unnecessary inside planned cores.
4. **elementwise fusion** — a single-consumer elementwise intermediate
   whose value no VJP reads shares its consumer's output buffer, so a
   chain like batch-norm's ``(x - mu) / std * w + b`` runs in one
   buffer with in-place ufuncs.
5. **arena allocation** — one persistent ndarray per surviving slot
   (plus gradient and conv-scratch buffers); ``arena_bytes`` totals
   them.

Shape/dtype mismatches at replay raise :class:`PlanMismatch`; primitives
with no compiled kernel raise :class:`PlanUnsupported` at trace/compile
time.  Both are caught by the serving layer's PlanCache, which falls
back to tape execution and counts the event.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .tensor import Tensor, _set_trace_hook, _unbroadcast, no_grad


class PlanUnsupported(RuntimeError):
    """The traced computation cannot be compiled into a plan."""


class PlanMismatch(RuntimeError):
    """Replay inputs do not match the shapes/dtypes the plan was
    compiled for."""


class _Slot:
    """One value in the traced program: an input, a constant, or an op
    result.  ``array`` is the fixed arena buffer (or const/view array)
    bound at compile time."""

    __slots__ = ("idx", "shape", "dtype", "kind", "array", "producer",
                 "name")

    def __init__(self, idx, shape, dtype, kind):
        self.idx = idx
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.kind = kind            # "input" | "const" | "op"
        self.array: Optional[np.ndarray] = None
        self.producer = None
        self.name: Optional[str] = None

    def __repr__(self):
        return (f"_Slot({self.idx}, {self.kind}, {self.shape}, "
                f"{self.dtype})")


class _Op:
    """One recorded primitive application."""

    __slots__ = ("op", "out", "ins", "meta", "out_data", "scratch")

    def __init__(self, op, out, ins, meta, out_data):
        self.op = op
        self.out = out
        self.ins = ins              # tuple[_Slot]
        self.meta = meta            # dict
        self.out_data = out_data    # traced forward value (for folding)
        self.scratch = {}           # kernel-private preallocated buffers


class Tracer:
    """Records one instrumented forward pass into slots + op records.

    Strong references are kept to every traced Tensor (``_keepalive``):
    CPython reuses ``id()`` after garbage collection, so letting interim
    tensors die mid-trace would alias distinct values onto one slot.
    """

    def __init__(self):
        self.slots: List[_Slot] = []
        self.records: List[_Op] = []
        self._by_id: Dict[int, _Slot] = {}
        self._aux_arrays: Dict[int, _Slot] = {}
        self._keepalive: list = []
        self.inputs: Dict[str, _Slot] = {}
        self.outputs: Dict[str, _Slot] = {}
        self.grad_outputs: Dict[str, _Slot] = {}
        self.loss_slot: Optional[_Slot] = None

    # -- declaration API used by plan cores ----------------------------
    def input(self, name: str, array: np.ndarray) -> Tensor:
        """Declare a replayable tensor input; returns the Tensor to feed
        the traced computation."""
        arr = np.ascontiguousarray(array)
        t = Tensor(arr)
        slot = self._new_slot(arr.shape, arr.dtype, "input")
        slot.name = name
        self.inputs[name] = slot
        self._by_id[id(t)] = slot
        self._keepalive.append(t)
        return t

    def aux_input(self, name: str, array: np.ndarray) -> np.ndarray:
        """Declare a replayable *raw ndarray* input consumed through op
        metadata (e.g. the label vector of ``class_score_sum``).  Feed
        the returned array — it is identity-matched during recording."""
        arr = np.ascontiguousarray(array)
        slot = self._new_slot(arr.shape, arr.dtype, "input")
        slot.name = name
        self.inputs[name] = slot
        self._aux_arrays[id(arr)] = slot
        self._keepalive.append(arr)
        return arr

    def output(self, name: str, tensor: Tensor) -> None:
        """Declare a forward value to surface from each replay."""
        self.outputs[name] = self._slot_of(tensor)

    def grad(self, name: str, tensor: Tensor) -> None:
        """Request the gradient of the loss w.r.t. ``tensor``."""
        self.grad_outputs[name] = self._slot_of(tensor)

    def loss(self, tensor: Tensor) -> None:
        """Declare the scalar the backward sweep seeds from."""
        if tensor.data.size != 1:
            raise PlanUnsupported("plan loss must be a scalar")
        self.loss_slot = self._slot_of(tensor)

    # -- recording hook (called from Tensor._make) ---------------------
    def record(self, op, out, parents, meta) -> None:
        if op is None:
            raise PlanUnsupported(
                "traced computation used a primitive with no symbolic "
                "op name")
        ins = tuple(self._slot_of(p) for p in parents)
        out_slot = self._new_slot(out.shape, out.dtype, "op")
        rec = _Op(op, out_slot, ins, dict(meta) if meta else {}, out.data)
        out_slot.producer = rec
        self.records.append(rec)
        self._by_id[id(out)] = out_slot
        self._keepalive.append(out)
        # Metadata ndarrays that were declared as aux inputs become slot
        # references (replay-swappable); anything else stays baked.
        for key, value in list(rec.meta.items()):
            if isinstance(value, np.ndarray):
                rec.meta[key + "_slot"] = self._aux_arrays.get(id(value))

    # -- internals -----------------------------------------------------
    def _new_slot(self, shape, dtype, kind) -> _Slot:
        slot = _Slot(len(self.slots), shape, dtype, kind)
        self.slots.append(slot)
        return slot

    def _slot_of(self, t: Tensor) -> _Slot:
        slot = self._by_id.get(id(t))
        if slot is None:
            # A tensor created outside the trace (weight, bias, constant
            # built by a layer): a const leaf referencing its data
            # zero-copy, so in-place parameter updates propagate.
            slot = self._new_slot(t.shape, t.dtype, "const")
            slot.array = t.data
            self._by_id[id(t)] = slot
            self._keepalive.append(t)
        return slot


def trace(build_fn: Callable[[Tracer], None]) -> "ExecutionPlan":
    """Run ``build_fn(tracer)`` once under instrumentation and compile
    the recording into an :class:`ExecutionPlan`.

    ``build_fn`` declares inputs via ``tracer.input``/``aux_input``,
    runs the computation on the returned tensors, and declares
    ``output``/``grad``/``loss``.  Raises :class:`PlanUnsupported` when
    any traced primitive has no compiled kernel.
    """
    tracer = Tracer()
    _set_trace_hook(tracer)
    try:
        with no_grad():
            build_fn(tracer)
    finally:
        _set_trace_hook(None)
    if tracer.grad_outputs and tracer.loss_slot is None:
        raise PlanUnsupported("gradient outputs requested without a loss")
    if not tracer.outputs and not tracer.grad_outputs:
        raise PlanUnsupported("plan declares no outputs")
    return ExecutionPlan(tracer)


#: Elementwise ops whose compiled kernels tolerate ``out=`` aliasing an
#: input — the fusion pass may collapse chains of these onto one buffer.
_FUSABLE = frozenset({
    "add", "sub", "mul", "div", "neg", "exp", "log", "sqrt", "abs",
    "tanh", "sigmoid", "relu", "leaky_relu", "clip", "pow",
})

_VIEW_OPS = frozenset({"reshape", "transpose", "getitem"})


def _is_basic_index(index) -> bool:
    items = index if isinstance(index, tuple) else (index,)
    return all(isinstance(it, (int, np.integer, slice, type(None),
                               type(Ellipsis))) for it in items)


class ExecutionPlan:
    """A compiled trace: fixed buffers plus a flat list of step
    callables (forward then backward), re-executable via :meth:`replay`.

    Constants reference parameter arrays zero-copy; *computed* constant
    folds (and any non-parameter arrays a layer builds per call) are
    baked at trace time, so a plan assumes model weights change only via
    in-place ``load_state_dict``-style updates between replays.
    """

    def __init__(self, tracer: Tracer):
        self.inputs = tracer.inputs
        self.outputs = tracer.outputs
        self.grad_outputs = tracer.grad_outputs
        self.loss_slot = tracer.loss_slot
        self._records = tracer.records
        self._keepalive = tracer._keepalive
        self.arena_bytes = 0
        self.folded_ops = 0
        self.pruned_ops = 0
        self.fused_slots = 0
        self._steps: List[Callable[[], None]] = []
        self._grad_buffers: Dict[_Slot, np.ndarray] = {}
        self._compile()

    # -- compilation ---------------------------------------------------
    def _alloc(self, shape, dtype) -> np.ndarray:
        buf = np.empty(shape, dtype=dtype)
        self.arena_bytes += buf.nbytes
        return buf

    def _compile(self) -> None:
        records = self._records

        # 1. const folding: ops with all-const inputs bake their traced
        # value (a zero-copy view of parameter data for pure view ops).
        live_records: List[_Op] = []
        for rec in records:
            if all(s.kind == "const" for s in rec.ins):
                rec.out.kind = "const"
                rec.out.array = rec.out_data
                self.folded_ops += 1
            else:
                live_records.append(rec)
        records = live_records

        # 2. dead-op pruning: keep ancestors of declared outputs, grad
        # targets, and the loss.
        live = set()
        for slot in self.outputs.values():
            live.add(slot)
        for slot in self.grad_outputs.values():
            live.add(slot)
        if self.loss_slot is not None:
            live.add(self.loss_slot)
        kept: List[_Op] = []
        for rec in reversed(records):
            if rec.out in live:
                kept.append(rec)
                live.update(rec.ins)
            else:
                self.pruned_ops += 1
        records = list(reversed(kept))
        self._records = records

        # 3. demand-driven backward scheduling: grad needed at a slot
        # iff it lies on a path from a grad target to the loss.
        targets = set(self.grad_outputs.values())
        needs: set = set()
        backward_recs: List[_Op] = []
        if targets and self.loss_slot is not None:
            anc = {self.loss_slot}
            for rec in reversed(records):
                if rec.out in anc:
                    anc.update(rec.ins)
            desc = set(targets)
            for rec in records:
                if any(s in desc for s in rec.ins):
                    desc.add(rec.out)
            needs = (anc & desc) | {self.loss_slot}
            needs.update(targets)
            backward_recs = [rec for rec in records
                             if rec.out in needs
                             and any(s in needs for s in rec.ins)]

        # 4. value-needed analysis feeding the fusion pass: a slot whose
        # forward value any VJP (or the caller) reads must keep its own
        # buffer.
        value_needed = set(self.outputs.values())
        if self.loss_slot is not None:
            value_needed.add(self.loss_slot)
        for rec in backward_recs:
            reqs = _VJP_VALUE_REQS.get(rec.op)
            if reqs is None:
                raise PlanUnsupported(
                    f"no VJP compiled for traced op {rec.op!r}")
            value_needed.update(reqs(rec))

        # 5a. buffer allocation for non-view op outputs, in reverse
        # order so an elementwise chain can alias one input per op onto
        # its consumer's buffer (fusion).
        consumers: Dict[_Slot, int] = {}
        for rec in records:
            for s in rec.ins:
                consumers[s] = consumers.get(s, 0) + 1
        for rec in reversed(records):
            if rec.op in _VIEW_OPS:
                continue
            out = rec.out
            if out.array is None:
                out.array = self._alloc(out.shape, out.dtype)
            if rec.op not in _FUSABLE:
                continue
            for s in rec.ins:
                if (s.kind == "op" and s.array is None
                        and s.producer is not None
                        and s.producer.op in _FUSABLE
                        and consumers.get(s, 0) == 1
                        and s not in value_needed
                        and s not in targets
                        and s.shape == out.shape
                        and s.dtype == out.dtype):
                    s.array = out.array
                    self.fused_slots += 1
                    break                 # one aliased input per op

        # 5b. input buffers (replay copies arrive here), then view
        # binding in forward order (views of views resolve left to
        # right).
        for slot in self.inputs.values():
            slot.array = self._alloc(slot.shape, slot.dtype)
        for rec in records:
            if rec.op in _VIEW_OPS and rec.out.array is None:
                view = _build_view(rec)
                # Non-viewable (e.g. reshape of a transposed view,
                # advanced indexing): fall back to a buffer + copy step.
                rec.out.array = view if view is not None \
                    else self._alloc(rec.out.shape, rec.out.dtype)

        # 6. forward steps.
        for rec in records:
            if rec.op in _VIEW_OPS \
                    and np.may_share_memory(rec.out.array,
                                            rec.ins[0].array):
                continue                  # pure view: zero replay cost
            builder = _FORWARD_BUILDERS.get(rec.op)
            if builder is None:
                raise PlanUnsupported(
                    f"no forward kernel compiled for traced op {rec.op!r}")
            step = builder(rec, self)
            if step is not None:
                self._steps.append(step)

        # 7. backward steps: grad buffers + per-contribution set/add
        # modes, swept in reverse op order.
        if backward_recs:
            for slot in needs:
                if slot is self.loss_slot:
                    buf = self._alloc(slot.shape, slot.dtype)
                    buf[...] = 1.0        # seed; nothing ever writes it
                else:
                    buf = self._alloc(slot.shape, slot.dtype)
                self._grad_buffers[slot] = buf
            written: set = set()
            contributed: set = set()
            for rec in reversed(backward_recs):
                vjp = _VJP_BUILDERS.get(rec.op)
                if vjp is None:
                    raise PlanUnsupported(
                        f"no VJP compiled for traced op {rec.op!r}")
                for in_slot, make_step in vjp(rec, self):
                    if in_slot not in needs:
                        continue
                    mode = "add" if in_slot in written else "set"
                    written.add(in_slot)
                    contributed.add(in_slot)
                    self._steps.append(make_step(mode))
            # A target off the loss path receives no contributions: its
            # gradient is identically zero, baked once.
            for slot in needs:
                if slot is not self.loss_slot and slot not in contributed:
                    self._grad_buffers[slot].fill(0.0)

    # -- execution -----------------------------------------------------
    def replay(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Re-execute the plan on new inputs.

        Returns a dict of declared outputs (``output`` names map to
        forward values, ``grad`` names to gradients).  The returned
        arrays are *views into the plan's arena* — valid until the next
        replay; copy them to retain.
        """
        for name, slot in self.inputs.items():
            arr = inputs.get(name)
            if arr is None:
                raise PlanMismatch(f"replay missing input {name!r}")
            arr = np.asarray(arr)
            if arr.shape != slot.shape:
                raise PlanMismatch(
                    f"input {name!r} shape {arr.shape} != compiled "
                    f"{slot.shape}")
            if arr.dtype != slot.dtype:
                raise PlanMismatch(
                    f"input {name!r} dtype {arr.dtype} != compiled "
                    f"{slot.dtype}")
            np.copyto(slot.array, arr)
        for step in self._steps:
            step()
        out: Dict[str, np.ndarray] = {}
        for name, slot in self.outputs.items():
            out[name] = slot.array
        for name, slot in self.grad_outputs.items():
            out[name] = self._grad_buffers[slot]
        return out

    @property
    def n_steps(self) -> int:
        return len(self._steps)


# ----------------------------------------------------------------------
# view binding
# ----------------------------------------------------------------------
def _build_view(rec: _Op) -> Optional[np.ndarray]:
    """Bind a view op's output directly onto its input's fixed array.

    Returns ``None`` when numpy cannot express the result as a view
    (reshape of a non-contiguous view, advanced indexing); the caller
    then falls back to a preallocated buffer plus a per-replay copy.
    """
    a = rec.ins[0].array
    if rec.op == "transpose":
        return a.transpose(rec.meta["axes"])
    if rec.op == "reshape":
        try:
            v = a.reshape(rec.out.shape)
        except ValueError:
            return None
        return v if np.may_share_memory(v, a) else None
    if rec.op == "getitem":
        index = rec.meta["index"]
        if _is_basic_index(index):
            return a[index]
        return None
    return None


# ----------------------------------------------------------------------
# gradient-contribution helper
# ----------------------------------------------------------------------
def _emit(plan: ExecutionPlan, slot: _Slot, compute: Callable,
          fast_set: Optional[Callable] = None):
    """Build a ``make_step(mode)`` factory accumulating ``compute()``
    into ``slot``'s gradient buffer.

    ``compute`` returns the raw contribution (any broadcast-compatible
    shape); a *larger* result is un-broadcast (summed) down to the slot
    shape, a smaller one broadcasts up.  ``fast_set`` — when given and
    the contribution shape matches exactly — writes straight into the
    buffer with ``out=`` for the first (set-mode) contribution.
    """
    shape = slot.shape

    def _fit(c: np.ndarray) -> np.ndarray:
        if c.shape == shape:
            return c
        try:
            if np.broadcast_shapes(c.shape, shape) == shape:
                return c                  # broadcasts up inside copyto/add
        except ValueError:
            pass
        return _unbroadcast(c, shape)

    def make_step(mode: str):
        target = plan._grad_buffers[slot]
        if mode == "set":
            if fast_set is not None:
                return lambda: fast_set(target)

            def step():
                np.copyto(target, _fit(compute()))
            return step

        def step():
            c = _fit(compute())
            np.add(target, c, out=target)
        return step

    return make_step


# ----------------------------------------------------------------------
# forward kernels
# ----------------------------------------------------------------------
def _fw_ufunc2(ufunc):
    def build(rec, plan):
        a, b = rec.ins[0].array, rec.ins[1].array
        o = rec.out.array
        return lambda: ufunc(a, b, out=o)
    return build


def _fw_ufunc1(ufunc):
    def build(rec, plan):
        a, o = rec.ins[0].array, rec.out.array
        return lambda: ufunc(a, out=o)
    return build


def _fw_clone(rec, plan):
    a, o = rec.ins[0].array, rec.out.array
    return lambda: np.copyto(o, a)


def _fw_pow(rec, plan):
    a, o = rec.ins[0].array, rec.out.array
    exponent = rec.meta["exponent"]
    return lambda: np.power(a, exponent, out=o)


def _fw_sigmoid(rec, plan):
    a, o = rec.ins[0].array, rec.out.array

    def step():
        np.negative(a, out=o)
        np.exp(o, out=o)
        np.add(o, 1.0, out=o)
        np.divide(1.0, o, out=o)
    return step


def _fw_relu(rec, plan):
    a, o = rec.ins[0].array, rec.out.array
    return lambda: np.maximum(a, 0.0, out=o)


def _fw_leaky_relu(rec, plan):
    a, o = rec.ins[0].array, rec.out.array
    slope = rec.meta["slope"]
    if 0.0 < slope < 1.0:
        # max(x, slope*x) == leaky-relu for slopes in (0, 1); two
        # in-place ufuncs, one scratch.
        tmp = plan._alloc(rec.out.shape, rec.out.dtype)

        def step():
            np.multiply(a, slope, out=tmp)
            np.maximum(a, tmp, out=o)
        return step

    def step():
        np.multiply(a, slope, out=o)
        np.copyto(o, a, where=a > 0)
    return step


def _fw_clip(rec, plan):
    a, o = rec.ins[0].array, rec.out.array
    low, high = rec.meta["low"], rec.meta["high"]
    return lambda: np.clip(a, low, high, out=o)


def _fw_sum(rec, plan):
    a, o = rec.ins[0].array, rec.out.array
    axis, keep = rec.meta["axis"], rec.meta["keepdims"]
    return lambda: np.sum(a, axis=axis, keepdims=keep, out=o)


def _fw_max(rec, plan):
    a, o = rec.ins[0].array, rec.out.array
    axis, keep = rec.meta["axis"], rec.meta["keepdims"]
    return lambda: np.amax(a, axis=axis, keepdims=keep, out=o)


def _fw_matmul(rec, plan):
    a, b = rec.ins[0].array, rec.ins[1].array
    o = rec.out.array
    return lambda: np.matmul(a, b, out=o)


def _fw_reshape(rec, plan):
    # Copy fallback (non-viewable source): the output buffer viewed in
    # the *input's* shape copies elementwise in C order == reshape.
    a = rec.ins[0].array
    o_view = rec.out.array.reshape(rec.ins[0].shape)
    return lambda: np.copyto(o_view, a)


def _fw_transpose(rec, plan):
    a, o = rec.ins[0].array, rec.out.array
    axes = rec.meta["axes"]
    return lambda: np.copyto(o, a.transpose(axes))


def _fw_getitem(rec, plan):
    a, o = rec.ins[0].array, rec.out.array
    index = rec.meta["index"]
    return lambda: np.copyto(o, a[index])


def _fw_pad2d(rec, plan):
    a, o = rec.ins[0].array, rec.out.array
    p = rec.meta["padding"]
    o.fill(0.0)                           # border stays zero forever
    nd = len(rec.out.shape)
    interior = o[tuple([slice(None)] * (nd - 2) + [slice(p, -p)] * 2)]
    return lambda: np.copyto(interior, a)


def _fw_concat(rec, plan):
    axis = rec.meta["axis"]
    o = rec.out.array
    pairs = []
    start = 0
    for s in rec.ins:
        size = s.shape[axis]
        slicer = [slice(None)] * len(rec.out.shape)
        slicer[axis] = slice(start, start + size)
        pairs.append((o[tuple(slicer)], s.array))
        start += size

    def step():
        for view, src in pairs:
            np.copyto(view, src)
    return step


def _fw_stack(rec, plan):
    axis = rec.meta["axis"]
    o = rec.out.array
    pairs = []
    for i, s in enumerate(rec.ins):
        slicer = [slice(None)] * len(rec.out.shape)
        slicer[axis] = i
        pairs.append((o[tuple(slicer)], s.array))

    def step():
        for view, src in pairs:
            np.copyto(view, src)
    return step


def _fw_upsample(rec, plan):
    scale = rec.meta["scale"]
    a, o = rec.ins[0].array, rec.out.array
    n, c, h, w = rec.ins[0].shape
    o6 = o.reshape(n, c, h, scale, w, scale)
    a6 = a[:, :, :, np.newaxis, :, np.newaxis]   # view at any stride
    return lambda: np.copyto(o6, a6)


def _fw_softmax(rec, plan):
    a, o = rec.ins[0].array, rec.out.array
    axis = rec.meta["axis"]

    def step():
        np.subtract(a, a.max(axis=axis, keepdims=True), out=o)
        np.exp(o, out=o)
        np.divide(o, o.sum(axis=axis, keepdims=True), out=o)
    return step


def _fw_log_softmax(rec, plan):
    a, o = rec.ins[0].array, rec.out.array
    axis = rec.meta["axis"]

    def step():
        np.subtract(a, a.max(axis=axis, keepdims=True), out=o)
        lse = np.log(np.exp(o).sum(axis=axis, keepdims=True))
        np.subtract(o, lse, out=o)
    return step


def _css_labels(rec, plan):
    slot = rec.meta.get("labels_slot")
    if slot is None:
        raise PlanUnsupported(
            "class_score_sum labels were not declared as a plan input "
            "(tracer.aux_input); baking them would freeze the targets")
    return slot.array


def _fw_class_score_sum(rec, plan):
    x, o = rec.ins[0].array, rec.out.array
    labels = _css_labels(rec, plan)
    rows = np.arange(rec.ins[0].shape[0])

    def step():
        o[()] = x[rows, labels].sum()
    return step


def _fw_conv2d(rec, plan):
    from .functional import _conv_output_size
    x, w = rec.ins[0], rec.ins[1]
    bias = rec.ins[2] if len(rec.ins) == 3 else None
    stride, padding = rec.meta["stride"], rec.meta["padding"]
    n, c, h, wd = x.shape
    c_out, _, k, _ = w.shape
    oh = _conv_output_size(h, k, stride, padding)
    ow = _conv_output_size(wd, k, stride, padding)

    w2d = w.array.reshape(c_out, -1)
    if not np.may_share_memory(w2d, w.array):
        raise PlanUnsupported("conv2d weight is not viewable as 2-D")
    if padding > 0:
        pbuf = plan._alloc((n, c, h + 2 * padding, wd + 2 * padding),
                           x.dtype)
        pbuf.fill(0.0)
        interior = pbuf[:, :, padding:-padding, padding:-padding]
        src = pbuf
    else:
        interior = None
        src = x.array
    s0, s1, s2, s3 = src.strides
    windows = np.lib.stride_tricks.as_strided(
        src, shape=(n, c, oh, ow, k, k),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False).transpose(0, 1, 4, 5, 2, 3)
    cols = plan._alloc((n, c * k * k, oh * ow), x.dtype)
    cols6 = cols.reshape(n, c, k, k, oh, ow)
    o = rec.out.array
    o3 = o.reshape(n, c_out, oh * ow)
    bview = None if bias is None \
        else bias.array.reshape(1, c_out, 1, 1)
    rec.scratch["cols"] = cols
    rec.scratch["w2d"] = w2d
    x_arr = x.array

    def step():
        if interior is not None:
            np.copyto(interior, x_arr)
        np.copyto(cols6, windows)
        np.matmul(w2d, cols, out=o3)
        if bview is not None:
            np.add(o, bview, out=o)
    return step


def _fw_conv2d_transpose(rec, plan):
    from .functional import col2im
    x, w = rec.ins[0], rec.ins[1]
    bias = rec.ins[2] if len(rec.ins) == 3 else None
    stride, padding = rec.meta["stride"], rec.meta["padding"]
    n, c_in, h, wd = x.shape
    _, c_out, k, _ = w.shape
    w2dT = w.array.reshape(c_in, -1).T
    o = rec.out.array
    bview = None if bias is None \
        else bias.array.reshape(1, c_out, 1, 1)
    x_arr = x.array

    def step():
        x2d = x_arr.reshape(n, c_in, h * wd)
        cols = np.matmul(w2dT, x2d)
        np.copyto(o, col2im(cols, rec.out.shape, k, stride, padding))
        if bview is not None:
            np.add(o, bview, out=o)
    return step


def _fw_avg_pool2d(rec, plan):
    from .functional import im2col
    kernel, stride = rec.meta["kernel"], rec.meta["stride"]
    x, o = rec.ins[0], rec.out.array
    n, c, h, w = x.shape
    x_arr = x.array

    def step():
        cols = im2col(x_arr.reshape(n * c, 1, h, w), kernel, stride, 0)
        np.copyto(o, cols.mean(axis=1).reshape(rec.out.shape))
    return step


def _fw_max_pool2d(rec, plan):
    from .functional import im2col
    kernel, stride = rec.meta["kernel"], rec.meta["stride"]
    x, o = rec.ins[0], rec.out.array
    n, c, h, w = x.shape
    x_arr = x.array

    def step():
        cols = im2col(x_arr.reshape(n * c, 1, h, w), kernel, stride, 0)
        argmax = cols.argmax(axis=1)
        rec.scratch["cols"] = cols
        rec.scratch["argmax"] = argmax
        picked = np.take_along_axis(cols, argmax[:, None, :], axis=1)
        np.copyto(o, picked[:, 0, :].reshape(rec.out.shape))
    return step


_FORWARD_BUILDERS: Dict[str, Callable] = {
    "add": _fw_ufunc2(np.add),
    "sub": _fw_ufunc2(np.subtract),
    "mul": _fw_ufunc2(np.multiply),
    "div": _fw_ufunc2(np.divide),
    "neg": _fw_ufunc1(np.negative),
    "exp": _fw_ufunc1(np.exp),
    "log": _fw_ufunc1(np.log),
    "sqrt": _fw_ufunc1(np.sqrt),
    "abs": _fw_ufunc1(np.absolute),
    "tanh": _fw_ufunc1(np.tanh),
    "sigmoid": _fw_sigmoid,
    "relu": _fw_relu,
    "leaky_relu": _fw_leaky_relu,
    "clip": _fw_clip,
    "pow": _fw_pow,
    "clone": _fw_clone,
    "sum": _fw_sum,
    "max": _fw_max,
    "matmul": _fw_matmul,
    "reshape": _fw_reshape,
    "transpose": _fw_transpose,
    "getitem": _fw_getitem,
    "pad2d": _fw_pad2d,
    "concat": _fw_concat,
    "stack": _fw_stack,
    "upsample2d": _fw_upsample,
    "softmax": _fw_softmax,
    "log_softmax": _fw_log_softmax,
    "class_score_sum": _fw_class_score_sum,
    "conv2d": _fw_conv2d,
    "conv2d_transpose": _fw_conv2d_transpose,
    "avg_pool2d": _fw_avg_pool2d,
    "max_pool2d": _fw_max_pool2d,
}



# ----------------------------------------------------------------------
# VJP builders: (rec, plan) -> [(input_slot, make_step(mode)), ...]
# ----------------------------------------------------------------------
def _vjp_add(rec, plan):
    g = plan._grad_buffers[rec.out]
    return [(s, _emit(plan, s, lambda: g)) for s in rec.ins]


def _vjp_sub(rec, plan):
    g = plan._grad_buffers[rec.out]
    return [(rec.ins[0], _emit(plan, rec.ins[0], lambda: g)),
            (rec.ins[1], _emit(plan, rec.ins[1],
                               lambda: np.negative(g)))]


def _vjp_neg(rec, plan):
    g = plan._grad_buffers[rec.out]
    return [(rec.ins[0], _emit(plan, rec.ins[0],
                               lambda: np.negative(g)))]


def _vjp_clone(rec, plan):
    g = plan._grad_buffers[rec.out]
    return [(rec.ins[0], _emit(plan, rec.ins[0], lambda: g))]


def _vjp_mul(rec, plan):
    g = plan._grad_buffers[rec.out]
    a, b = rec.ins[0], rec.ins[1]
    out = []
    fast_a = (lambda t: np.multiply(g, b.array, out=t)) \
        if a.shape == rec.out.shape else None
    fast_b = (lambda t: np.multiply(g, a.array, out=t)) \
        if b.shape == rec.out.shape else None
    out.append((a, _emit(plan, a, lambda: g * b.array, fast_set=fast_a)))
    out.append((b, _emit(plan, b, lambda: g * a.array, fast_set=fast_b)))
    return out


def _vjp_div(rec, plan):
    g = plan._grad_buffers[rec.out]
    a, b = rec.ins[0], rec.ins[1]
    fast_a = (lambda t: np.divide(g, b.array, out=t)) \
        if a.shape == rec.out.shape else None
    return [
        (a, _emit(plan, a, lambda: g / b.array, fast_set=fast_a)),
        (b, _emit(plan, b,
                  lambda: -g * a.array / (b.array ** 2))),
    ]


def _vjp_pow(rec, plan):
    g = plan._grad_buffers[rec.out]
    a = rec.ins[0]
    e = rec.meta["exponent"]
    return [(a, _emit(plan, a, lambda: g * e * a.array ** (e - 1)))]


def _vjp_exp(rec, plan):
    g = plan._grad_buffers[rec.out]
    o = rec.out.array
    return [(rec.ins[0], _emit(plan, rec.ins[0], lambda: g * o))]


def _vjp_log(rec, plan):
    g = plan._grad_buffers[rec.out]
    a = rec.ins[0]
    return [(a, _emit(plan, a, lambda: g / a.array))]


def _vjp_sqrt(rec, plan):
    g = plan._grad_buffers[rec.out]
    o = rec.out.array
    return [(rec.ins[0], _emit(
        plan, rec.ins[0], lambda: g * 0.5 / np.maximum(o, 1e-12)))]


def _vjp_abs(rec, plan):
    g = plan._grad_buffers[rec.out]
    a = rec.ins[0]
    return [(a, _emit(plan, a, lambda: g * np.sign(a.array)))]


def _vjp_tanh(rec, plan):
    g = plan._grad_buffers[rec.out]
    o = rec.out.array
    return [(rec.ins[0], _emit(plan, rec.ins[0],
                               lambda: g * (1.0 - o ** 2)))]


def _vjp_sigmoid(rec, plan):
    g = plan._grad_buffers[rec.out]
    o = rec.out.array
    return [(rec.ins[0], _emit(plan, rec.ins[0],
                               lambda: g * o * (1.0 - o)))]


def _vjp_relu(rec, plan):
    g = plan._grad_buffers[rec.out]
    o = rec.out.array
    s = rec.ins[0]
    fast = (lambda t: np.multiply(g, o > 0, out=t)) \
        if s.shape == rec.out.shape else None
    return [(s, _emit(plan, s, lambda: g * (o > 0), fast_set=fast))]


def _vjp_leaky_relu(rec, plan):
    g = plan._grad_buffers[rec.out]
    o = rec.out.array
    slope = rec.meta["slope"]
    return [(rec.ins[0], _emit(plan, rec.ins[0],
                               lambda: np.where(o > 0, g, g * slope)))]


def _vjp_clip(rec, plan):
    g = plan._grad_buffers[rec.out]
    a = rec.ins[0]
    low, high = rec.meta["low"], rec.meta["high"]
    return [(a, _emit(plan, a,
                      lambda: g * ((a.array > low) & (a.array < high))))]


def _vjp_sum(rec, plan):
    g = plan._grad_buffers[rec.out]
    axis, keep = rec.meta["axis"], rec.meta["keepdims"]
    if axis is None or keep:
        compute = lambda: g
    else:
        compute = lambda: np.expand_dims(g, axis)
    return [(rec.ins[0], _emit(plan, rec.ins[0], compute))]


def _vjp_max(rec, plan):
    g = plan._grad_buffers[rec.out]
    o = rec.out.array
    a = rec.ins[0]
    axis, keep = rec.meta["axis"], rec.meta["keepdims"]

    def compute():
        gg, oo = g, o
        if axis is not None and not keep:
            gg = np.expand_dims(g, axis)
            oo = np.expand_dims(o, axis)
        mask = (a.array == oo)
        counts = mask.sum(axis=axis, keepdims=True) if axis is not None \
            else mask.sum()
        return mask * gg / counts
    return [(a, _emit(plan, a, compute))]


def _vjp_reshape(rec, plan):
    g = plan._grad_buffers[rec.out]
    shape = rec.ins[0].shape
    return [(rec.ins[0], _emit(plan, rec.ins[0],
                               lambda: g.reshape(shape)))]


def _vjp_transpose(rec, plan):
    g = plan._grad_buffers[rec.out]
    inverse = tuple(np.argsort(rec.meta["axes"]))
    return [(rec.ins[0], _emit(plan, rec.ins[0],
                               lambda: g.transpose(inverse)))]


def _vjp_pad2d(rec, plan):
    g = plan._grad_buffers[rec.out]
    p = rec.meta["padding"]
    nd = len(rec.out.shape)
    sl = tuple([slice(None)] * (nd - 2) + [slice(p, -p)] * 2)
    return [(rec.ins[0], _emit(plan, rec.ins[0], lambda: g[sl]))]


def _vjp_concat(rec, plan):
    g = plan._grad_buffers[rec.out]
    axis = rec.meta["axis"]
    out = []
    start = 0
    for s in rec.ins:
        slicer = [slice(None)] * len(rec.out.shape)
        slicer[axis] = slice(start, start + s.shape[axis])
        view = g[tuple(slicer)]
        out.append((s, _emit(plan, s, (lambda v: lambda: v)(view))))
        start += s.shape[axis]
    return out


def _vjp_stack(rec, plan):
    g = plan._grad_buffers[rec.out]
    axis = rec.meta["axis"]
    out = []
    for i, s in enumerate(rec.ins):
        slicer = [slice(None)] * len(rec.out.shape)
        slicer[axis] = i
        view = g[tuple(slicer)]
        out.append((s, _emit(plan, s, (lambda v: lambda: v)(view))))
    return out


def _vjp_matmul(rec, plan):
    g = plan._grad_buffers[rec.out]
    a, b = rec.ins[0], rec.ins[1]
    bT = np.swapaxes(b.array, -1, -2)
    aT = np.swapaxes(a.array, -1, -2)

    def _mm_shape(lhs, rhs):
        try:
            batch = np.broadcast_shapes(lhs[:-2], rhs[:-2])
        except ValueError:
            return None
        return batch + (lhs[-2], rhs[-1])

    fast_a = (lambda t: np.matmul(g, bT, out=t)) \
        if _mm_shape(rec.out.shape, bT.shape) == a.shape else None
    fast_b = (lambda t: np.matmul(aT, g, out=t)) \
        if _mm_shape(aT.shape, rec.out.shape) == b.shape else None
    return [
        (a, _emit(plan, a, lambda: np.matmul(g, bT), fast_set=fast_a)),
        (b, _emit(plan, b, lambda: np.matmul(aT, g), fast_set=fast_b)),
    ]


def _vjp_upsample(rec, plan):
    g = plan._grad_buffers[rec.out]
    scale = rec.meta["scale"]
    n, c, h, w = rec.ins[0].shape
    g6 = g.reshape(n, c, h, scale, w, scale)
    return [(rec.ins[0], _emit(plan, rec.ins[0],
                               lambda: g6.sum(axis=(3, 5))))]


def _vjp_softmax(rec, plan):
    g = plan._grad_buffers[rec.out]
    o = rec.out.array
    axis = rec.meta["axis"]

    def compute():
        inner = (g * o).sum(axis=axis, keepdims=True)
        return o * (g - inner)
    return [(rec.ins[0], _emit(plan, rec.ins[0], compute))]


def _vjp_log_softmax(rec, plan):
    g = plan._grad_buffers[rec.out]
    o = rec.out.array
    axis = rec.meta["axis"]

    def compute():
        return g - np.exp(o) * g.sum(axis=axis, keepdims=True)
    return [(rec.ins[0], _emit(plan, rec.ins[0], compute))]


def _vjp_class_score_sum(rec, plan):
    g = plan._grad_buffers[rec.out]            # 0-d, seeded with 1.0
    logits = rec.ins[0]
    labels = _css_labels(rec, plan)
    rows = np.arange(rec.ins[0].shape[0])

    def make_step(mode):
        target = plan._grad_buffers[logits]
        if mode == "set":
            def step():
                target.fill(0.0)
                target[rows, labels] = g[()]
            return step

        def step():
            target[rows, labels] += g[()]
        return step
    return [(logits, make_step)]


def _vjp_conv2d(rec, plan):
    from .functional import col2im
    g = plan._grad_buffers[rec.out]
    x, w = rec.ins[0], rec.ins[1]
    stride, padding = rec.meta["stride"], rec.meta["padding"]
    n, c, h, wd = x.shape
    c_out, _, k, _ = w.shape
    g2d = g.reshape(n, c_out, -1)
    w2d = rec.scratch["w2d"]
    cols = rec.scratch["cols"]
    out = []

    def make_x(mode):
        target = plan._grad_buffers[x]
        oh, ow = rec.out.shape[2], rec.out.shape[3]
        pad2 = k - 1 - padding
        exact = ((h + 2 * padding - k) % stride == 0
                 and (wd + 2 * padding - k) % stride == 0)
        if pad2 < 0 or not exact:
            # Geometry the dilated-correlation path can't cover (crop
            # padding, or floor-dropped input rows): matmul + scatter.
            gcols = plan._alloc(cols.shape, cols.dtype)
            w2dT = w2d.T

            def step():
                np.matmul(w2dT, g2d, out=gcols)
                gx = col2im(gcols, x.shape, k, stride, padding)
                if mode == "set":
                    np.copyto(target, gx)
                else:
                    np.add(target, gx, out=target)
            return step

        # Fast path: dL/dx = stride-1 full correlation of the
        # zero-dilated output gradient with spatially-flipped weights —
        # a contiguous window gather + one GEMM instead of col2im's
        # k*k strided scatter-adds (~1.8x on the 3x3/stride-1 convs
        # that dominate FullGrad's backward).  All buffers persist in
        # the arena; only the dilation interior is rewritten per replay,
        # so the zero gaps and border are baked once here.
        dil_h, dil_w = (oh - 1) * stride + 1, (ow - 1) * stride + 1
        gpad = plan._alloc((n, c_out, dil_h + 2 * pad2, dil_w + 2 * pad2),
                           g.dtype)
        gpad.fill(0.0)
        interior = gpad[:, :, pad2:pad2 + dil_h:stride,
                        pad2:pad2 + dil_w:stride]
        s0, s1, s2, s3 = gpad.strides
        win = np.lib.stride_tricks.as_strided(
            gpad, shape=(n, c_out, k, k, h, wd),
            strides=(s0, s1, s2, s3, s2, s3))
        gwin = plan._alloc((n, c_out * k * k, h * wd), g.dtype)
        gwin6 = gwin.reshape(n, c_out, k, k, h, wd)
        g4 = g.reshape(n, c_out, oh, ow)
        warr = w.array

        def flipped():
            # Rebuilt per replay (tiny): w.array may be updated in place
            # between replays, and the flip+transpose cannot be a view.
            return np.ascontiguousarray(
                warr[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)
            ).reshape(c, c_out * k * k)

        if mode == "set":
            gx_out = target.reshape(n, c, h * wd)

            def step():
                interior[...] = g4
                np.copyto(gwin6, win)
                np.matmul(flipped(), gwin, out=gx_out)
            return step

        tmp = plan._alloc((n, c, h * wd), g.dtype)

        def step():
            interior[...] = g4
            np.copyto(gwin6, win)
            np.matmul(flipped(), gwin, out=tmp)
            np.add(target, tmp.reshape(target.shape), out=target)
        return step
    out.append((x, make_x))

    def w_compute():
        gw = np.matmul(g2d, cols.transpose(0, 2, 1)).sum(axis=0)
        return gw.reshape(w.shape)
    out.append((w, _emit(plan, w, w_compute)))

    if len(rec.ins) == 3:
        bias = rec.ins[2]
        out.append((bias, _emit(plan, bias,
                                lambda: g.sum(axis=(0, 2, 3)))))
    return out


def _vjp_conv2d_transpose(rec, plan):
    from .functional import im2col
    g = plan._grad_buffers[rec.out]
    x, w = rec.ins[0], rec.ins[1]
    stride, padding = rec.meta["stride"], rec.meta["padding"]
    n, c_in, h, wd = x.shape
    k = w.shape[2]
    w2d = w.array.reshape(c_in, -1)
    out = []

    def x_compute():
        gcols = im2col(g, k, stride, padding)
        return np.matmul(w2d, gcols).reshape(x.shape)
    out.append((x, _emit(plan, x, x_compute)))

    def w_compute():
        gcols = im2col(g, k, stride, padding)
        x2d = x.array.reshape(n, c_in, h * wd)
        gw = np.matmul(x2d, gcols.transpose(0, 2, 1)).sum(axis=0)
        return gw.reshape(w.shape)
    out.append((w, _emit(plan, w, w_compute)))

    if len(rec.ins) == 3:
        bias = rec.ins[2]
        out.append((bias, _emit(plan, bias,
                                lambda: g.sum(axis=(0, 2, 3)))))
    return out


def _vjp_avg_pool2d(rec, plan):
    from .functional import col2im
    g = plan._grad_buffers[rec.out]
    kernel, stride = rec.meta["kernel"], rec.meta["stride"]
    x = rec.ins[0]
    n, c, h, w = x.shape

    def compute():
        gr = g.reshape(n * c, 1, -1)
        gcols = np.repeat(gr, kernel * kernel, axis=1) / (kernel * kernel)
        return col2im(gcols, (n * c, 1, h, w), kernel, stride,
                      0).reshape(x.shape)
    return [(x, _emit(plan, x, compute))]


def _vjp_max_pool2d(rec, plan):
    from .functional import col2im
    g = plan._grad_buffers[rec.out]
    kernel, stride = rec.meta["kernel"], rec.meta["stride"]
    x = rec.ins[0]
    n, c, h, w = x.shape

    def compute():
        cols = rec.scratch["cols"]
        argmax = rec.scratch["argmax"]
        gr = g.reshape(n * c, -1)
        gcols = np.zeros_like(cols)
        np.put_along_axis(gcols, argmax[:, None, :], gr[:, None, :],
                          axis=1)
        return col2im(gcols, (n * c, 1, h, w), kernel, stride,
                      0).reshape(x.shape)
    return [(x, _emit(plan, x, compute))]


_VJP_BUILDERS: Dict[str, Callable] = {
    "add": _vjp_add,
    "sub": _vjp_sub,
    "neg": _vjp_neg,
    "clone": _vjp_clone,
    "mul": _vjp_mul,
    "div": _vjp_div,
    "pow": _vjp_pow,
    "exp": _vjp_exp,
    "log": _vjp_log,
    "sqrt": _vjp_sqrt,
    "abs": _vjp_abs,
    "tanh": _vjp_tanh,
    "sigmoid": _vjp_sigmoid,
    "relu": _vjp_relu,
    "leaky_relu": _vjp_leaky_relu,
    "clip": _vjp_clip,
    "sum": _vjp_sum,
    "max": _vjp_max,
    "reshape": _vjp_reshape,
    "transpose": _vjp_transpose,
    "pad2d": _vjp_pad2d,
    "concat": _vjp_concat,
    "stack": _vjp_stack,
    "matmul": _vjp_matmul,
    "upsample2d": _vjp_upsample,
    "softmax": _vjp_softmax,
    "log_softmax": _vjp_log_softmax,
    "class_score_sum": _vjp_class_score_sum,
    "conv2d": _vjp_conv2d,
    "conv2d_transpose": _vjp_conv2d_transpose,
    "avg_pool2d": _vjp_avg_pool2d,
    "max_pool2d": _vjp_max_pool2d,
    # "getitem" has no VJP: its tape backward is a scatter-add whose
    # compiled form would not beat the tape; gradient cores avoid it.
}


#: Which slots' forward *values* each VJP reads at backward time.  The
#: fusion pass must not collapse these onto shared buffers.
_VJP_VALUE_REQS: Dict[str, Callable] = {
    "add": lambda rec: (),
    "sub": lambda rec: (),
    "neg": lambda rec: (),
    "clone": lambda rec: (),
    "mul": lambda rec: rec.ins,
    "div": lambda rec: rec.ins,
    "pow": lambda rec: (rec.ins[0],),
    "exp": lambda rec: (rec.out,),
    "log": lambda rec: (rec.ins[0],),
    "sqrt": lambda rec: (rec.out,),
    "abs": lambda rec: (rec.ins[0],),
    "tanh": lambda rec: (rec.out,),
    "sigmoid": lambda rec: (rec.out,),
    "relu": lambda rec: (rec.out,),
    "leaky_relu": lambda rec: (rec.out,),
    "clip": lambda rec: (rec.ins[0],),
    "sum": lambda rec: (),
    "max": lambda rec: (rec.ins[0], rec.out),
    "reshape": lambda rec: (),
    "transpose": lambda rec: (),
    "pad2d": lambda rec: (),
    "concat": lambda rec: (),
    "stack": lambda rec: (),
    "matmul": lambda rec: rec.ins,
    "upsample2d": lambda rec: (),
    "softmax": lambda rec: (rec.out,),
    "log_softmax": lambda rec: (rec.out,),
    "class_score_sum": lambda rec: (),
    "conv2d": lambda rec: rec.ins[1:],
    "conv2d_transpose": lambda rec: rec.ins,
    "avg_pool2d": lambda rec: (),
    "max_pool2d": lambda rec: (rec.ins[0],),
}
