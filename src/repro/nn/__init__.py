"""``repro.nn`` — a from-scratch numpy deep-learning substrate.

The target paper trains its networks in PyTorch; this environment has no
deep-learning framework, so the reproduction ships its own: a tape-based
autodiff :class:`~repro.nn.tensor.Tensor`, convolutional layers, GAN-ready
normalisation, Adam, and checkpointing.
"""

from . import functional
from .blocks import MLP, DownBlock, ResidualBlock, UpBlock
from .layers import (AvgPool2d, BatchNorm2d, Conv2d, ConvTranspose2d, Dropout,
                     Flatten, GlobalAvgPool2d, InstanceNorm2d, LayerNorm,
                     LeakyReLU, Linear, MaxPool2d, Module, Parameter, ReLU,
                     Sequential, Sigmoid, Tanh, Upsample)
from .losses import (accuracy, binary_real_fake_loss, cross_entropy, l1_loss,
                     mse_loss)
from .optim import SGD, Adam, Optimizer
from .serialization import load_state, save_state
from .tensor import Tensor, as_tensor, ones, randn, zeros

__all__ = [
    "Tensor", "as_tensor", "zeros", "ones", "randn",
    "Module", "Parameter", "Sequential", "Linear", "Conv2d",
    "ConvTranspose2d", "InstanceNorm2d", "BatchNorm2d", "LayerNorm",
    "ReLU", "LeakyReLU", "Tanh", "Sigmoid", "Flatten", "Dropout",
    "AvgPool2d", "MaxPool2d", "GlobalAvgPool2d", "Upsample",
    "ResidualBlock", "DownBlock", "UpBlock", "MLP",
    "SGD", "Adam", "Optimizer",
    "l1_loss", "mse_loss", "cross_entropy", "binary_real_fake_loss",
    "accuracy", "save_state", "load_state", "functional",
]
