"""``repro.nn`` — a from-scratch numpy deep-learning substrate.

The target paper trains its networks in PyTorch; this environment has no
deep-learning framework, so the reproduction ships its own: a tape-based
autodiff :class:`~repro.nn.tensor.Tensor`, convolutional layers, GAN-ready
normalisation, Adam, and checkpointing.

Performance contract
--------------------
* **Inference mode.**  Gradient-free code wraps its forward passes in
  ``with nn.no_grad():`` (or decorates the function with ``@nn.no_grad()``).
  Inside that scope :meth:`Tensor._make` skips parent tracking and
  backward-closure retention entirely: forward values are bit-identical
  to tracked execution, no tape memory is held, and calling
  ``backward()`` on a no-grad result raises a ``RuntimeError``.
  ``set_grad_enabled``/``is_grad_enabled`` expose the raw switch;
  ``enable_grad`` re-enables recording inside an outer ``no_grad``.
  ``Module.eval()`` only toggles layer behaviour (dropout, batch-norm
  statistics); it does not disable the tape — combine it with
  ``no_grad`` for gradient-free evaluation.
* **Dtype regime.**  The engine runs float32 by default: scalars/lists,
  parameters, initialisers, and datasets all materialise in
  ``get_default_dtype()``.  Tensors built from existing float ndarrays
  keep their dtype, so gradient-check tests pass float64 arrays (or call
  ``set_default_dtype(np.float64)`` around model construction) to get
  full-precision tapes.  Ops never silently upcast float32 activations.
"""

from . import functional
from . import plan
from .functional import class_score_sum
from .blocks import MLP, DownBlock, ResidualBlock, UpBlock
from .layers import (AvgPool2d, BatchNorm2d, Conv2d, ConvTranspose2d, Dropout,
                     Flatten, GlobalAvgPool2d, InstanceNorm2d, LayerNorm,
                     LeakyReLU, Linear, MaxPool2d, Module, Parameter, ReLU,
                     Sequential, Sigmoid, Tanh, Upsample, frozen,
                     frozen_fingerprint)
from .losses import (accuracy, binary_real_fake_loss, cross_entropy, l1_loss,
                     mse_loss)
from .optim import SGD, Adam, Optimizer
from .plan import ExecutionPlan, PlanMismatch, PlanUnsupported, trace
from .serialization import load_state, save_state
from .tensor import (Tensor, as_tensor, enable_grad, get_default_dtype,
                     is_grad_enabled, no_grad, ones, randn,
                     register_dtype_listener, set_default_dtype,
                     set_grad_enabled, unregister_dtype_listener, zeros)

__all__ = [
    "Tensor", "as_tensor", "zeros", "ones", "randn",
    "no_grad", "enable_grad", "set_grad_enabled", "is_grad_enabled", "frozen",
    "frozen_fingerprint",
    "set_default_dtype", "get_default_dtype",
    "register_dtype_listener", "unregister_dtype_listener",
    "Module", "Parameter", "Sequential", "Linear", "Conv2d",
    "ConvTranspose2d", "InstanceNorm2d", "BatchNorm2d", "LayerNorm",
    "ReLU", "LeakyReLU", "Tanh", "Sigmoid", "Flatten", "Dropout",
    "AvgPool2d", "MaxPool2d", "GlobalAvgPool2d", "Upsample",
    "ResidualBlock", "DownBlock", "UpBlock", "MLP",
    "SGD", "Adam", "Optimizer",
    "l1_loss", "mse_loss", "cross_entropy", "binary_real_fake_loss",
    "accuracy", "class_score_sum", "save_state", "load_state", "functional",
    "plan", "trace", "ExecutionPlan", "PlanUnsupported", "PlanMismatch",
]
