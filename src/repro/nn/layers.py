"""Neural-network layers built on the :mod:`repro.nn.tensor` autodiff core.

The :class:`Module` base class mirrors the familiar torch.nn API surface
(``parameters()``, ``state_dict()``, ``train()``/``eval()``) so that the
CAE networks in :mod:`repro.core.networks` read like the paper's PyTorch
reference implementation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from . import functional as F
from . import init
from . import tensor as tensor_mod
from .tensor import Tensor


class frozen:
    """Context manager: parameters of ``modules`` stop requiring grad.

    Explainers that backpropagate only toward activations/inputs (the
    whole white-box family) wrap their backward passes in this so the
    tape skips every weight-gradient GEMM — a large share of conv
    backward cost — while per-sample input/feature gradients are
    untouched.

    Freezing is **reference-counted** per parameter (under a lock):
    overlapping ``frozen`` scopes — nested on one thread, or concurrent
    explainer batches sharing one classifier on executor worker threads
    — keep the flag down until the last scope exits, and the original
    flag is restored exactly once.  ``requires_grad`` flags on *shared*
    models would otherwise race: one scope's exit could re-enable weight
    gradients mid-backward for another, or leave them permanently off.
    """

    _lock = threading.Lock()
    #: id(param) -> [active scope count, original flag, param ref]
    _active: Dict[int, list] = {}
    #: Callbacks fired (no args) after any 0->1 or 1->0 refcount
    #: transition — i.e. whenever the *set* of frozen parameters changed.
    #: The serving layer's PlanCache listens here: compiled plans record
    #: the frozen set in their cache key, so a transition must dirty the
    #: ambient fingerprint.  Fired outside the lock (listeners may take
    #: their own locks).
    _listeners: List = []

    def __init__(self, *modules: "Module"):
        self.params = []
        seen: set = set()
        for module in modules:
            for p in module.parameters():
                if id(p) not in seen:
                    seen.add(id(p))
                    self.params.append(p)

    def __enter__(self) -> "frozen":
        changed = False
        with frozen._lock:
            for p in self.params:
                entry = frozen._active.get(id(p))
                if entry is None:
                    # Keep a reference so id() stays valid for the entry.
                    frozen._active[id(p)] = [1, p.requires_grad, p]
                    p.requires_grad = False
                    changed = True
                else:
                    entry[0] += 1
        if changed:
            frozen._notify()
        return self

    def __exit__(self, *exc) -> bool:
        changed = False
        with frozen._lock:
            for p in self.params:
                entry = frozen._active[id(p)]
                entry[0] -= 1
                if entry[0] == 0:
                    p.requires_grad = entry[1]
                    del frozen._active[id(p)]
                    changed = True
        if changed:
            frozen._notify()
        return False

    @staticmethod
    def _notify() -> None:
        for fn in list(frozen._listeners):
            fn()

    @staticmethod
    def register_listener(fn) -> None:
        """Register ``fn()`` to fire after frozen-set transitions."""
        frozen._listeners.append(fn)

    @staticmethod
    def unregister_listener(fn) -> None:
        try:
            frozen._listeners.remove(fn)
        except ValueError:
            pass


def frozen_fingerprint() -> frozenset:
    """Identity of the currently-frozen parameter set.

    Execution plans compiled while a parameter set is frozen are only
    replayable under the same set (the trace baked in which gradients
    exist), so the serving-layer plan cache stamps entries with this
    fingerprint and re-validates it on every lookup.
    """
    with frozen._lock:
        return frozenset(frozen._active.keys())


class Parameter(Tensor):
    """A trainable tensor; discovered automatically by :class:`Module`.

    Parameters are always stored in the engine's default dtype so the
    whole forward pass stays in one precision regime (no silent float64
    upcasts from stray initialiser arrays).
    """

    def __init__(self, data):
        if isinstance(data, Tensor):
            data = data.data
        data = np.asarray(data).astype(tensor_mod.get_default_dtype(),
                                       copy=False)
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered for ``parameters()`` and
    ``state_dict()`` traversal in attribute definition order.
    """

    def __init__(self):
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._params: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_params", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track a non-trainable array in the state dict (e.g. BN stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        out: List[Parameter] = []
        seen: set = set()
        for p in self._params.values():
            if id(p) not in seen:
                seen.add(id(p))
                out.append(p)
        for m in self._modules.values():
            for p in m.parameters():
                if id(p) not in seen:
                    seen.add(id(p))
                    out.append(p)
        return out

    def named_parameters(self, prefix: str = "") -> Iterator[tuple]:
        for name, p in self._params.items():
            yield prefix + name, p
        for mod_name, m in self._modules.items():
            yield from m.named_parameters(prefix + mod_name + ".")

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, p in self._params.items():
            state[prefix + name] = p.data
        for name, buf in self._buffers.items():
            state[prefix + name] = buf
        for mod_name, m in self._modules.items():
            state.update(m.state_dict(prefix + mod_name + "."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray],
                        prefix: str = "") -> None:
        for name, p in self._params.items():
            key = prefix + name
            if key not in state:
                raise KeyError(f"missing parameter {key!r} in state dict")
            if state[key].shape != p.data.shape:
                raise ValueError(f"shape mismatch for {key!r}: "
                                 f"{state[key].shape} vs {p.data.shape}")
            p.data[...] = state[key]
        for name in list(self._buffers):
            key = prefix + name
            if key in state:
                self._buffers[name][...] = state[key]
                object.__setattr__(self, name, self._buffers[name])
        for mod_name, m in self._modules.items():
            m.load_state_dict(state, prefix + mod_name + ".")

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Run sub-modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)
        for i, m in enumerate(modules):
            self._modules[f"layer{i}"] = m

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]


# ----------------------------------------------------------------------
# linear & convolutional layers
# ----------------------------------------------------------------------
class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None, bias: bool = True):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_normal(
            (out_features, in_features), rng, fan_in=in_features))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.transpose())
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution layer (square kernels, NCHW)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0,
                 rng: Optional[np.random.Generator] = None, bias: bool = True):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(init.kaiming_normal(
            (out_channels, in_channels, kernel_size, kernel_size), rng,
            fan_in=fan_in))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias,
                        stride=self.stride, padding=self.padding)


class ConvTranspose2d(Module):
    """Transposed 2-D convolution layer (square kernels, NCHW)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 2, padding: int = 0,
                 rng: Optional[np.random.Generator] = None, bias: bool = True):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(init.kaiming_normal(
            (in_channels, out_channels, kernel_size, kernel_size), rng,
            fan_in=fan_in))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d_transpose(x, self.weight, self.bias,
                                  stride=self.stride, padding=self.padding)


# ----------------------------------------------------------------------
# normalisation layers
# ----------------------------------------------------------------------
class InstanceNorm2d(Module):
    """Instance normalisation over each (sample, channel) spatial map.

    The standard choice for image-to-image GANs (and what MUNIT-style
    encoders/decoders, the architecture family CAE builds on, use).
    """

    def __init__(self, num_features: int, eps: float = 1e-5,
                 affine: bool = True):
        super().__init__()
        self.eps = eps
        self.affine = affine
        if affine:
            self.weight = Parameter(init.ones(num_features))
            self.bias = Parameter(init.zeros(num_features))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=(2, 3), keepdims=True)
        var = x.var(axis=(2, 3), keepdims=True, eps=self.eps)
        out = (x - mu) / var.sqrt()
        if self.affine:
            c = x.shape[1]
            out = out * self.weight.reshape(1, c, 1, 1) \
                + self.bias.reshape(1, c, 1, 1)
        return out


class BatchNorm2d(Module):
    """Batch normalisation with running statistics for eval mode."""

    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1):
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones(num_features))
        self.bias = Parameter(init.zeros(num_features))
        self.register_buffer("running_mean", init.zeros(num_features))
        self.register_buffer("running_var", init.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        c = x.shape[1]
        if self.training:
            mu = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True, eps=0.0)
            m = self.momentum
            self.running_mean *= (1 - m)
            self.running_mean += m * mu.data.reshape(-1)
            self.running_var *= (1 - m)
            self.running_var += m * var.data.reshape(-1)
            var = var + self.eps
        else:
            mu = Tensor(self.running_mean.reshape(1, c, 1, 1))
            var = Tensor((self.running_var + self.eps).reshape(1, c, 1, 1))
        out = (x - mu) / var.sqrt()
        return out * self.weight.reshape(1, c, 1, 1) \
            + self.bias.reshape(1, c, 1, 1)


class LayerNorm(Module):
    """Layer normalisation over the last dimension (used by the TS-CAM
    analog's attention blocks)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(init.ones(dim))
        self.bias = Parameter(init.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True, eps=self.eps)
        return (x - mu) / var.sqrt() * self.weight + self.bias


# ----------------------------------------------------------------------
# activations & misc
# ----------------------------------------------------------------------
class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.2):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Flatten(Module):
    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)


class Dropout(Module):
    def __init__(self, p: float = 0.5,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class AvgPool2d(Module):
    def __init__(self, kernel: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel, self.stride)


class MaxPool2d(Module):
    def __init__(self, kernel: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Upsample(Module):
    def __init__(self, scale: int = 2):
        super().__init__()
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample_nearest2d(x, self.scale)
