"""Loss functions used across the reproduction.

Includes the generic reconstruction / classification losses that the CAE
loss equations (1)-(10) in :mod:`repro.core.losses` are assembled from.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor


def l1_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error  ``E[|pred - target|]`` (paper eqs 1-4)."""
    return (pred - target).abs().mean()


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = pred - target
    return (diff * diff).mean()


def cross_entropy(logits: Tensor, labels: np.ndarray,
                  reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy with integer labels.

    Matches the paper's log-softmax formulation in eqs (5), (6), (8), (9).
    ``reduction="sum"`` keeps per-sample loss terms at unit scale, which
    batched explainers rely on: the gradient of each sample's term is
    then identical to the gradient of a batch-of-one mean loss.
    """
    labels = np.asarray(labels, dtype=np.int64)
    logp = F.log_softmax(logits, axis=-1)
    n = logits.shape[0]
    picked = logp[np.arange(n), labels]
    if reduction == "sum":
        return -picked.sum()
    if reduction != "mean":
        raise ValueError(f"unknown reduction {reduction!r}")
    return -picked.mean()


def binary_real_fake_loss(logits: Tensor, is_real: bool) -> Tensor:
    """Adversarial loss on a 2-logit real/fake head.

    The paper's discriminator Dr outputs two logits where index 1 means
    "real" and index 0 means "fake" (eqs 5 and 8); this is cross-entropy
    against the appropriate constant label.
    """
    n = logits.shape[0]
    labels = np.full(n, 1 if is_real else 0, dtype=np.int64)
    return cross_entropy(logits, labels)


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of argmax predictions matching integer labels."""
    pred = np.asarray(logits).argmax(axis=-1)
    return float((pred == np.asarray(labels)).mean())
