"""Reusable composite blocks (residual / down / up) shared by the
classifier, the CAE encoder-decoder, and the baseline generative models."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .layers import (Conv2d, InstanceNorm2d, LeakyReLU, Linear, Module, ReLU,
                     Sequential, Upsample)
from .tensor import Tensor


class ResidualBlock(Module):
    """Two 3x3 convs with instance norm and a skip connection."""

    def __init__(self, channels: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv1 = Conv2d(channels, channels, 3, padding=1, rng=rng)
        self.norm1 = InstanceNorm2d(channels)
        self.conv2 = Conv2d(channels, channels, 3, padding=1, rng=rng)
        self.norm2 = InstanceNorm2d(channels)

    def forward(self, x: Tensor) -> Tensor:
        h = self.norm1(self.conv1(x)).relu()
        h = self.norm2(self.conv2(h))
        return (x + h).relu()


class DownBlock(Module):
    """Stride-2 conv + instance norm + LeakyReLU (halves spatial size)."""

    def __init__(self, in_channels: int, out_channels: int,
                 rng: Optional[np.random.Generator] = None,
                 norm: bool = True):
        super().__init__()
        self.conv = Conv2d(in_channels, out_channels, 4, stride=2, padding=1,
                           rng=rng)
        self.norm = InstanceNorm2d(out_channels) if norm else None
        self.act = LeakyReLU(0.2)

    def forward(self, x: Tensor) -> Tensor:
        h = self.conv(x)
        if self.norm is not None:
            h = self.norm(h)
        return self.act(h)


class UpBlock(Module):
    """Nearest-neighbour upsample + 3x3 conv + instance norm + ReLU.

    Upsample-then-conv avoids the checkerboard artefacts of transposed
    convolution, which matters for the real-looking synthetic samples the
    discriminator must be fooled by.
    """

    def __init__(self, in_channels: int, out_channels: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.up = Upsample(2)
        self.conv = Conv2d(in_channels, out_channels, 3, padding=1, rng=rng)
        self.norm = InstanceNorm2d(out_channels)
        self.act = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.norm(self.conv(self.up(x))))


class MLP(Module):
    """Multi-layer perceptron with ReLU hidden activations."""

    def __init__(self, in_dim: int, hidden_dims, out_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        dims = [in_dim] + list(hidden_dims) + [out_dim]
        layers = []
        for i, (a, b) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(a, b, rng=rng))
            if i < len(dims) - 2:
                layers.append(ReLU())
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
