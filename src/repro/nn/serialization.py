"""Model checkpointing: save/load module state dicts as ``.npz`` files."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .layers import Module


def save_state(module: Module, path: str) -> None:
    """Serialise a module's state dict to ``path`` (npz)."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(module: Module, path: str) -> None:
    """Load a state dict saved by :func:`save_state` into ``module``."""
    if not path.endswith(".npz") and not os.path.exists(path):
        path = path + ".npz"
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {k: archive[k] for k in archive.files}
    module.load_state_dict(state)
