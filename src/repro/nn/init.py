"""Weight initialisers.

All initialisers take an explicit ``numpy.random.Generator`` so that model
construction is fully deterministic under a fixed seed, and return arrays
in the engine's current default dtype (see
:func:`repro.nn.tensor.set_default_dtype`).
"""

from __future__ import annotations

import numpy as np

from .tensor import get_default_dtype


def kaiming_normal(shape, rng: np.random.Generator, fan_in: int | None = None,
                   gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He-normal initialisation for ReLU-family networks."""
    if fan_in is None:
        fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    std = gain / np.sqrt(max(fan_in, 1))
    return (rng.standard_normal(shape) * std).astype(get_default_dtype(),
                                                     copy=False)


def xavier_uniform(shape, rng: np.random.Generator,
                   fan_in: int | None = None,
                   fan_out: int | None = None) -> np.ndarray:
    """Glorot-uniform initialisation for tanh/sigmoid networks."""
    if fan_in is None:
        fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    if fan_out is None:
        fan_out = shape[0]
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape).astype(get_default_dtype(),
                                                         copy=False)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=get_default_dtype())
