"""Structured neural-network primitives with hand-written backward passes.

Convolution is implemented with im2col/col2im so that the inner loop is a
single large matrix multiply — the standard approach for CPU conv and the
only way a pure-numpy GAN training loop stays tractable.  Every conv
forward/backward contraction is a broadcast-batched BLAS ``matmul`` over
the ``(N, C * k * k, L)`` patch block (L = output locations): the weight
matrix multiplies all samples' patch matrices in one call, with no
einsum and no layout-hostile copies.  (A fully batch-folded ``(N * L,
C * k * k)`` single-GEMM layout was benchmarked and loses ~2x to the
batched form here, because its patch gather strides against the image
memory order.)

All image tensors use NCHW layout.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor


# ----------------------------------------------------------------------
# im2col / col2im
# ----------------------------------------------------------------------
def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x: (N, C, H, W) input images.

    Returns
    -------
    cols: (N, C * kernel * kernel, out_h * out_w)
    """
    n, c, h, w = x.shape
    out_h = _conv_output_size(h, kernel, stride, padding)
    out_w = _conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    # Strided sliding-window view: (N, C, out_h, out_w, k, k)
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    # -> (N, C, k, k, out_h, out_w) -> (N, C*k*k, out_h*out_w).  The
    # reshape of the strided view already materialises a C-contiguous
    # array, so no extra ascontiguousarray copy is needed.
    return windows.transpose(0, 1, 4, 5, 2, 3).reshape(
        n, c * kernel * kernel, out_h * out_w)


def col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int],
           kernel: int, stride: int, padding: int) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an image.

    Two regimes:

    * ``stride >= kernel`` — windows are disjoint, so the whole scatter is
      a single assignment into a writable strided 6-D view of the output
      (stride-trick tiling; no adds, no python loop).  This covers
      pooling backward (k2/s2) and patch-embedding convs (k4/s4).
    * overlapping windows — a k x k loop of large vectorized strided
      adds.  Every "single-call" alternative was benchmarked slower on
      numpy 2.x for our shapes: ``np.add.at`` ~10x (buffered fancy
      indexing), flat ``np.bincount`` ~8x, separable two-pass band
      tiling ~2.5x, and a diagonal-strided gather-view reduction ~1.2x.
      The loop issues only kernel**2 memmove-speed adds and wins.
    """
    n, c, h, w = x_shape
    out_h = _conv_output_size(h, kernel, stride, padding)
    out_w = _conv_output_size(w, kernel, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, kernel, kernel, out_h, out_w)
    if stride >= kernel:
        # Disjoint windows: one strided-view write, no accumulation.
        s0, s1, s2, s3 = padded.strides
        view = np.lib.stride_tricks.as_strided(
            padded,
            shape=(n, c, out_h, out_w, kernel, kernel),
            strides=(s0, s1, s2 * stride, s3 * stride, s2, s3))
        view[:] = cols6.transpose(0, 1, 4, 5, 2, 3)
    else:
        for ki in range(kernel):
            h_end = ki + stride * out_h
            for kj in range(kernel):
                w_end = kj + stride * out_w
                padded[:, :, ki:h_end:stride, kj:w_end:stride] += \
                    cols6[:, :, ki, kj]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


# ----------------------------------------------------------------------
# convolution
# ----------------------------------------------------------------------
def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution (cross-correlation), NCHW.

    weight: (out_channels, in_channels, k, k); bias: (out_channels,).
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input has {c_in} channels, weight expects {c_in_w}")
    if kh != kw:
        raise ValueError("only square kernels are supported")
    kernel = kh
    out_h = _conv_output_size(h, kernel, stride, padding)
    out_w = _conv_output_size(w, kernel, stride, padding)

    cols = im2col(x.data, kernel, stride, padding)          # (N, C*k*k, L)
    w2d = weight.data.reshape(c_out, -1)                    # (C_out, C*k*k)
    out = np.matmul(w2d, cols).reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad2d = grad.reshape(n, c_out, -1)                 # (N, C_out, L)
        if weight.requires_grad:
            gw = np.matmul(grad2d, cols.transpose(0, 2, 1)).sum(axis=0)
            weight._accumulate(gw.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            gcols = np.matmul(w2d.T, grad2d)                # (N, C*k*k, L)
            x._accumulate(col2im(gcols, x.shape, kernel, stride, padding))

    return Tensor._make(out, parents, backward,
                        op="conv2d",
                        meta={"stride": stride, "padding": padding})


def conv2d_transpose(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
                     stride: int = 2, padding: int = 0) -> Tensor:
    """Transposed convolution (fractionally-strided), NCHW.

    weight: (in_channels, out_channels, k, k).  Output spatial size is
    ``(H - 1) * stride - 2 * padding + k``.
    """
    n, c_in, h, w = x.shape
    c_in_w, c_out, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input has {c_in} channels, weight expects {c_in_w}")
    kernel = kh
    out_h = (h - 1) * stride - 2 * padding + kernel
    out_w = (w - 1) * stride - 2 * padding + kernel

    # Forward of transposed conv == backward-input of a normal conv whose
    # input is the output here.  Compute via col2im on W^T @ x, batched
    # over samples in one BLAS matmul.
    w2d = weight.data.reshape(c_in, c_out * kernel * kernel)
    x2d = x.data.reshape(n, c_in, h * w)
    cols = np.matmul(w2d.T, x2d)                            # (N, C_out*k*k, L)
    out = col2im(cols, (n, c_out, out_h, out_w), kernel, stride, padding)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        gcols = im2col(grad, kernel, stride, padding)       # (N, C_out*k*k, H*W)
        if x.requires_grad:
            gx = np.matmul(w2d, gcols)                      # (N, C_in, H*W)
            x._accumulate(gx.reshape(x.shape))
        if weight.requires_grad:
            gw = np.matmul(x2d, gcols.transpose(0, 2, 1)).sum(axis=0)
            weight._accumulate(gw.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))

    return Tensor._make(out, parents, backward,
                        op="conv2d_transpose",
                        meta={"stride": stride, "padding": padding})


# ----------------------------------------------------------------------
# pooling / resampling
# ----------------------------------------------------------------------
def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling with non-overlapping or strided square windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    cols = im2col(x.data.reshape(n * c, 1, h, w), kernel, stride, 0)
    out = cols.mean(axis=1).reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        g = grad.reshape(n * c, 1, -1)
        gcols = np.repeat(g, kernel * kernel, axis=1) / (kernel * kernel)
        gx = col2im(gcols, (n * c, 1, h, w), kernel, stride, 0)
        x._accumulate(gx.reshape(x.shape))

    return Tensor._make(out, (x,), backward,
                        op="avg_pool2d",
                        meta={"kernel": kernel, "stride": stride})


def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling with square windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    cols = im2col(x.data.reshape(n * c, 1, h, w), kernel, stride, 0)
    argmax = cols.argmax(axis=1)                            # (N*C, L)
    out = np.take_along_axis(cols, argmax[:, None, :], axis=1)[:, 0, :]
    out = out.reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        g = grad.reshape(n * c, -1)
        gcols = np.zeros_like(cols)
        np.put_along_axis(gcols, argmax[:, None, :], g[:, None, :], axis=1)
        gx = col2im(gcols, (n * c, 1, h, w), kernel, stride, 0)
        x._accumulate(gx.reshape(x.shape))

    return Tensor._make(out, (x,), backward,
                        op="max_pool2d",
                        meta={"kernel": kernel, "stride": stride})


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Global average pooling to (N, C)."""
    return x.mean(axis=(2, 3))


def upsample_nearest2d(x: Tensor, scale: int = 2) -> Tensor:
    """Nearest-neighbour upsampling of the spatial axes by ``scale``."""
    out = x.data.repeat(scale, axis=2).repeat(scale, axis=3)
    n, c, h, w = x.shape

    def backward(grad: np.ndarray) -> None:
        g = grad.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5))
        x._accumulate(g)

    return Tensor._make(out, (x,), backward,
                        op="upsample2d", meta={"scale": scale})


# ----------------------------------------------------------------------
# batched-backward helpers
# ----------------------------------------------------------------------
def class_score_sum(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Sum of each sample's selected class logit: ``sum_i logits[i, y_i]``.

    The workhorse of batched gradient explainers: per-sample loss terms
    are independent across the batch axis, so backpropagating this single
    scalar produces every sample's own gradient in one tape sweep —
    ``d(sum)/d(logits[i]) = one_hot(y_i)`` has no cross-sample terms.
    Fused node: the backward scatters into a zeroed (N, C) buffer
    directly instead of going through ``__getitem__``'s generic
    ``np.add.at`` path.
    """
    labels = np.asarray(labels, dtype=np.int64)
    n = logits.shape[0]
    rows = np.arange(n)
    out = logits.data[rows, labels].sum()

    def backward(grad: np.ndarray) -> None:
        g = np.zeros_like(logits.data)
        g[rows, labels] = grad
        logits._accumulate(g)

    return Tensor._make(np.asarray(out), (logits,), backward,
                        op="class_score_sum", meta={"labels": labels})


# ----------------------------------------------------------------------
# normalisation / misc composites
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``.

    Fused single tape node: the stabilising max is subtracted as a
    detached ndarray, so no dead graph nodes are recorded per call.
    """
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        inner = (grad * out).sum(axis=axis, keepdims=True)
        x._accumulate(out * (grad - inner))
    return Tensor._make(out, (x,), backward,
                        op="softmax", meta={"axis": axis})


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis`` (fused, see softmax)."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - logsumexp

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - np.exp(out)
                      * grad.sum(axis=axis, keepdims=True))
    return Tensor._make(out, (x,), backward,
                        op="log_softmax", meta={"axis": axis})


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0:
        return x
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)
