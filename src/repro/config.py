"""Global configuration for the CAE reproduction.

The paper's hyperparameters (Section IV.A) are kept verbatim where scale
permits (loss weights, 8-d class-associated code, Adam settings); spatial
scale is reduced from 256x256 to 32x32 so the full pipeline trains on CPU
with the numpy substrate.  ``REPRO_IMAGE_SIZE`` / ``REPRO_SCALE``
environment variables override the defaults for larger runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Tuple


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


@dataclass
class LossWeights:
    """Loss weights of eq (7) and eq (10), named as in the paper."""

    lambda1: float = 10.0   # image reconstruction (eq 1)
    lambda2: float = 1.0    # class-code reconstruction (eq 2)
    lambda3: float = 1.0    # individual-code reconstruction (eq 3)
    lambda4: float = 10.0   # cyclic reconstruction (eq 4)
    lambda5: float = 1.0    # adversarial, generator side (eq 5)
    lambda6: float = 1.0    # classification, generator side (eq 6)
    phi1: float = 1.0       # adversarial, discriminator side (eq 8)
    phi2: float = 2.0       # classification, discriminator side (eq 9)


@dataclass
class ReproConfig:
    """Bundle of every scale-sensitive knob, with paper values noted."""

    image_size: int = field(
        default_factory=lambda: _env_int("REPRO_IMAGE_SIZE", 32))
    channels: int = 1                       # medical sets are grayscale
    cs_dim: int = 8                         # paper: 8-d class-associated code
    base_channels: int = field(
        default_factory=lambda: _env_int("REPRO_BASE_CHANNELS", 16))
    # paper: IS code is 256 x 64 x 64 (1/4 spatial); ours is base*2 x S/4 x S/4
    lr: float = 1e-4                        # paper: Adam lr 1e-4
    weight_decay: float = 1e-4              # paper: weight decay 1e-4
    loss_weights: LossWeights = field(default_factory=LossWeights)
    seed: int = 0
    scale: float = field(
        default_factory=lambda: _env_float("REPRO_SCALE", 1.0))

    @property
    def is_channels(self) -> int:
        return self.base_channels * 2

    @property
    def is_spatial(self) -> int:
        return self.image_size // 4

    @property
    def is_shape(self) -> Tuple[int, int, int]:
        """Shape of the individual-style code (C, H, W)."""
        return (self.is_channels, self.is_spatial, self.is_spatial)


#: Paper Table I image counts per dataset/split.  The synthetic generators
#: default to these counts divided by ``TABLE1_DIVISOR`` so the full
#: pipeline stays CPU-sized, preserving the relative class (im)balance.
TABLE1_COUNTS: Dict[str, Dict[str, int]] = {
    "oct": {"train_normal": 8000, "train_abnormal": 24000,
            "test_normal": 250, "test_abnormal": 750},
    "brain_tumor1": {"train_normal": 1200, "train_abnormal": 1200,
                     "test_normal": 300, "test_abnormal": 300},
    "brain_tumor2": {"train_normal": 710, "train_abnormal": 4398,
                     "test_normal": 302, "test_abnormal": 1623},
    "chest_xray": {"train_normal": 1349, "train_abnormal": 3883,
                   "test_normal": 234, "test_abnormal": 390},
    "face": {"train_normal": 23243, "train_abnormal": 23766,
             "test_normal": 5841, "test_abnormal": 5808},
}

TABLE1_DIVISOR: int = _env_int("REPRO_TABLE1_DIVISOR", 100)

#: Classification task names per dataset, as listed in Table I.
TASKS: Dict[str, str] = {
    "oct": "retinal disease",
    "brain_tumor1": "brain tumor",
    "brain_tumor2": "brain tumor",
    "chest_xray": "pneumonia",
    "face": "gender",
}

DATASET_NAMES = tuple(TABLE1_COUNTS)

DEFAULT_CONFIG = ReproConfig()

#: Persistent saliency store (serve/store.py) sizing defaults.  Segment
#: files roll at ``STORE_SEGMENT_BYTES``; whole-segment compaction kicks
#: in past ``STORE_CAPACITY_BYTES``.  Small by paper-repro standards —
#: 32x32 float16 maps are ~2 KB framed, so the defaults hold ~8k entries
#: across ~16 segments.  Override via environment for larger corpora.
STORE_SEGMENT_BYTES: int = _env_int("REPRO_STORE_SEGMENT_BYTES",
                                    1 * 1024 * 1024)
STORE_CAPACITY_BYTES: int = _env_int("REPRO_STORE_CAPACITY_BYTES",
                                     16 * 1024 * 1024)
