"""SMOTE — Synthetic Minority Over-sampling Technique (Chawla et al. 2002).

Section IV.F.3 of the paper resamples 2000 new class-associated codes per
category as convex combinations of existing codes (k-NN interpolation) to
probe the smoothness of the manifold; this module provides that resampler.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def smote_sample(X: np.ndarray, n_samples: int, k: int = 5,
                 rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Generate ``n_samples`` synthetic points by SMOTE interpolation.

    Each synthetic point lies on the segment between a random base point
    and one of its ``k`` nearest neighbours (convex combination), so the
    samples stay on/inside the manifold contour of ``X``.
    """
    X = np.asarray(X, dtype=np.float64)
    if len(X) < 2:
        raise ValueError("SMOTE needs at least 2 points")
    rng = rng or np.random.default_rng()
    k = min(k, len(X) - 1)

    sq = (X ** 2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
    np.fill_diagonal(d2, np.inf)
    neighbors = np.argsort(d2, axis=1)[:, :k]

    base_idx = rng.integers(0, len(X), size=n_samples)
    nbr_choice = rng.integers(0, k, size=n_samples)
    nbr_idx = neighbors[base_idx, nbr_choice]
    t = rng.random((n_samples, 1))
    return X[base_idx] + t * (X[nbr_idx] - X[base_idx])
