"""Stratified k-fold cross-validation (Table III uses ten folds)."""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple

import numpy as np


def stratified_kfold_indices(y: np.ndarray, n_splits: int = 10,
                             rng: Optional[np.random.Generator] = None
                             ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, test_idx) pairs with per-class balanced folds."""
    y = np.asarray(y)
    rng = rng or np.random.default_rng()
    n = len(y)
    fold_of = np.empty(n, dtype=int)
    for label in np.unique(y):
        idx = np.where(y == label)[0]
        idx = idx[rng.permutation(len(idx))]
        fold_of[idx] = np.arange(len(idx)) % n_splits
    for fold in range(n_splits):
        test_mask = fold_of == fold
        yield np.where(~test_mask)[0], np.where(test_mask)[0]


def cross_val_accuracy(make_model: Callable[[], object], X: np.ndarray,
                       y: np.ndarray, n_splits: int = 10,
                       rng: Optional[np.random.Generator] = None
                       ) -> Tuple[float, float, np.ndarray]:
    """K-fold accuracy; returns (mean, std, per-fold scores).

    ``make_model`` must return a fresh classifier with ``fit``/``predict``.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    scores = []
    for train_idx, test_idx in stratified_kfold_indices(y, n_splits, rng):
        if len(test_idx) == 0:
            continue
        model = make_model()
        model.fit(X[train_idx], y[train_idx])
        pred = model.predict(X[test_idx])
        scores.append(float((pred == y[test_idx]).mean()))
    scores = np.asarray(scores)
    return float(scores.mean()), float(scores.std()), scores
