"""``repro.ml`` — classical ML substrate (no sklearn in this environment).

Random forest for Table III's latent separability study, exact t-SNE for
Fig. 8, SMOTE for the Section IV.F.3 smoothness analysis, plus PCA,
stratified cross-validation, and metrics.
"""

from .crossval import cross_val_accuracy, stratified_kfold_indices
from .forest import RandomForestClassifier
from .metrics import accuracy_score, binary_auc, confusion_matrix, iou_score
from .pca import PCA
from .smote import smote_sample
from .tree import DecisionTreeClassifier
from .tsne import TSNE

__all__ = [
    "DecisionTreeClassifier", "RandomForestClassifier", "PCA", "TSNE",
    "smote_sample", "stratified_kfold_indices", "cross_val_accuracy",
    "accuracy_score", "confusion_matrix", "binary_auc", "iou_score",
]
