"""Classification metrics shared by the evaluation harness."""

from __future__ import annotations

import numpy as np


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) == 0:
        return 0.0
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     n_classes: int | None = None) -> np.ndarray:
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if n_classes is None:
        n_classes = int(max(y_true.max(), y_pred.max())) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def binary_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """ROC AUC via the rank statistic (Mann-Whitney U)."""
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    pos = scores[y_true == 1]
    neg = scores[y_true == 0]
    if len(pos) == 0 or len(neg) == 0:
        return 0.5
    order = np.argsort(np.concatenate([neg, pos]), kind="stable")
    ranks = np.empty(len(order), dtype=np.float64)
    ranks[order] = np.arange(1, len(order) + 1)
    # Average ranks over ties for correctness.
    combined = np.concatenate([neg, pos])
    for value in np.unique(combined):
        mask = combined == value
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    rank_sum_pos = ranks[len(neg):].sum()
    u = rank_sum_pos - len(pos) * (len(pos) + 1) / 2.0
    return float(u / (len(pos) * len(neg)))


def iou_score(pred_mask: np.ndarray, true_mask: np.ndarray,
              threshold: float = 0.5) -> float:
    """Intersection-over-union of binarised masks."""
    p = np.asarray(pred_mask) > threshold
    t = np.asarray(true_mask) > threshold
    union = np.logical_or(p, t).sum()
    if union == 0:
        return 1.0
    return float(np.logical_and(p, t).sum() / union)
