"""Random-forest classifier (bagged CART trees, sqrt feature subsets).

Used by Table III: ten-fold cross-validated classification accuracy of
latent codes, comparing CAE's class-associated space against ICAM-reg's
attribute latent space.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bootstrap-aggregated decision trees with majority soft voting."""

    def __init__(self, n_estimators: int = 100,
                 max_depth: Optional[int] = None,
                 min_samples_split: int = 2,
                 max_features="sqrt",
                 rng: Optional[np.random.Generator] = None):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.rng = rng or np.random.default_rng()
        self.trees_: list = []
        self.n_classes_ = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self.n_classes_ = int(y.max()) + 1
        n = len(X)
        self.trees_ = []
        for _ in range(self.n_estimators):
            idx = self.rng.integers(0, n, size=n)   # bootstrap sample
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=self.max_features,
                rng=np.random.default_rng(self.rng.integers(0, 2 ** 31)))
            tree.n_classes_ = self.n_classes_
            tree._root = tree._build(X[idx], y[idx], depth=0)
            self.trees_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        votes = np.zeros((len(X), self.n_classes_))
        for tree in self.trees_:
            votes += tree.predict_proba(X)
        return votes / len(self.trees_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(X) == np.asarray(y)).mean())
