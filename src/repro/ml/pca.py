"""Principal component analysis via SVD (manifold visualisation helper)."""

from __future__ import annotations

from typing import Optional

import numpy as np


class PCA:
    """Exact PCA; supports transform and inverse_transform."""

    def __init__(self, n_components: int = 2):
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "PCA":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        __, s, vt = np.linalg.svd(centered, full_matrices=False)
        self.components_ = vt[: self.n_components]
        var = s ** 2
        self.explained_variance_ratio_ = \
            var[: self.n_components] / max(var.sum(), 1e-12)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("PCA is not fitted")
        return (np.asarray(X) - self.mean_) @ self.components_.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, Z: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("PCA is not fitted")
        return np.asarray(Z) @ self.components_ + self.mean_
