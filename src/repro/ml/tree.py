"""CART decision-tree classifier (Gini impurity, random feature subsets).

Substrate for :mod:`repro.ml.forest`; sklearn is unavailable here and
Table III of the paper requires a random-forest classifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    proba: Optional[np.ndarray] = None   # leaf class distribution

    @property
    def is_leaf(self) -> bool:
        return self.proba is not None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return 1.0 - float((p * p).sum())


class DecisionTreeClassifier:
    """Binary-split CART tree.

    Parameters
    ----------
    max_depth: maximum tree depth (None = unlimited).
    min_samples_split: do not split nodes smaller than this.
    max_features: number of candidate features per split
        (None = all; "sqrt" = sqrt(n_features), the forest default).
    """

    def __init__(self, max_depth: Optional[int] = None,
                 min_samples_split: int = 2,
                 max_features=None,
                 rng: Optional[np.random.Generator] = None):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.rng = rng or np.random.default_rng()
        self._root: Optional[_Node] = None
        self.n_classes_ = 0

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self.n_classes_ = int(y.max()) + 1
        self._root = self._build(X, y, depth=0)
        return self

    def _n_candidate_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        return min(n_features, int(self.max_features))

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(y, minlength=self.n_classes_)
        node = _Node()
        depth_ok = self.max_depth is None or depth < self.max_depth
        if (not depth_ok or len(y) < self.min_samples_split
                or counts.max() == len(y)):
            node.proba = counts / max(counts.sum(), 1)
            return node

        feature, threshold = self._best_split(X, y, counts)
        if feature < 0:
            node.proba = counts / max(counts.sum(), 1)
            return node

        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray,
                    counts: np.ndarray) -> tuple:
        n, d = X.shape
        k = self._n_candidate_features(d)
        features = self.rng.choice(d, size=k, replace=False)
        parent_gini = _gini(counts)
        best_gain, best_feature, best_threshold = 1e-12, -1, 0.0
        for f in features:
            order = np.argsort(X[:, f], kind="stable")
            xs, ys = X[order, f], y[order]
            left = np.zeros(self.n_classes_)
            right = counts.astype(np.float64).copy()
            for i in range(n - 1):
                left[ys[i]] += 1
                right[ys[i]] -= 1
                if xs[i + 1] <= xs[i]:
                    continue
                nl, nr = i + 1, n - i - 1
                gain = parent_gini - (nl * _gini(left)
                                      + nr * _gini(right)) / n
                if gain > best_gain:
                    best_gain = gain
                    best_feature = int(f)
                    best_threshold = 0.5 * (xs[i] + xs[i + 1])
        return best_feature, best_threshold

    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty((len(X), self.n_classes_))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold \
                    else node.right
            out[i] = node.proba
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)
