"""Exact t-SNE (van der Maaten & Hinton 2008) for manifold visualisation.

Used by the Fig. 8 reproduction to project CAE's class-associated codes
and ICAM-reg's attribute codes to 2-D.  Exact (non-Barnes-Hut) gradients
are fine at the code-bank sizes used here (hundreds of points).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _pairwise_sq_dists(X: np.ndarray) -> np.ndarray:
    sq = (X ** 2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def _binary_search_perplexity(d2_row: np.ndarray, target_entropy: float,
                              tol: float = 1e-5, max_iter: int = 50
                              ) -> np.ndarray:
    """Find the Gaussian precision giving the target perplexity for one row."""
    beta, beta_min, beta_max = 1.0, -np.inf, np.inf
    p = np.zeros_like(d2_row)
    for _ in range(max_iter):
        p = np.exp(-d2_row * beta)
        total = p.sum()
        if total <= 0:
            total = 1e-12
        p = p / total
        entropy = -(p * np.log(np.maximum(p, 1e-12))).sum()
        diff = entropy - target_entropy
        if abs(diff) < tol:
            break
        if diff > 0:
            beta_min = beta
            beta = beta * 2 if beta_max == np.inf else (beta + beta_max) / 2
        else:
            beta_max = beta
            beta = beta / 2 if beta_min == -np.inf else (beta + beta_min) / 2
    return p


class TSNE:
    """Exact t-SNE with early exaggeration and momentum gradient descent."""

    def __init__(self, n_components: int = 2, perplexity: float = 30.0,
                 learning_rate: float = 200.0, n_iter: int = 500,
                 early_exaggeration: float = 12.0, seed: int = 0):
        self.n_components = n_components
        self.perplexity = perplexity
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.early_exaggeration = early_exaggeration
        self.seed = seed

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        n = len(X)
        if n < 4:
            raise ValueError("t-SNE needs at least 4 points")
        perplexity = min(self.perplexity, (n - 1) / 3.0)
        target_entropy = np.log(perplexity)

        d2 = _pairwise_sq_dists(X)
        p_cond = np.zeros((n, n))
        idx = np.arange(n)
        for i in range(n):
            others = idx != i
            p_cond[i, others] = _binary_search_perplexity(
                d2[i, others], target_entropy)
        p_joint = (p_cond + p_cond.T) / (2.0 * n)
        p_joint = np.maximum(p_joint, 1e-12)

        rng = np.random.default_rng(self.seed)
        Y = rng.standard_normal((n, self.n_components)) * 1e-4
        velocity = np.zeros_like(Y)
        gains = np.ones_like(Y)

        exaggeration_until = min(250, self.n_iter // 4)
        for it in range(self.n_iter):
            p = p_joint * (self.early_exaggeration
                           if it < exaggeration_until else 1.0)
            dy2 = _pairwise_sq_dists(Y)
            q_num = 1.0 / (1.0 + dy2)
            np.fill_diagonal(q_num, 0.0)
            q = np.maximum(q_num / q_num.sum(), 1e-12)

            pq = (p - q) * q_num
            grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ Y)

            momentum = 0.5 if it < exaggeration_until else 0.8
            same_sign = np.sign(grad) == np.sign(velocity)
            gains = np.where(same_sign, gains * 0.8, gains + 0.2)
            gains = np.maximum(gains, 0.01)
            velocity = momentum * velocity - self.learning_rate * gains * grad
            Y = Y + velocity
            Y = Y - Y.mean(axis=0)
        return Y
