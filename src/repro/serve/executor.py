"""Micro-batch executors: where flushed batches actually run.

The engine hands each flushed micro-batch to an executor as a plain
callable.  :class:`SerialExecutor` runs it inline on the calling thread
— the deterministic default, zero overhead.  :class:`ThreadedExecutor`
runs batches on persistent worker threads: the conv/GEMM contractions
inside ``explain_batch`` are BLAS calls that release the GIL, so on
multi-core hosts independent micro-batches (different methods, or
different shape-queues of one method) overlap on real cores.
:class:`ProcessExecutor` runs the *compute* of each batch in a pool of
persistent worker **processes**, sidestepping the GIL for the
python-heavy explainer overhead (mask construction, ridge solves, tape
bookkeeping) that threads cannot parallelize.

All three expose the same two-method surface (``submit`` returning a
:class:`concurrent.futures.Future`, ``shutdown``), so the engine treats
them interchangeably.  The process pool additionally exposes
``run_batch`` — the remote-compute channel the engine duck-types for —
because the submitted callable itself (engine locks, cache inserts,
handle resolution) must keep running in the parent process.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from .worker import (EngineSpec, WorkerBatchError, WorkerCrashed,
                     decode_results, encode_batch, worker_main)


class SerialExecutor:
    """Runs each batch inline on the caller's thread.

    ``submit`` returns an already-completed future, so engine code paths
    (dispatch, drain, error propagation) are identical across executors.
    """

    name = "serial"
    workers = 1

    def submit(self, fn: Callable, *args) -> "Future":
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:       # noqa: BLE001 — future carries it
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True) -> None:
        """Nothing to tear down; present for interface parity."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ThreadedExecutor:
    """Persistent worker-thread pool for GIL-releasing batch work.

    Workers are started once and reused for every batch (no per-flush
    thread spawn).  Correctness under concurrency is guaranteed by the
    engine side: the autograd tape switch is thread-local,
    ``nn.frozen`` is reference-counted, and the engine serializes
    batches of the same method with a per-method lock (explainer objects
    are not audited for internal thread safety).
    """

    name = "threaded"

    def __init__(self, workers: int = 4):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix="explain-worker")

    def submit(self, fn: Callable, *args) -> "Future":
        return self._pool.submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers.  ``wait=False`` is the fatal-error path
        (``close()`` after a drain that will never succeed): queued-but-
        unstarted futures are **cancelled**, not abandoned — otherwise a
        backlog behind a wedged batch would leave callers blocked on
        futures no thread will ever run."""
        self._pool.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "ThreadedExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False

    def __repr__(self) -> str:
        return f"ThreadedExecutor(workers={self.workers})"


class _WorkerChannel:
    """One worker process plus the parent's end of its message pipe."""

    __slots__ = ("process", "conn", "dead")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.dead = False


class ProcessExecutor:
    """Persistent pool of worker **processes** for batch compute.

    Each worker is initialized exactly once: it materializes the
    engine's models from a picklable :class:`~repro.serve.worker.
    EngineSpec` at startup (never per-batch pickling of live modules)
    and then serves compact micro-batch payloads — method name, stacked
    float32 images, labels/targets in; stacked saliency maps plus the
    worker-measured per-map cost out.  Because every worker owns private
    model replicas in its own interpreter, there is no GIL to share and
    no per-method lock to hold: the python-heavy explainer overhead
    that caps :class:`ThreadedExecutor` at ~1.0x scales across cores.

    The executor satisfies the engine's two-method contract (``submit``
    -> future, ``shutdown``): submitted callables run on a local
    dispatcher-thread pool (they carry the engine's locking / cache /
    handle bookkeeping, which must stay in the parent), and the engine
    routes the pure compute through :meth:`run_batch`, which ships the
    payload to a free worker and blocks for its reply.

    A worker that dies mid-batch (OOM kill, segfault, ``os._exit``)
    surfaces as :class:`~repro.serve.worker.WorkerCrashed` from its
    batch; the channel is retired, the pool shrinks, and the engine's
    normal requeue-and-retry contract lands the batch on a surviving
    worker.  A pool with no survivors raises on every acquire — loudly,
    with the crash as the cause.

    ``start_method`` defaults to ``"spawn"``: workers must *materialize*
    the spec (the point of spec replication), not inherit the parent's
    heap, and spawn stays safe in thread-rich parents where fork is not.
    """

    name = "process"

    def __init__(self, spec: EngineSpec, workers: int = 2,
                 start_method: str = "spawn",
                 startup_timeout_s: float = 180.0):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if not isinstance(spec, EngineSpec):
            raise TypeError(f"spec must be an EngineSpec, got {type(spec)}")
        self.spec = spec
        self.workers = workers
        self._mp = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._all: List[_WorkerChannel] = []
        self._idle: List[_WorkerChannel] = []
        self._live = 0
        self._closed = False
        try:
            for _ in range(workers):
                parent_conn, child_conn = self._mp.Pipe()
                process = self._mp.Process(
                    target=worker_main, args=(child_conn, spec),
                    daemon=True, name="explain-process-worker")
                process.start()
                child_conn.close()
                self._all.append(_WorkerChannel(process, parent_conn))
            # Eager handshake: every worker reports "ready" once its
            # spec materialized (models built/loaded), so a broken spec
            # fails the constructor with the remote traceback instead of
            # the first batch, and per-batch latency never includes a
            # cold model build.
            for channel in self._all:
                if not channel.conn.poll(startup_timeout_s):
                    raise WorkerCrashed(
                        f"worker pid={channel.process.pid} did not report "
                        f"ready within {startup_timeout_s}s")
                try:
                    message = channel.conn.recv()
                except EOFError as exc:
                    raise WorkerCrashed(
                        f"worker pid={channel.process.pid} died during "
                        "startup (under the 'spawn' start method the "
                        "parent's __main__ must be importable — guard "
                        "script entry points with if __name__ == "
                        "'__main__')") from exc
                if message[0] != "ready":
                    raise WorkerCrashed(
                        "worker failed to materialize its EngineSpec:\n"
                        + str(message[1]))
        except BaseException:
            self._terminate_all()
            raise
        self._idle = list(self._all)
        self._live = len(self._all)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="process-dispatch")

    # -- channel pool ---------------------------------------------------
    @property
    def alive_workers(self) -> int:
        """Channels still backed by a live worker process."""
        with self._lock:
            return self._live

    def pool_idle(self) -> bool:
        """True when no worker is mid-batch right now.  The engine's
        ``stats()`` aggregates worker counters only from an idle pool —
        gathering them waits for idleness, which would silently turn a
        mid-flight stats probe into a drain."""
        with self._lock:
            return len(self._idle) == self._live

    def _acquire(self) -> _WorkerChannel:
        with self._cond:
            while True:
                if self._closed:
                    raise RuntimeError("ProcessExecutor is shut down")
                if self._live == 0:
                    raise WorkerCrashed(
                        "process pool has no live workers left")
                if self._idle:
                    return self._idle.pop()
                self._cond.wait(timeout=0.1)

    def _release(self, channel: _WorkerChannel) -> None:
        with self._cond:
            if channel.dead:
                self._live -= 1
                self._reap(channel)
            else:
                self._idle.append(channel)
            self._cond.notify_all()

    @staticmethod
    def _reap(channel: _WorkerChannel) -> None:
        try:
            channel.conn.close()
        except OSError:
            pass
        channel.process.join(timeout=1.0)
        if channel.process.is_alive():
            channel.process.terminate()
            channel.process.join(timeout=1.0)

    # -- the remote-compute channel the engine duck-types for ----------
    def run_batch(self, method: str, images: np.ndarray,
                  labels: np.ndarray, targets: Optional[np.ndarray],
                  keys: Optional[list] = None) -> Tuple[list, float]:
        """Run one micro-batch on a free worker; returns ``(results,
        batch_ms)`` with ``batch_ms`` measured inside the worker (pure
        compute — pipe and queueing time never bill as cost).  ``keys``
        (per-request cache keys) ride along when the pool has a
        saliency store attached, letting the worker serve store hits
        without compute.  A batch that raised remotely raises
        :class:`WorkerBatchError` carrying the remote traceback; a
        worker that died mid-batch raises :class:`WorkerCrashed` and
        retires its channel."""
        channel = self._acquire()
        try:
            try:
                channel.conn.send(encode_batch(method, images, labels,
                                               targets, keys=keys))
                reply = channel.conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                channel.dead = True
                raise WorkerCrashed(
                    f"worker pid={channel.process.pid} died mid-batch "
                    f"(method={method!r}, exitcode="
                    f"{channel.process.exitcode})") from exc
        finally:
            self._release(channel)
        if reply[0] == "error":
            _, err_method, exc_type, message, remote_tb = reply
            raise WorkerBatchError(err_method, exc_type, message, remote_tb)
        _, payload, batch_ms = reply
        return decode_results(payload), float(batch_ms)

    def attach_store(self, directory: str, snapshot: list) -> int:
        """Attach a read-only saliency store to every live worker: each
        gets the store *directory* plus the parent's current index
        *snapshot* (see :meth:`repro.serve.store.SaliencyStore.
        index_snapshot`), so workers open without scanning a segment or
        touching the journal — the single-writer parent remains the
        only process that mutates the directory.  Returns the number of
        workers that attached; waits for the pool to go idle first
        (call it before load, or after a drain)."""
        with self._cond:
            while len(self._idle) < self._live:
                if self._live == 0 or self._closed:
                    break
                self._cond.wait(timeout=0.1)
            channels, self._idle = list(self._idle), []
        attached = 0
        try:
            for channel in channels:
                try:
                    channel.conn.send(("store", directory, snapshot))
                    reply = channel.conn.recv()
                except (EOFError, OSError, BrokenPipeError):
                    channel.dead = True
                    continue
                if reply[0] == "store_ok":
                    attached += 1
        finally:
            for channel in channels:
                self._release(channel)
        return attached

    def worker_stats(self) -> List[dict]:
        """Per-worker ``{pid, batches, maps}`` counters (the dedup
        benchmark sums ``maps`` to verify exactly-once compute across
        processes).  Waits for all live workers to go idle first — call
        it after ``drain()``, not under load."""
        with self._cond:
            while len(self._idle) < self._live:
                if self._live == 0 or self._closed:
                    break
                self._cond.wait(timeout=0.1)
            channels, self._idle = list(self._idle), []
        stats = []
        try:
            for channel in channels:
                try:
                    channel.conn.send(("stats",))
                    reply = channel.conn.recv()
                    stats.append(reply[1])
                except (EOFError, OSError, BrokenPipeError):
                    channel.dead = True
        finally:
            for channel in channels:
                self._release(channel)
        return stats

    # -- executor contract ---------------------------------------------
    def submit(self, fn: Callable, *args) -> "Future":
        return self._pool.submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        """Stop dispatchers and workers; idempotent, leaves no orphans.

        Live workers get a ``stop`` message and a bounded ``join``;
        anything still alive after that (wedged mid-batch on
        ``wait=False``) is terminated.  Every pipe is closed."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._pool.shutdown(wait=wait, cancel_futures=not wait)
        self._terminate_all()
        with self._cond:
            self._idle = []
            self._live = 0

    def _terminate_all(self) -> None:
        for channel in self._all:
            try:
                if not channel.dead and channel.process.is_alive():
                    channel.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for channel in self._all:
            channel.process.join(timeout=5.0)
            if channel.process.is_alive():
                channel.process.terminate()
                channel.process.join(timeout=1.0)
                if channel.process.is_alive():
                    channel.process.kill()
                    channel.process.join(timeout=1.0)
            try:
                channel.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False

    def __repr__(self) -> str:
        return (f"ProcessExecutor(workers={self.workers}, "
                f"alive={self.alive_workers})")


def make_executor(executor: Union[None, str, SerialExecutor,
                                  ThreadedExecutor, "ProcessExecutor"],
                  spec: Optional[EngineSpec] = None,
                  workers: Optional[int] = None):
    """Resolve the engine's ``executor`` argument.

    ``None``/``"serial"`` -> a :class:`SerialExecutor`; ``"threaded"``
    -> a :class:`ThreadedExecutor`; ``"process"`` -> a
    :class:`ProcessExecutor` (requires ``spec`` — the worker-side model
    recipe; :meth:`repro.eval.pipeline.ExperimentContext.engine` derives
    one automatically).  An object is passed through (it just needs
    ``submit``/``shutdown``/``name``).
    """
    if executor is None or executor == "serial":
        return SerialExecutor()
    if executor == "threaded":
        return ThreadedExecutor(workers=workers or 4)
    if executor == "process":
        if spec is None:
            raise ValueError(
                "executor='process' needs an EngineSpec describing how "
                "workers rebuild the models: pass ProcessExecutor(spec) "
                "directly, or use ExperimentContext.engine("
                "executor='process'), which derives the spec itself")
        return ProcessExecutor(spec, workers=workers or 2)
    if isinstance(executor, str):
        raise ValueError(
            f"unknown executor {executor!r}; use 'serial', 'threaded', "
            "'process', or an executor instance")
    return executor
