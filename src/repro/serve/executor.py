"""Micro-batch executors: where flushed batches actually run.

The engine hands each flushed micro-batch to an executor as a plain
callable.  :class:`SerialExecutor` runs it inline on the calling thread
— the deterministic default, zero overhead.  :class:`ThreadedExecutor`
runs batches on persistent worker threads: the conv/GEMM contractions
inside ``explain_batch`` are BLAS calls that release the GIL, so on
multi-core hosts independent micro-batches (different methods, or
different shape-queues of one method) overlap on real cores.

Both expose the same two-method surface (``submit`` returning a
:class:`concurrent.futures.Future`, ``shutdown``), so the engine — and
any future process-pool executor — treats them interchangeably.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Optional, Union


class SerialExecutor:
    """Runs each batch inline on the caller's thread.

    ``submit`` returns an already-completed future, so engine code paths
    (dispatch, drain, error propagation) are identical across executors.
    """

    name = "serial"
    workers = 1

    def submit(self, fn: Callable, *args) -> "Future":
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:       # noqa: BLE001 — future carries it
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True) -> None:
        """Nothing to tear down; present for interface parity."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ThreadedExecutor:
    """Persistent worker-thread pool for GIL-releasing batch work.

    Workers are started once and reused for every batch (no per-flush
    thread spawn).  Correctness under concurrency is guaranteed by the
    engine side: the autograd tape switch is thread-local,
    ``nn.frozen`` is reference-counted, and the engine serializes
    batches of the same method with a per-method lock (explainer objects
    are not audited for internal thread safety).
    """

    name = "threaded"

    def __init__(self, workers: int = 4):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix="explain-worker")

    def submit(self, fn: Callable, *args) -> "Future":
        return self._pool.submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "ThreadedExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False

    def __repr__(self) -> str:
        return f"ThreadedExecutor(workers={self.workers})"


def make_executor(executor: Union[None, str, SerialExecutor,
                                  ThreadedExecutor]):
    """Resolve the engine's ``executor`` argument.

    ``None``/``"serial"`` -> a :class:`SerialExecutor`; ``"threaded"``
    -> a :class:`ThreadedExecutor` with default workers; an object is
    passed through (it just needs ``submit``/``shutdown``/``name``).
    """
    if executor is None or executor == "serial":
        return SerialExecutor()
    if executor == "threaded":
        return ThreadedExecutor()
    if isinstance(executor, str):
        raise ValueError(
            f"unknown executor {executor!r}; use 'serial', 'threaded', or "
            "an executor instance")
    return executor
