"""Micro-batch executors: where flushed batches actually run.

The engine hands each flushed micro-batch to an executor as a plain
callable.  :class:`SerialExecutor` runs it inline on the calling thread
— the deterministic default, zero overhead.  :class:`ThreadedExecutor`
runs batches on persistent worker threads: the conv/GEMM contractions
inside ``explain_batch`` are BLAS calls that release the GIL, so on
multi-core hosts independent micro-batches (different methods, or
different shape-queues of one method) overlap on real cores.
:class:`ProcessExecutor` runs the *compute* of each batch in a pool of
persistent worker **processes**, sidestepping the GIL for the
python-heavy explainer overhead (mask construction, ridge solves, tape
bookkeeping) that threads cannot parallelize.

All three expose the same two-method surface (``submit`` returning a
:class:`concurrent.futures.Future`, ``shutdown``), so the engine treats
them interchangeably.  The process pool additionally exposes
``run_batch`` — the remote-compute channel the engine duck-types for —
because the submitted callable itself (engine locks, cache inserts,
handle resolution) must keep running in the parent process.

The process pool speaks one of two transports (see
:mod:`repro.serve.transport`): ``"shm"`` moves ndarray payloads through
per-worker double-buffered shared-memory arenas while the pipe carries
only compact headers — with two slots per worker the dispatcher encodes
batch N+1 while the worker computes batch N; ``"pipe"`` is the PR 5
pickle codec, byte-for-byte.  ``"auto"`` (the default) honours the
``REPRO_SERVE_TRANSPORT`` environment knob and otherwise picks shared
memory wherever the platform provides it.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from .transport import (ShmArena, TransportStats, pack_ctxs,
                        resolve_transport)
from .worker import (EngineSpec, WorkerBatchError, WorkerCrashed,
                     decode_results, decode_shm_results, encode_batch,
                     worker_main)


def default_worker_count(maximum: int = 8) -> int:
    """Worker-pool sizing when the caller does not choose: one worker
    per visible core, clamped to ``maximum`` (explainer batches are
    BLAS-heavy — past a handful of workers the memory bus, not the core
    count, is the limit) and floored at one."""
    return max(1, min(os.cpu_count() or 1, maximum))


class SerialExecutor:
    """Runs each batch inline on the caller's thread.

    ``submit`` returns an already-completed future, so engine code paths
    (dispatch, drain, error propagation) are identical across executors.
    """

    name = "serial"
    workers = 1

    def submit(self, fn: Callable, *args) -> "Future":
        """Run ``fn(*args)`` inline; returns an already-resolved
        future (result or exception — never pending)."""
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:       # noqa: BLE001 — future carries it
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True) -> None:
        """Nothing to tear down; present for interface parity."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ThreadedExecutor:
    """Persistent worker-thread pool for GIL-releasing batch work.

    Workers are started once and reused for every batch (no per-flush
    thread spawn).  Correctness under concurrency is guaranteed by the
    engine side: the autograd tape switch is thread-local,
    ``nn.frozen`` is reference-counted, and the engine serializes
    batches of the same method with a per-method lock (explainer objects
    are not audited for internal thread safety).

    ``workers=None`` (the default) sizes the pool from
    :func:`default_worker_count` — one thread per visible core, clamped
    — instead of a hardcoded constant that under-subscribes big hosts
    and over-subscribes small ones.
    """

    name = "threaded"

    def __init__(self, workers: Optional[int] = None):
        if workers is None:
            workers = default_worker_count()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix="explain-worker")

    def submit(self, fn: Callable, *args) -> "Future":
        """Hand ``fn(*args)`` to the worker-thread pool; returns its
        pending future.  Never raises on a full pool — backpressure is
        the engine's admission layer, not the executor queue."""
        return self._pool.submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers.  ``wait=False`` is the fatal-error path
        (``close()`` after a drain that will never succeed): queued-but-
        unstarted futures are **cancelled**, not abandoned — otherwise a
        backlog behind a wedged batch would leave callers blocked on
        futures no thread will ever run."""
        self._pool.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "ThreadedExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False

    def __repr__(self) -> str:
        return f"ThreadedExecutor(workers={self.workers})"


#: Distinguishes arenas of executors that coexist in one parent process
#: (segment names embed pid + this sequence number).
_ARENA_SEQ = itertools.count()


class _WorkerChannel:
    """One worker process plus the parent's end of its message pipe.

    ``inflight`` counts batches currently between send and release on
    this channel (bounded by ``slots``: 1 on the pipe transport, the
    arena's slot count on shm).  Under shm, replies for the (up to two)
    in-flight batches can interleave, so waiting dispatcher threads
    elect one **receiver** at a time (``receiving``): it pulls the next
    reply off the pipe, routes it into ``replies`` by the slot id every
    slot-routed reply carries at index 1, and wakes the waiters on
    ``rcond``.  ``crash`` latches the first transport error so every
    concurrent waiter — not just the receiver that observed EOF —
    raises :class:`WorkerCrashed`.
    """

    __slots__ = ("process", "conn", "dead", "reaped", "inflight", "slots",
                 "arena", "send_lock", "rcond", "replies", "receiving",
                 "crash")

    def __init__(self, process, conn, slots: int = 1):
        self.process = process
        self.conn = conn
        self.dead = False
        self.reaped = False
        self.inflight = 0
        self.slots = slots
        self.arena: Optional[ShmArena] = None
        self.send_lock = threading.Lock()
        self.rcond = threading.Condition()
        self.replies = {}
        self.receiving = False
        self.crash: Optional[BaseException] = None


class ProcessExecutor:
    """Persistent pool of worker **processes** for batch compute.

    Each worker is initialized exactly once: it materializes the
    engine's models from a picklable :class:`~repro.serve.worker.
    EngineSpec` at startup (never per-batch pickling of live modules)
    and then serves compact micro-batch payloads.  Because every worker
    owns private model replicas in its own interpreter, there is no GIL
    to share and no per-method lock to hold: the python-heavy explainer
    overhead that caps :class:`ThreadedExecutor` at ~1.0x scales across
    cores.

    **Transport.**  On ``transport="shm"`` (the ``"auto"`` default
    wherever ``multiprocessing.shared_memory`` exists) each channel
    owns a double-buffered :class:`~repro.serve.transport.ShmArena`:
    ``run_batch`` writes the image stack straight into a free slot's
    out segment (no pickle, no intermediate stack copy), sends a small
    header, and the worker writes the stacked saliency into the return
    segment.  Two slots per worker mean a second dispatcher thread can
    encode the next batch into the free slot while the worker computes
    — the dispatcher pool is sized ``workers * slots`` so that overlap
    actually gets a thread.  Arenas grow geometrically on oversized
    batches; stale or unattachable segments degrade that one batch to a
    slot-routed pipe payload; the parent owns every segment and unlinks
    them when a channel is reaped and at ``shutdown``, so neither a
    worker crash nor a clean exit leaves ``/dev/shm`` entries behind.
    ``transport="pipe"`` (or ``REPRO_SERVE_TRANSPORT=pipe``) keeps the
    PR 5 pickle codec byte-for-byte.

    The executor satisfies the engine's two-method contract (``submit``
    -> future, ``shutdown``): submitted callables run on a local
    dispatcher-thread pool (they carry the engine's locking / cache /
    handle bookkeeping, which must stay in the parent), and the engine
    routes the pure compute through :meth:`run_batch`.

    A worker that dies mid-batch (OOM kill, segfault, ``os._exit``)
    surfaces as :class:`~repro.serve.worker.WorkerCrashed` from its
    batch; the channel is retired (arena unlinked), the pool shrinks,
    and the engine's normal requeue-and-retry contract lands the batch
    on a surviving worker.  A pool with no survivors raises on every
    acquire — loudly, with the crash as the cause.

    ``start_method`` defaults to ``"spawn"``: workers must *materialize*
    the spec (the point of spec replication), not inherit the parent's
    heap, and spawn stays safe in thread-rich parents where fork is not.
    """

    name = "process"
    #: The engine may pass run_batch a list of per-request images
    #: instead of a pre-stacked array (both transports handle either).
    accepts_image_list = True
    #: The engine may pass run_batch the per-request RequestContext
    #: list; the compact fields ride the batch message (both
    #: transports) and worker-side timestamps come back stamped onto
    #: the same ctx objects.  Duck-typed executors without this flag
    #: never see a ctxs kwarg.
    accepts_context = True

    def __init__(self, spec: EngineSpec, workers: int = 2,
                 start_method: str = "spawn",
                 startup_timeout_s: float = 180.0,
                 transport: str = "auto", slots_per_worker: int = 2,
                 initial_arena_bytes: int = 1 << 16):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if slots_per_worker < 1:
            raise ValueError("slots_per_worker must be >= 1")
        if not isinstance(spec, EngineSpec):
            raise TypeError(f"spec must be an EngineSpec, got {type(spec)}")
        self.spec = spec
        self.workers = workers
        self.transport = resolve_transport(transport)
        self._slots = slots_per_worker if self.transport == "shm" else 1
        self._stats = TransportStats(self.transport)
        self._mp = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._all: List[_WorkerChannel] = []
        self._live = 0
        self._quiesce = 0
        self._closed = False
        try:
            for _ in range(workers):
                parent_conn, child_conn = self._mp.Pipe()
                process = self._mp.Process(
                    target=worker_main, args=(child_conn, spec),
                    daemon=True, name="explain-process-worker")
                process.start()
                child_conn.close()
                self._all.append(_WorkerChannel(process, parent_conn,
                                                slots=self._slots))
            # Eager handshake: every worker reports "ready" once its
            # spec materialized (models built/loaded), so a broken spec
            # fails the constructor with the remote traceback instead of
            # the first batch, and per-batch latency never includes a
            # cold model build.
            for channel in self._all:
                if not channel.conn.poll(startup_timeout_s):
                    raise WorkerCrashed(
                        f"worker pid={channel.process.pid} did not report "
                        f"ready within {startup_timeout_s}s")
                try:
                    message = channel.conn.recv()
                except EOFError as exc:
                    raise WorkerCrashed(
                        f"worker pid={channel.process.pid} died during "
                        "startup (under the 'spawn' start method the "
                        "parent's __main__ must be importable — guard "
                        "script entry points with if __name__ == "
                        "'__main__')") from exc
                if message[0] != "ready":
                    raise WorkerCrashed(
                        "worker failed to materialize its EngineSpec:\n"
                        + str(message[1]))
            if self.transport == "shm":
                seq = next(_ARENA_SEQ)
                for i, channel in enumerate(self._all):
                    channel.arena = ShmArena(
                        f"rtx{os.getpid():x}-{seq}w{i}",
                        slots=self._slots,
                        initial_bytes=initial_arena_bytes,
                        stats=self._stats)
        except BaseException:
            self._terminate_all()
            raise
        self._live = len(self._all)
        # One dispatcher thread per slot, not per worker: with double
        # buffering, the thread encoding batch N+1 into a worker's free
        # slot is a *different* thread than the one blocked on batch N's
        # reply, so overlap needs the headroom.
        self._pool = ThreadPoolExecutor(
            max_workers=workers * self._slots,
            thread_name_prefix="process-dispatch")

    # -- channel pool ---------------------------------------------------
    @property
    def alive_workers(self) -> int:
        """Channels still backed by a live worker process."""
        with self._lock:
            return self._live

    def pool_idle(self) -> bool:
        """True when no worker is mid-batch right now.  The engine's
        ``stats()`` aggregates worker counters only from an idle pool —
        gathering them waits for idleness, which would silently turn a
        mid-flight stats probe into a drain."""
        with self._lock:
            return all(channel.inflight == 0 for channel in self._all)

    def _acquire(self) -> Tuple[_WorkerChannel, Optional[object]]:
        """Claim a (channel, slot) pair for one batch.  Prefers the
        least-loaded live channel, so an idle worker always wins over
        double-buffering a busy one; a second batch lands on a busy
        channel (counted as an overlapped send) only when every worker
        is already computing.  Pipe-transport channels have one slot,
        which degenerates to PR 5's exclusive acquire."""
        with self._cond:
            while True:
                if self._closed:
                    raise RuntimeError("ProcessExecutor is shut down")
                if self._live == 0:
                    raise WorkerCrashed(
                        "process pool has no live workers left")
                if self._quiesce == 0:
                    best = None
                    for channel in self._all:
                        if channel.dead or channel.inflight >= channel.slots:
                            continue
                        if best is None or channel.inflight < best.inflight:
                            best = channel
                    if best is not None:
                        slot = (best.arena.acquire()
                                if best.arena is not None else None)
                        self._stats.count_send(best.inflight > 0)
                        best.inflight += 1
                        return best, slot
                self._cond.wait(timeout=0.1)

    def _release(self, channel: _WorkerChannel, slot) -> None:
        with self._cond:
            if slot is not None and channel.arena is not None:
                channel.arena.release(slot)
            channel.inflight -= 1
            self._maybe_reap(channel)
            self._cond.notify_all()

    def _mark_dead(self, channel: _WorkerChannel,
                   cause: Optional[BaseException] = None) -> None:
        """Retire a channel exactly once (concurrent observers of the
        same death both call this; only the first decrements)."""
        with self._cond:
            if not channel.dead:
                channel.dead = True
                self._live -= 1
            self._maybe_reap(channel)
            self._cond.notify_all()
        with channel.rcond:
            if channel.crash is None:
                channel.crash = cause or EOFError("worker channel died")
            channel.rcond.notify_all()

    def _maybe_reap(self, channel: _WorkerChannel) -> None:
        """Under ``self._cond``: tear the channel down once it is dead
        *and* no batch still holds it (a sibling dispatcher may be
        mid-crash on the other slot)."""
        if channel.dead and not channel.reaped and channel.inflight == 0:
            channel.reaped = True
            try:
                channel.conn.close()
            except OSError:
                pass
            channel.process.join(timeout=1.0)
            if channel.process.is_alive():
                channel.process.terminate()
                channel.process.join(timeout=1.0)
            if channel.arena is not None:
                channel.arena.close()       # parent-owned unlink

    # -- reply routing ---------------------------------------------------
    def _send(self, channel: _WorkerChannel, message) -> None:
        try:
            with channel.send_lock:
                channel.conn.send(message)
        except (EOFError, OSError, BrokenPipeError) as exc:
            self._mark_dead(channel, exc)
            raise WorkerCrashed(
                f"worker pid={channel.process.pid} died mid-batch "
                f"(exitcode={channel.process.exitcode})") from exc

    def _wait_reply(self, channel: _WorkerChannel, slot_index: int):
        """Wait for this slot's reply on a channel that may have two
        batches in flight.  Exactly one waiter at a time is the
        *receiver*: it recvs the next reply (outside the lock), files it
        under the slot id at reply index 1, and wakes everyone; waiters
        whose reply arrived pop it and return.  A recv failure latches
        ``channel.crash`` so every in-flight batch on the channel raises
        :class:`WorkerCrashed`, not just the receiving thread."""
        while True:
            with channel.rcond:
                if slot_index in channel.replies:
                    return channel.replies.pop(slot_index)
                if channel.crash is not None:
                    raise WorkerCrashed(
                        f"worker pid={channel.process.pid} died mid-batch "
                        f"(exitcode={channel.process.exitcode})"
                    ) from channel.crash
                if channel.receiving:
                    channel.rcond.wait(timeout=0.1)
                    continue
                channel.receiving = True
            try:
                reply = channel.conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                with channel.rcond:
                    channel.receiving = False
                self._mark_dead(channel, exc)
                raise WorkerCrashed(
                    f"worker pid={channel.process.pid} died mid-batch "
                    f"(exitcode={channel.process.exitcode})") from exc
            with channel.rcond:
                channel.receiving = False
                channel.replies[reply[1]] = reply
                channel.rcond.notify_all()

    # -- the remote-compute channel the engine duck-types for ----------
    def run_batch(self, method: str, images, labels: np.ndarray,
                  targets: Optional[np.ndarray],
                  keys: Optional[list] = None,
                  ctxs: Optional[list] = None) -> Tuple[list, float]:
        """Run one micro-batch on a pool slot; returns ``(results,
        batch_ms)`` with ``batch_ms`` measured inside the worker (pure
        compute — pipe and queueing time never bill as cost).
        ``images`` is a stacked float32 array or a uniform-shape list of
        per-request images (the shm path writes either form straight
        into the arena; the pipe path stacks inside ``encode_batch``
        exactly as PR 5 did).  ``keys`` (per-request cache keys) ride
        along when the pool has a saliency store attached.  ``ctxs``
        (per-request :class:`~repro.serve.context.RequestContext`) ride
        both transports in compact packed form; the worker's
        pid/recv/done stamps come back on the reply and are applied to
        the same ctx objects before this returns.  A batch that raised
        remotely raises :class:`WorkerBatchError` carrying the remote
        traceback; a worker that died mid-batch raises
        :class:`WorkerCrashed` and retires its channel."""
        wire_ctxs = pack_ctxs(ctxs)
        channel, slot = self._acquire()
        try:
            if slot is not None:
                return self._run_batch_shm(channel, slot, method, images,
                                           labels, targets, keys,
                                           ctxs, wire_ctxs)
            return self._run_batch_pipe(channel, method, images, labels,
                                        targets, keys, ctxs, wire_ctxs)
        finally:
            self._release(channel, slot)

    @staticmethod
    def _apply_wstamps(ctxs, wstamps) -> None:
        """Stamp a reply's worker-side timestamps onto the batch's live
        context objects (no-op for context-free traffic)."""
        if not wstamps or not ctxs:
            return
        pid, recv_at, done_at = wstamps
        for ctx in ctxs:
            if ctx is None:
                continue
            ctx.worker_pid = pid
            ctx.worker_recv_at = recv_at
            ctx.worker_done_at = done_at

    def _run_batch_pipe(self, channel: _WorkerChannel, method: str,
                        images, labels, targets, keys,
                        ctxs=None, wire_ctxs=None) -> Tuple[list, float]:
        message = encode_batch(method, images, labels, targets, keys=keys,
                               ctxs=wire_ctxs)
        try:
            with channel.send_lock:
                channel.conn.send(message)
            reply = channel.conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            self._mark_dead(channel, exc)
            raise WorkerCrashed(
                f"worker pid={channel.process.pid} died mid-batch "
                f"(method={method!r}, exitcode="
                f"{channel.process.exitcode})") from exc
        if reply[0] == "error":
            _, err_method, exc_type, text, remote_tb = reply
            raise WorkerBatchError(err_method, exc_type, text, remote_tb)
        _, payload, batch_ms = reply[:3]
        self._apply_wstamps(ctxs, reply[3] if len(reply) > 3 else None)
        saliency = payload[0]
        ret_bytes = (saliency.nbytes if isinstance(saliency, np.ndarray)
                     else sum(m.nbytes for m in saliency))
        self._stats.count_pipe(message[2].nbytes + ret_bytes)
        return decode_results(payload), float(batch_ms)

    def _run_batch_shm(self, channel: _WorkerChannel, slot, method: str,
                       images, labels, targets, keys,
                       ctxs=None, wire_ctxs=None) -> Tuple[list, float]:
        labels = np.asarray(labels, dtype=np.int64)
        if targets is not None:
            targets = np.asarray(targets, dtype=np.int64)
        pipe_out_bytes = 0
        out_desc, ret_desc = channel.arena.encode(slot, images)
        header = ("shm_batch", slot.index, method, out_desc,
                  ret_desc, labels, targets, keys)
        if wire_ctxs is not None:
            # Context element appended only when present: context-free
            # traffic keeps the pinned header framing byte-for-byte.
            header = header + (wire_ctxs,)
        self._send(channel, header)
        reply = self._wait_reply(channel, slot.index)
        if reply[0] == "shm_stale":
            # The worker could not attach the segment (external
            # /dev/shm cleanup, generation race after a grow):
            # resend this one batch as a slot-routed pipe payload.
            self._stats.count_fallback("stale")
            stacked = (images if isinstance(images, np.ndarray)
                       else np.stack(images))
            stacked = np.ascontiguousarray(stacked, dtype=np.float32)
            pipe_out_bytes = stacked.nbytes
            resend = ("batch_slot", slot.index, method,
                      stacked, labels, targets, keys)
            if wire_ctxs is not None:
                resend = resend + (wire_ctxs,)
            self._send(channel, resend)
            reply = self._wait_reply(channel, slot.index)
        if reply[0] == "error_slot":
            _, _slot, err_method, exc_type, text, remote_tb = reply
            raise WorkerBatchError(err_method, exc_type, text, remote_tb)
        if reply[0] == "ok_pipe":
            # Fallback leg: stale resend, or a reply stack that outgrew
            # the return segment (the byte need grows it for next time).
            _, _slot, payload, batch_ms, ret_need = reply[:5]
            self._apply_wstamps(ctxs,
                                reply[5] if len(reply) > 5 else None)
            if ret_need:
                self._stats.count_fallback("oversize")
                channel.arena.note_ret_need(slot, ret_need)
            saliency = payload[0]
            ret_bytes = (saliency.nbytes if isinstance(saliency, np.ndarray)
                         else sum(m.nbytes for m in saliency))
            self._stats.count_pipe(pipe_out_bytes + ret_bytes)
            return decode_results(payload), float(batch_ms)
        _, _slot, ret_shape, ret_dtype, out_labels, out_targets, metas, \
            batch_ms = reply[:8]
        self._apply_wstamps(ctxs, reply[8] if len(reply) > 8 else None)
        view = channel.arena.ret_view(slot, ret_shape, ret_dtype)
        try:
            results = decode_shm_results(view, out_labels, out_targets,
                                         metas)
        finally:
            del view                        # release the segment buffer
        self._stats.count_shm_ret(
            int(np.prod(ret_shape, dtype=np.int64)) * 4, len(results))
        return results, float(batch_ms)

    def transport_stats(self) -> dict:
        """Snapshot of the transport counters (see
        :meth:`repro.serve.transport.TransportStats.snapshot`), plus the
        live arena footprint in bytes."""
        with self._lock:
            arena_bytes = sum(channel.arena.live_bytes()
                              for channel in self._all
                              if channel.arena is not None
                              and not channel.reaped)
        return self._stats.snapshot(arena_bytes=arena_bytes)

    # -- pool-wide control messages (quiesced, one round-trip) ----------
    def _begin_quiesce(self) -> List[_WorkerChannel]:
        """Block new acquires and wait out in-flight batches; returns
        the live channels.  Must be paired with :meth:`_end_quiesce`."""
        with self._cond:
            self._quiesce += 1
            while any(channel.inflight > 0 for channel in self._all):
                if self._closed or self._live == 0:
                    break
                self._cond.wait(timeout=0.1)
            return [channel for channel in self._all if not channel.dead]

    def _end_quiesce(self) -> None:
        with self._cond:
            self._quiesce -= 1
            self._cond.notify_all()

    def attach_store(self, directory: str, snapshot: list) -> int:
        """Attach a read-only saliency store to every live worker: each
        gets the store *directory* plus the parent's current index
        *snapshot* (see :meth:`repro.serve.store.SaliencyStore.
        index_snapshot`), so workers open without scanning a segment or
        touching the journal — the single-writer parent remains the
        only process that mutates the directory.  Returns the number of
        workers that attached; waits for the pool to go idle first
        (call it before load, or after a drain).  All sends are issued
        before any reply is collected, so an N-worker pool attaches in
        one round-trip, not N."""
        channels = self._begin_quiesce()
        attached = 0
        try:
            pending = []
            for channel in channels:
                try:
                    with channel.send_lock:
                        channel.conn.send(("store", directory, snapshot))
                    pending.append(channel)
                except (EOFError, OSError, BrokenPipeError) as exc:
                    self._mark_dead(channel, exc)
            for channel in pending:
                try:
                    reply = channel.conn.recv()
                except (EOFError, OSError, BrokenPipeError) as exc:
                    self._mark_dead(channel, exc)
                    continue
                if reply[0] == "store_ok":
                    attached += 1
        finally:
            self._end_quiesce()
        return attached

    def worker_stats(self) -> List[dict]:
        """Per-worker ``{pid, batches, maps}`` counters (the dedup
        benchmark sums ``maps`` to verify exactly-once compute across
        processes).  Waits for all live workers to go idle first — call
        it after ``drain()``, not under load.  Like
        :meth:`attach_store`, the probe fans out all sends first and
        then collects replies: one round-trip for the whole pool."""
        channels = self._begin_quiesce()
        stats = []
        try:
            pending = []
            for channel in channels:
                try:
                    with channel.send_lock:
                        channel.conn.send(("stats",))
                    pending.append(channel)
                except (EOFError, OSError, BrokenPipeError) as exc:
                    self._mark_dead(channel, exc)
            for channel in pending:
                try:
                    reply = channel.conn.recv()
                except (EOFError, OSError, BrokenPipeError) as exc:
                    self._mark_dead(channel, exc)
                    continue
                stats.append(reply[1])
        finally:
            self._end_quiesce()
        return stats

    # -- executor contract ---------------------------------------------
    def submit(self, fn: Callable, *args) -> "Future":
        """Thread-pool passthrough for engine-side callables (cache
        fan-out, bookkeeping).  Batch *compute* goes through
        :meth:`run_batch` on a worker process instead."""
        return self._pool.submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        """Stop dispatchers and workers; idempotent, leaves no orphans
        and no shared-memory segments.

        Live workers get a ``stop`` message and a bounded ``join``;
        anything still alive after that (wedged mid-batch on
        ``wait=False``) is terminated.  Every pipe is closed and every
        arena segment unlinked — the parent is the sole owner, so after
        this returns ``/dev/shm`` holds nothing of ours."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._pool.shutdown(wait=wait, cancel_futures=not wait)
        self._terminate_all()
        with self._cond:
            self._live = 0

    def _terminate_all(self) -> None:
        for channel in self._all:
            try:
                if not channel.dead and channel.process.is_alive():
                    with channel.send_lock:
                        channel.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for channel in self._all:
            channel.process.join(timeout=5.0)
            if channel.process.is_alive():
                channel.process.terminate()
                channel.process.join(timeout=1.0)
                if channel.process.is_alive():
                    channel.process.kill()
                    channel.process.join(timeout=1.0)
            try:
                channel.conn.close()
            except OSError:
                pass
            if channel.arena is not None:
                channel.arena.close()       # idempotent parent-side unlink

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False

    def __repr__(self) -> str:
        return (f"ProcessExecutor(workers={self.workers}, "
                f"alive={self.alive_workers}, "
                f"transport={self.transport!r})")


def make_executor(executor: Union[None, str, SerialExecutor,
                                  ThreadedExecutor, "ProcessExecutor"],
                  spec: Optional[EngineSpec] = None,
                  workers: Optional[int] = None):
    """Resolve the engine's ``executor`` argument.

    ``None``/``"serial"`` -> a :class:`SerialExecutor`; ``"threaded"``
    -> a :class:`ThreadedExecutor` (``workers=None`` sizes from the
    visible core count); ``"process"`` -> a :class:`ProcessExecutor`
    (requires ``spec`` — the worker-side model recipe;
    :meth:`repro.eval.pipeline.ExperimentContext.engine` derives one
    automatically).  An object is passed through (it just needs
    ``submit``/``shutdown``/``name``).
    """
    if executor is None or executor == "serial":
        return SerialExecutor()
    if executor == "threaded":
        return ThreadedExecutor(workers=workers)
    if executor == "process":
        if spec is None:
            raise ValueError(
                "executor='process' needs an EngineSpec describing how "
                "workers rebuild the models: pass ProcessExecutor(spec) "
                "directly, or use ExperimentContext.engine("
                "executor='process'), which derives the spec itself")
        return ProcessExecutor(spec, workers=workers or 2)
    if isinstance(executor, str):
        raise ValueError(
            f"unknown executor {executor!r}; use 'serial', 'threaded', "
            "'process', or an executor instance")
    return executor
