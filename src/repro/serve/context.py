"""Request context: the per-request identity that rides every hop.

Before this module the serving layers passed ``(image, label, method,
target)`` positionally, so nothing downstream of the engine facade
could tell an interactive request from a bulk Table II sweep.
:class:`RequestContext` is that seam:

* **Priority class** — one of :data:`PRIORITIES`
  (``interactive`` < ``normal`` < ``bulk``); the scheduler orders ready
  queues by class (with starvation aging, see
  :class:`~repro.serve.scheduler.MicroBatchScheduler`).
* **Deadline** — optional *absolute* ``time.monotonic()`` instant.  A
  request whose deadline passes while it is still queued resolves as
  :class:`DeadlineExceeded` without ever reaching an executor.  On
  Linux ``time.monotonic()`` is ``CLOCK_MONOTONIC``, which is
  system-wide, so the deadline stays meaningful on the worker side of
  a process pool on the same host.
* **Tenant** — opaque id; cache/store/engine stats break out hit and
  served counts per tenant.
* **Trace id + stage stamps** — ``admitted/enqueued/dispatched/
  computed/resolved`` monotonic timestamps stamped by the layer that
  performs each transition, plus ``worker_pid/worker_recv_at/
  worker_done_at`` stamped by a process worker when the batch rode a
  pipe or shm transport.

Legacy callers pass nothing: every engine entry point defaults the
context to ``RequestContext()`` (priority ``normal``, no deadline, no
tenant), so existing code keeps its exact behaviour while new callers
opt into SLO semantics per request.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["PRIORITIES", "PRIORITY_RANK", "DeadlineExceeded",
           "RequestContext"]

#: Priority classes, most to least urgent.  The scheduler flushes ready
#: queues in this order (subject to starvation aging).
PRIORITIES: Tuple[str, ...] = ("interactive", "normal", "bulk")

#: Class -> rank; *lower* rank flushes first.
PRIORITY_RANK = {name: rank for rank, name in enumerate(PRIORITIES)}

#: Stage-stamp attribute suffix order (documentation + test aid).
STAGES: Tuple[str, ...] = ("admitted", "enqueued", "dispatched",
                          "computed", "resolved")


class DeadlineExceeded(RuntimeError):
    """A request's absolute deadline passed before it was computed.

    Raised from ``PendingExplain.result()``; the request was dropped
    from its queue without billing compute (no executor dispatch, no
    cache insert, no adaptive-batching observation).  ``ctx`` carries
    the dead request's :class:`RequestContext` for post-mortems.
    """

    def __init__(self, message: str,
                 ctx: Optional["RequestContext"] = None):
        super().__init__(message)
        self.ctx = ctx


_trace_seq = itertools.count(1)


def _new_trace_id() -> str:
    return f"{os.getpid():x}-{next(_trace_seq):06x}"


@dataclass(eq=False)          # identity semantics: one ctx per handle
class RequestContext:
    """Identity + SLO envelope of one submitted request.

    Stamp ownership (who sets what):

    ===============  ====================================================
    field            stamped by
    ===============  ====================================================
    ``admitted_at``  engine facade, on entry to ``submit``/``submit_async``
    ``enqueued_at``  engine, after the scheduler accepted (or deduped) it
    ``dispatched_at``engine, when the request pops into a micro-batch
    ``computed_at``  engine, when the batch's explainer pass returned
    ``resolved_at``  engine, when the handle's result (or error) is set
    ``worker_*``     process worker, via the pipe/shm reply header
    ===============  ====================================================

    All stamps are ``time.monotonic()`` seconds; :meth:`stamp` is
    set-if-unset so a cache hit (which skips the queue) simply leaves
    the middle stages ``None``.
    """

    priority: str = "normal"
    #: Absolute ``time.monotonic()`` instant, or ``None`` (no SLO).
    deadline: Optional[float] = None
    tenant: Optional[str] = None
    trace_id: str = field(default_factory=_new_trace_id)

    admitted_at: Optional[float] = None
    enqueued_at: Optional[float] = None
    dispatched_at: Optional[float] = None
    computed_at: Optional[float] = None
    resolved_at: Optional[float] = None

    worker_pid: Optional[int] = None
    worker_recv_at: Optional[float] = None
    worker_done_at: Optional[float] = None

    def __post_init__(self):
        if self.priority not in PRIORITY_RANK:
            raise ValueError(
                f"unknown priority {self.priority!r}; "
                f"expected one of {PRIORITIES}")

    # -- construction --------------------------------------------------
    @classmethod
    def ensure(cls, value) -> "RequestContext":
        """Normalize an engine-facade argument: ``None`` -> default
        context, a priority-class string -> context of that class, an
        instance passes through unchanged."""
        if value is None:
            return cls()
        if isinstance(value, str):
            return cls(priority=value)
        if isinstance(value, cls):
            return value
        raise TypeError(f"ctx must be None, a priority string, or "
                        f"RequestContext; got {type(value).__name__}")

    @classmethod
    def with_timeout(cls, timeout_ms: float, **kwargs) -> "RequestContext":
        """Context whose deadline is ``timeout_ms`` from now."""
        return cls(deadline=time.monotonic() + timeout_ms / 1000.0,
                   **kwargs)

    def spawn(self) -> "RequestContext":
        """Fresh-stamped copy sharing identity fields — one per element
        of an ``explain_batch`` call, so stage stamps stay per-request
        while priority/deadline/tenant/trace apply to the whole batch."""
        return RequestContext(priority=self.priority,
                              deadline=self.deadline,
                              tenant=self.tenant,
                              trace_id=self.trace_id)

    # -- SLO probes ----------------------------------------------------
    @property
    def rank(self) -> int:
        return PRIORITY_RANK[self.priority]

    def expired(self, now: Optional[float] = None) -> bool:
        """True when the deadline has passed (``now`` defaults to
        ``time.monotonic()``; pass one clock reading to evaluate many
        contexts consistently).  Deadline-free contexts never expire."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    def remaining_ms(self, now: Optional[float] = None) -> Optional[float]:
        """Milliseconds until the deadline (negative once past it), or
        ``None`` for deadline-free contexts."""
        if self.deadline is None:
            return None
        now = time.monotonic() if now is None else now
        return (self.deadline - now) * 1000.0

    # -- stamping ------------------------------------------------------
    def stamp(self, stage: str) -> "RequestContext":
        """Set ``<stage>_at`` to now if not already set (idempotent)."""
        attr = stage + "_at"
        if getattr(self, attr) is None:
            setattr(self, attr, time.monotonic())
        return self

    def absorb(self, other: "RequestContext") -> "RequestContext":
        """Copy pipeline stamps a shared computation collected onto this
        handle's context (dedup fan-out: many handles, one compute)."""
        for stage in ("enqueued", "dispatched", "computed"):
            attr = stage + "_at"
            if getattr(self, attr) is None:
                setattr(self, attr, getattr(other, attr))
        if self.worker_pid is None:
            self.worker_pid = other.worker_pid
            self.worker_recv_at = other.worker_recv_at
            self.worker_done_at = other.worker_done_at
        return self

    def latency_ms(self) -> Optional[float]:
        """Admission-to-resolution wall time, or ``None`` if unfinished."""
        if self.admitted_at is None or self.resolved_at is None:
            return None
        return (self.resolved_at - self.admitted_at) * 1000.0
