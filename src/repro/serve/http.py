"""HTTP/JSON service tier: the network front end over ``ExplainEngine``.

Everything below the wire is the existing in-process runtime — this
module only translates HTTP requests into engine calls and engine
outcomes into status codes.  Stdlib only (``http.server`` +
``socketserver`` threading mix-in): one handler thread per connection,
all of them submitting into the same admission-controlled engine, whose
micro-batching turns concurrent requests into shared explainer passes.

Endpoints
---------
``POST /v1/explain``
    One image + method (+ optional ``label``, ``target``, ``priority``,
    ``deadline_ms``).  Default is the **inline** mode: the response
    carries the saliency map (the handler thread waits on the engine —
    concurrent requests still batch).  ``"mode": "async"`` instead
    returns ``202`` with a ticket id to poll.
``GET /v1/tickets/<id>``
    Poll an async submit: ``202`` while pending, ``200`` with the
    result exactly once (the ticket is retired on delivery), ``404``
    for unknown/expired/foreign tickets.
``POST /v1/batch``
    Many images through :meth:`ExplainEngine.explain_batch`, so a
    remote sweep shares the admission pipeline (and dedup, and the
    cache) with live traffic.
``GET /v1/stats``
    Full ``engine.stats()`` passthrough plus the service's own counters.
``GET /healthz``
    Liveness + drain state.  Never requires auth; stays ``200`` while
    draining (the process is alive — readiness is the ``draining``
    flag).

Authentication & tenancy
------------------------
With ``api_keys`` configured, every ``/v1/*`` request must carry a key
(``X-API-Key: <key>`` or ``Authorization: Bearer <key>``); the key
resolves to an opaque **tenant id** stamped on the request's
:class:`~repro.serve.context.RequestContext`, so per-tenant accounting
and the per-tenant **quota** admission (PR 9's follow-on) apply: a
tenant over its slice gets ``429`` with a ``Retry-After`` header while
other tenants keep being served.  Without ``api_keys`` the service is
open (tenant ``None`` — accounting only).

Error mapping
-------------
===========================================  =====
engine outcome                               status
===========================================  =====
malformed JSON / bad image / bad field       400
missing or unknown API key                   401
unknown explain method, unknown route        404
request body over ``max_body_bytes``         413
:class:`~repro.serve.engine.TenantOverQuota` 429 (+ ``Retry-After``)
draining, or global ``EngineOverloaded``     503 (+ ``Retry-After``)
:class:`~repro.serve.DeadlineExceeded`       504
===========================================  =====

Graceful drain
--------------
:meth:`HttpDaemon.begin_drain` flips the service into drain mode: new
``POST`` work gets ``503``, while ``GET`` endpoints (tickets, stats,
health) keep answering so clients can collect in-flight results; the
engine's ``drain()`` then resolves everything queued or in flight —
the same drain-before-shutdown contract ``close()`` honours.
``tools/serve_daemon.py`` wires SIGTERM/SIGINT to exactly this
sequence.

This daemon is a serving-tier demonstrator, not a hardened edge: bind
it to loopback (the default) or put a real proxy in front.
"""

from __future__ import annotations

import base64
import json
import threading
import time
import uuid
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

import numpy as np

from .context import PRIORITIES, DeadlineExceeded, RequestContext
from .engine import EngineOverloaded, ExplainEngine, TenantOverQuota

__all__ = ["ApiKey", "ServiceConfig", "ExplainService", "HttpDaemon",
           "HttpError", "serve", "encode_array", "decode_array"]

#: Flush deadline (ms) applied to engines that arrive without one: an
#: async ticket on a partial micro-batch must become "ready" by age so
#: the kicker thread can dispatch it without a client blocking.
DEFAULT_FLUSH_MS = 25.0


class HttpError(Exception):
    """An error with a wire status; handlers raise it anywhere and the
    dispatch loop turns it into a JSON error body.

    Parameters
    ----------
    status:
        HTTP status code to send.
    message:
        Human-readable error string (returned as ``{"error": ...}``).
    headers:
        Extra response headers (e.g. ``Retry-After``).
    """

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


# ----------------------------------------------------------------------
# Wire codec: ndarrays as JSON objects.
def encode_array(array: np.ndarray, encoding: str = "b64") -> dict:
    """Encode an ndarray for the JSON wire.

    ``"b64"`` (default) carries the raw little-endian bytes base64'd
    next to ``shape``/``dtype`` — compact and bit-exact; ``"list"``
    nests plain JSON lists — bulkier, but curl/jq-friendly.
    """
    array = np.ascontiguousarray(array)
    if encoding == "list":
        return {"shape": list(array.shape), "dtype": str(array.dtype),
                "data": array.tolist()}
    if encoding != "b64":
        raise HttpError(400, f"unknown encoding {encoding!r}; "
                             "use 'b64' or 'list'")
    little = array.astype(array.dtype.newbyteorder("<"), copy=False)
    return {"shape": list(array.shape), "dtype": str(array.dtype),
            "b64": base64.b64encode(little.tobytes()).decode("ascii")}


def decode_array(obj, dtype=np.float32) -> np.ndarray:
    """Decode a request image: either the :func:`encode_array` dict
    form (``b64`` or ``data``) or bare nested lists.  Raises
    :class:`HttpError` 400 on anything malformed."""
    try:
        if isinstance(obj, dict):
            shape = tuple(int(d) for d in obj["shape"])
            want = np.dtype(obj.get("dtype", "float32"))
            if "b64" in obj:
                raw = base64.b64decode(obj["b64"], validate=True)
                array = np.frombuffer(raw, dtype=want.newbyteorder("<"))
                array = array.reshape(shape)
            else:
                array = np.asarray(obj["data"], dtype=want)
                if array.shape != shape:
                    raise ValueError(
                        f"data has shape {array.shape}, header says "
                        f"{shape}")
        else:
            array = np.asarray(obj, dtype=dtype)
    except HttpError:
        raise
    except Exception as exc:               # noqa: BLE001 — wire input
        raise HttpError(400, f"cannot decode image: {exc}")
    array = np.asarray(array, dtype=dtype)
    if array.ndim != 3:
        raise HttpError(400, "image must be (channels, height, width); "
                             f"got shape {tuple(array.shape)}")
    if not np.isfinite(array).all():
        raise HttpError(400, "image contains NaN or infinite values")
    return array


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ApiKey:
    """One API key's identity: the tenant it resolves to, plus an
    optional per-tenant quota slice (merged into the engine's
    ``tenant_quotas`` at service start)."""

    tenant: str
    quota: Optional[int] = None


@dataclass
class ServiceConfig:
    """Service-tier knobs (the engine brings its own).

    Parameters
    ----------
    api_keys:
        ``key -> ApiKey`` table.  ``None`` (default) leaves the service
        open: requests run as the anonymous tenant with accounting
        only.  With a table, every ``/v1/*`` request must present a
        known key or gets ``401``.
    ticket_ttl_s:
        Unclaimed async tickets are purged this many seconds after
        creation (a client that never polls must not leak results).
    max_body_bytes:
        Request bodies over this limit get ``413``.
    kick_interval_s:
        Period of the background kicker thread that sweeps the engine
        (``engine.kick()``): dispatches age-ready partial batches and
        expires dead requests, so async tickets resolve without any
        client blocking on them.
    flush_ms:
        Flush deadline installed on engines that have none
        (``max_delay_ms=None``) — without one, a partial micro-batch
        never becomes ready by age and a lone async ticket would only
        resolve when a sync request happened to flush its method.
    verbose:
        Log one line per request to stderr (the ``BaseHTTPRequestHandler``
        format).  Off by default: the handler runs per-request threads
        and stderr logging is a measurable cost at bench rates.
    """

    api_keys: Optional[Dict[str, ApiKey]] = None
    ticket_ttl_s: float = 300.0
    max_body_bytes: int = 64 * 1024 * 1024
    kick_interval_s: float = 0.025
    flush_ms: float = DEFAULT_FLUSH_MS
    verbose: bool = False


@dataclass
class _Ticket:
    """One async submit awaiting pickup."""

    handle: object
    tenant: Optional[str]
    method: str
    encoding: str
    created: float = field(default_factory=time.monotonic)


def _jsonable(value):
    """JSON fallback for numpy scalars (engine stats carry a few)."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


class ExplainService:
    """The engine-facing half of the daemon: auth, tickets, drain state,
    and the request -> engine translation.  The HTTP handler below is a
    thin parser around these methods, so tests can drive the service
    in-process and the wire layer stays trivial.

    The service installs a flush deadline on engines that lack one and
    runs a background *kicker* thread calling ``engine.kick()`` every
    ``kick_interval_s`` — that sweep dispatches age-ready partial
    batches and resolves deadline-expired requests, which is what makes
    async tickets complete without a client thread blocking on them.
    """

    def __init__(self, engine: ExplainEngine,
                 config: Optional[ServiceConfig] = None):
        self.engine = engine
        self.config = config or ServiceConfig()
        self.started_at = time.monotonic()
        self.draining = False
        self._lock = threading.Lock()
        self._tickets: Dict[str, _Ticket] = {}
        #: endpoint -> request count, plus per-status error counts.
        self.counters: Dict[str, int] = {}
        # Per-key quotas become per-tenant quotas on the engine (the
        # engine is the single admission authority; the service never
        # keeps its own counts).
        if self.config.api_keys:
            for key_info in self.config.api_keys.values():
                if key_info.quota is not None:
                    engine.tenant_quotas[key_info.tenant] = key_info.quota
        # Async tickets ride partial micro-batches; without a flush
        # deadline those never become ready by age and only resolve
        # when some other request flushes the method.  Same-package
        # reach into the scheduler, applied once before any traffic.
        if engine.max_delay_ms is None:
            engine._scheduler.max_delay_ms = self.config.flush_ms
        self._stop = threading.Event()
        self._kicker = threading.Thread(target=self._kick_loop,
                                        name="serve-http-kicker",
                                        daemon=True)
        self._kicker.start()

    # -- lifecycle -----------------------------------------------------
    def _kick_loop(self) -> None:
        while not self._stop.wait(self.config.kick_interval_s):
            try:
                self.engine.kick()
            except Exception:              # noqa: BLE001 — engine closing
                pass

    def begin_drain(self) -> None:
        """Flip into drain mode: new ``POST`` work gets ``503``; GETs
        (tickets/stats/health) keep answering."""
        self.draining = True

    def drain(self) -> None:
        """``begin_drain`` + resolve everything queued or in flight, so
        every outstanding ticket is answerable before shutdown."""
        self.begin_drain()
        self.engine.drain()

    def close(self) -> None:
        """Stop the kicker thread (idempotent; does not close the
        engine — the caller that built the engine owns it)."""
        self._stop.set()
        if self._kicker.is_alive():
            self._kicker.join(timeout=2.0)

    # -- auth ----------------------------------------------------------
    def resolve_tenant(self, headers) -> Optional[str]:
        """Map request headers to a tenant id.

        Open service (no ``api_keys``): always the anonymous tenant.
        Keyed service: ``X-API-Key`` or ``Authorization: Bearer`` must
        name a known key; raises :class:`HttpError` 401 otherwise.
        """
        if not self.config.api_keys:
            return None
        key = headers.get("X-API-Key")
        if key is None:
            auth = headers.get("Authorization", "")
            if auth.startswith("Bearer "):
                key = auth[len("Bearer "):].strip()
        if key is None:
            raise HttpError(401, "missing API key (X-API-Key header or "
                                 "Authorization: Bearer)",
                            {"WWW-Authenticate": "Bearer"})
        info = self.config.api_keys.get(key)
        if info is None:
            raise HttpError(401, "unknown API key",
                            {"WWW-Authenticate": "Bearer"})
        return info.tenant

    # -- request translation -------------------------------------------
    def _count(self, name: str) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + 1

    def _require_live(self) -> None:
        if self.draining:
            raise HttpError(503, "draining: not accepting new work",
                            {"Retry-After": "5"})

    def _context(self, payload: dict, tenant: Optional[str]
                 ) -> RequestContext:
        priority = payload.get("priority", "normal")
        if priority not in PRIORITIES:
            raise HttpError(400, f"unknown priority {priority!r}; "
                                 f"use one of {PRIORITIES}")
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is None:
            return RequestContext(priority=priority, tenant=tenant)
        try:
            deadline_ms = float(deadline_ms)
            if deadline_ms <= 0:
                raise ValueError
        except (TypeError, ValueError):
            raise HttpError(400, "deadline_ms must be a positive number")
        return RequestContext.with_timeout(deadline_ms, priority=priority,
                                           tenant=tenant)

    def _method(self, payload: dict) -> str:
        method = payload.get("method")
        if not isinstance(method, str) or not method:
            raise HttpError(400, "missing 'method'")
        if method not in self.engine.explainers:
            raise HttpError(
                404, f"unknown method {method!r}; this engine serves "
                     f"{sorted(self.engine.explainers)}")
        return method

    def _label(self, payload: dict, image: np.ndarray, key: str = "label"
               ) -> int:
        """The request's label, or the classifier's argmax when omitted
        (``label`` is what the explainer explains — most clients want
        "why did *you* call it that", i.e. the model's own call)."""
        label = payload.get(key)
        if label is None:
            return int(self.engine.classifier.predict(image[None])[0])
        try:
            return int(label)
        except (TypeError, ValueError):
            raise HttpError(400, f"{key!r} must be an integer")

    def _encode_result(self, result, encoding: str, ctx: RequestContext,
                       cache_hit: bool) -> dict:
        return {
            "saliency": encode_array(np.asarray(result.saliency,
                                                dtype=np.float32),
                                     encoding),
            "label": int(result.label),
            "target_label": (None if result.target_label is None
                             else int(result.target_label)),
            "image_digest": result.image_digest,
            "cache_hit": bool(cache_hit),
            "trace_id": ctx.trace_id,
            "priority": ctx.priority,
            "tenant": ctx.tenant,
            "latency_ms": ctx.latency_ms(),
        }

    @staticmethod
    def _translate(exc: Exception) -> HttpError:
        """Engine exception -> wire status (see module docstring)."""
        if isinstance(exc, TenantOverQuota):
            return HttpError(
                429, str(exc),
                {"Retry-After": f"{max(1, round(exc.retry_after_s)):d}"})
        if isinstance(exc, EngineOverloaded):
            return HttpError(503, str(exc), {"Retry-After": "1"})
        if isinstance(exc, DeadlineExceeded):
            return HttpError(504, str(exc))
        return HttpError(500, f"{type(exc).__name__}: {exc}")

    # -- endpoints -----------------------------------------------------
    def explain(self, payload: dict, tenant: Optional[str]
                ) -> Tuple[int, dict]:
        """``POST /v1/explain`` — returns ``(status, body)``.

        Inline mode waits on the engine (still batched across
        concurrent handler threads); ``"mode": "async"`` submits and
        returns a ticket immediately.
        """
        self._require_live()
        self._count("explain")
        method = self._method(payload)
        image = decode_array(payload.get("image"))
        label = self._label(payload, image)
        target = payload.get("target")
        target = None if target is None else int(target)
        encoding = payload.get("encoding", "b64")
        mode = payload.get("mode", "sync")
        if mode not in ("sync", "async"):
            raise HttpError(400, f"unknown mode {mode!r}; "
                                 "use 'sync' or 'async'")
        ctx = self._context(payload, tenant)
        try:
            handle = self.engine.submit_async(image, label, method,
                                              target, ctx=ctx)
        except Exception as exc:           # noqa: BLE001 — translated
            raise self._translate(exc)
        if mode == "async":
            ticket_id = uuid.uuid4().hex
            with self._lock:
                self._purge_tickets_locked()
                self._tickets[ticket_id] = _Ticket(handle, tenant, method,
                                                   encoding)
            return 202, {"ticket": ticket_id,
                         "href": f"/v1/tickets/{ticket_id}",
                         "trace_id": ctx.trace_id}
        try:
            result = handle.result()
        except Exception as exc:           # noqa: BLE001 — translated
            raise self._translate(exc)
        return 200, self._encode_result(result, encoding, ctx,
                                        handle.cache_hit)

    def batch(self, payload: dict, tenant: Optional[str]
              ) -> Tuple[int, dict]:
        """``POST /v1/batch`` — a sweep through ``explain_batch`` so it
        shares admission (and dedup, and both cache tiers) with live
        traffic.  One template context covers the whole batch; stage
        stamps stay per-element."""
        self._require_live()
        self._count("batch")
        method = self._method(payload)
        raw_images = payload.get("images")
        if not isinstance(raw_images, list) or not raw_images:
            raise HttpError(400, "'images' must be a non-empty list")
        images = [decode_array(obj) for obj in raw_images]
        labels = payload.get("labels")
        if labels is None:
            labels = [self._label({}, img) for img in images]
        elif len(labels) != len(images):
            raise HttpError(400, f"{len(labels)} labels for "
                                 f"{len(images)} images")
        targets = payload.get("targets")
        if targets is not None and len(targets) != len(images):
            raise HttpError(400, f"{len(targets)} targets for "
                                 f"{len(images)} images")
        encoding = payload.get("encoding", "b64")
        template = self._context(payload, tenant)
        try:
            handles = [
                self.engine.submit_async(
                    images[i], int(labels[i]), method,
                    None if targets is None or targets[i] is None
                    else int(targets[i]),
                    ctx=template.spawn())
                for i in range(len(images))
            ]
            self.engine.flush(method)
            results = []
            for handle in handles:
                result = handle.result()
                results.append(self._encode_result(
                    result, encoding, handle.ctx, handle.cache_hit))
        except HttpError:
            raise
        except Exception as exc:           # noqa: BLE001 — translated
            raise self._translate(exc)
        return 200, {"count": len(results), "results": results}

    def ticket(self, ticket_id: str, tenant: Optional[str]
               ) -> Tuple[int, dict]:
        """``GET /v1/tickets/<id>`` — ``202`` while pending, ``200``
        with the result exactly once (delivery retires the ticket),
        ``404`` for unknown/expired tickets or another tenant's ticket
        (existence is not leaked across tenants)."""
        self._count("ticket")
        with self._lock:
            self._purge_tickets_locked()
            entry = self._tickets.get(ticket_id)
        if entry is None or entry.tenant != tenant:
            raise HttpError(404, "unknown ticket")
        handle = entry.handle
        if not handle.done:
            # kick(): expire dead requests, dispatch age-ready batches.
            self.engine.kick()
        if not handle.done:
            return 202, {"status": "pending", "ticket": ticket_id}
        with self._lock:
            self._tickets.pop(ticket_id, None)
        try:
            result = handle.result()
        except Exception as exc:           # noqa: BLE001 — translated
            raise self._translate(exc)
        return 200, self._encode_result(result, entry.encoding,
                                        handle.ctx, handle.cache_hit)

    def _purge_tickets_locked(self) -> None:
        ttl = self.config.ticket_ttl_s
        now = time.monotonic()
        dead = [tid for tid, t in self._tickets.items()
                if now - t.created > ttl]
        for tid in dead:
            del self._tickets[tid]

    def stats(self) -> Tuple[int, dict]:
        """``GET /v1/stats`` — engine stats passthrough + service
        counters."""
        self._count("stats")
        with self._lock:
            service = {
                "draining": self.draining,
                "uptime_s": round(time.monotonic() - self.started_at, 3),
                "tickets_outstanding": len(self._tickets),
                "counters": dict(self.counters),
                "auth": bool(self.config.api_keys),
            }
        return 200, {"engine": self.engine.stats(), "service": service}

    def health(self) -> Tuple[int, dict]:
        """``GET /healthz`` — liveness + drain state (never auth'd)."""
        self._count("healthz")
        return 200, {
            "status": "draining" if self.draining else "ok",
            "draining": self.draining,
            "methods": sorted(self.engine.explainers),
            "pending": self.engine.pending_count(),
            "uptime_s": round(time.monotonic() - self.started_at, 3),
        }


# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    """Thin wire layer: route, auth, parse JSON, call the service,
    serialize.  HTTP/1.1 with explicit ``Content-Length`` on every
    response, so clients can keep connections alive (the loopback
    benchmark does)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"
    # Headers and body leave in separate writes; with Nagle on, the
    # second write stalls behind the client's delayed ACK (~40ms per
    # response on loopback, which would dominate every latency number).
    disable_nagle_algorithm = True

    @property
    def service(self) -> ExplainService:
        return self.server.service       # type: ignore[attr-defined]

    def log_message(self, fmt, *args):   # noqa: D102 — quiet by default
        if self.service.config.verbose:
            super().log_message(fmt, *args)

    # -- plumbing ------------------------------------------------------
    def _send(self, status: int, body: dict,
              headers: Optional[Dict[str, str]] = None) -> None:
        data = json.dumps(body, default=_jsonable).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _error(self, err: HttpError) -> None:
        self.service._count(f"error_{err.status}")
        self._send(err.status, {"error": err.message}, err.headers)

    def _json_body(self) -> dict:
        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            raise HttpError(411, "Content-Length required")
        if length > self.service.config.max_body_bytes:
            raise HttpError(413, f"body of {length} bytes exceeds the "
                                 f"{self.service.config.max_body_bytes}"
                                 " byte limit")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"malformed JSON: {exc}")
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
        return body

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:            # noqa: N802 — http.server API
        try:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/healthz":
                status, body = self.service.health()
            elif path == "/v1/stats":
                tenant = self.service.resolve_tenant(self.headers)
                del tenant               # stats are engine-wide
                status, body = self.service.stats()
            elif path.startswith("/v1/tickets/"):
                tenant = self.service.resolve_tenant(self.headers)
                ticket_id = path[len("/v1/tickets/"):]
                status, body = self.service.ticket(ticket_id, tenant)
            else:
                raise HttpError(404, f"no route {path!r}")
            self._send(status, body)
        except HttpError as err:
            self._error(err)
        except Exception as exc:         # noqa: BLE001 — wire boundary
            self._error(HttpError(500, f"{type(exc).__name__}: {exc}"))

    def do_POST(self) -> None:           # noqa: N802 — http.server API
        try:
            path = self.path.split("?", 1)[0].rstrip("/")
            if path == "/v1/explain":
                tenant = self.service.resolve_tenant(self.headers)
                status, body = self.service.explain(self._json_body(),
                                                    tenant)
            elif path == "/v1/batch":
                tenant = self.service.resolve_tenant(self.headers)
                status, body = self.service.batch(self._json_body(),
                                                  tenant)
            else:
                raise HttpError(404, f"no route {path!r}")
            self._send(status, body)
        except HttpError as err:
            self._error(err)
        except Exception as exc:         # noqa: BLE001 — wire boundary
            self._error(HttpError(500, f"{type(exc).__name__}: {exc}"))


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: ExplainService):
        self.service = service
        super().__init__(address, _Handler)


class HttpDaemon:
    """A running HTTP front end: server + serving thread + service.

    Use :func:`serve` to construct one.  ``with``-friendly:
    ``__exit__`` performs the full graceful sequence (drain, stop,
    close the service — the engine stays the caller's to close).
    """

    def __init__(self, service: ExplainService, server: _Server,
                 thread: threading.Thread):
        self.service = service
        self.server = server
        self.thread = thread
        host, port = server.server_address[:2]
        self.host, self.port = host, port
        self.url = f"http://{host}:{port}"

    @property
    def engine(self) -> ExplainEngine:
        return self.service.engine

    def begin_drain(self) -> None:
        """New POST work gets ``503`` from now on; GETs keep serving."""
        self.service.begin_drain()

    def drain(self) -> None:
        """``begin_drain`` + resolve every queued/in-flight request, so
        all outstanding tickets become deliverable."""
        self.service.drain()

    def shutdown(self) -> None:
        """Stop accepting connections and join the serving thread
        (idempotent).  Call :meth:`drain` first for the graceful
        sequence; this alone is the hard stop."""
        self.server.shutdown()
        self.server.server_close()
        if self.thread.is_alive():
            self.thread.join(timeout=5.0)
        self.service.close()

    def __enter__(self) -> "HttpDaemon":
        return self

    def __exit__(self, *exc) -> bool:
        try:
            self.drain()
        except Exception:                # noqa: BLE001 — shutdown path
            pass
        self.shutdown()
        return False


def serve(engine: ExplainEngine, host: str = "127.0.0.1", port: int = 0,
          config: Optional[ServiceConfig] = None) -> HttpDaemon:
    """Start the HTTP front end over ``engine`` on ``host:port``.

    ``port=0`` binds an ephemeral port (read it back from
    ``daemon.port`` — how the tests and the loopback benchmark avoid
    collisions).  Returns a running :class:`HttpDaemon`; the caller
    keeps ownership of the engine (``daemon`` drains it but never
    closes it).

    Raises ``OSError`` when the address cannot be bound.
    """
    service = ExplainService(engine, config)
    server = _Server((host, port), service)
    thread = threading.Thread(target=server.serve_forever,
                              name="serve-http", daemon=True)
    thread.start()
    return HttpDaemon(service, server, thread)
