"""Micro-batch scheduling: per-``(method, shape)`` queues with dedup.

The scheduler owns the pending-request state of the engine runtime:

* **Queue keying** — requests queue per ``(method, image_shape)``, so
  one engine serves heterogeneous datasets: a 32x32 brain image and a
  16x16 OCT image of the same method occupy independent queues that
  batch and flush independently (``np.stack`` never sees mixed shapes).
* **Cross-request dedup** — a submit whose ``(digest, method, label,
  target)`` key is already queued *or in flight* (popped into a running
  batch) attaches its handle to the existing request instead of
  enqueueing a second compute; when the batch completes, the one result
  fans out to every attached handle.  Duplicate-heavy traffic (and
  duplicate images inside one synchronous ``explain_batch``) therefore
  cost one explainer pass per unique request.
* **Adaptive micro-batching** — with ``min_batch`` set, every queue
  carries its own flush limit that ramps between ``min_batch`` and
  ``max_batch`` from the observed per-map latency of its recent batches
  (see :class:`MicroBatchScheduler`).

The scheduler is *externally synchronized*: the engine calls every
mutating method under its own lock.  Keeping the lock out of this class
lets the engine compose enqueue + dispatch decisions atomically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .cache import CacheKey

#: Queue identity: one micro-batch queue per (method, image shape).
QueueKey = Tuple[str, Tuple[int, ...]]


@dataclass(eq=False)          # identity semantics (fields hold ndarrays)
class ExplainRequest:
    """One unique queued computation, fanning out to >= 1 handles."""

    image: np.ndarray
    label: int
    target_label: Optional[int]
    key: CacheKey
    queue_key: QueueKey
    handles: List = field(default_factory=list)
    enqueued_at: float = field(default_factory=time.monotonic)
    #: Set while a dispatched batch containing this request is running.
    future: Optional[object] = None
    #: True when this request occupies an admission slot (it was
    #: ingested through the bounded async path); sync submits are
    #: self-limiting and never consume the ``max_pending`` budget.
    counted: bool = False


class MicroBatchScheduler:
    """Deduplicating per-``(method, shape)`` request queues.

    ``max_batch`` counts *unique* requests: attaching a duplicate handle
    never grows a micro-batch.  ``max_delay_ms`` bounds how long the
    oldest queued request of a queue may wait before :meth:`enqueue`
    reports the queue ready (``None`` disables the deadline).

    **Adaptive micro-batching** — with ``min_batch`` set, the flush
    threshold is no longer one global knob: each ``(method, shape)``
    queue carries its own limit that ramps between ``min_batch`` and
    ``max_batch`` from the observed per-map latency of its recent
    batches (:meth:`observe`, an EWMA).  A queue's limit targets
    ``target_batch_ms`` of compute per batch: cheap methods (occlusion,
    CAE) ramp wide and amortise dispatch overhead, while an expensive
    method (StyLEx, ~1000x a CAE map) settles at small batches so one
    flush never holds its handles — or a worker — for seconds.  Limits
    ramp *up* by at most doubling per observed batch (a single lucky
    timing can't over-commit the next flush) and clamp *down*
    immediately (tail latency recovers within one batch).
    """

    def __init__(self, max_batch: int = 16,
                 max_delay_ms: Optional[float] = None,
                 min_batch: Optional[int] = None,
                 target_batch_ms: float = 200.0):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if min_batch is not None and not 1 <= min_batch <= max_batch:
            raise ValueError("min_batch must satisfy "
                             "1 <= min_batch <= max_batch")
        if target_batch_ms <= 0:
            raise ValueError("target_batch_ms must be > 0")
        self.max_batch = max_batch
        self.max_delay_ms = max_delay_ms
        self.min_batch = min_batch
        self.target_batch_ms = target_batch_ms
        self.adaptive = min_batch is not None
        self._queues: Dict[QueueKey, List[ExplainRequest]] = {}
        self._by_key: Dict[QueueKey, Dict[CacheKey, ExplainRequest]] = {}
        #: key -> request for batches popped but not yet completed, so
        #: duplicates arriving while their twin computes still dedup.
        self._inflight: Dict[QueueKey, Dict[CacheKey, ExplainRequest]] = {}
        #: Adaptive state: per-queue flush limit and per-map ms EWMA.
        self._limits: Dict[QueueKey, int] = {}
        self._ewma_ms: Dict[QueueKey, float] = {}
        self.dedup_hits = 0

    # ------------------------------------------------------------------
    def batch_limit(self, queue_key: QueueKey) -> int:
        """Current flush threshold of one queue (``max_batch`` when the
        scheduler is static; ramps from ``min_batch`` when adaptive)."""
        if not self.adaptive:
            return self.max_batch
        return self._limits.get(queue_key, self.min_batch)

    def batch_limits(self) -> Dict[str, int]:
        """JSON-friendly ``"method@HxW" -> limit`` snapshot (queues that
        have been observed at least once; others sit at the default)."""
        return {f"{m}@{'x'.join(str(d) for d in shape)}": limit
                for (m, shape), limit in sorted(self._limits.items())}

    def observe(self, queue_key: QueueKey, batch_ms: float,
                batch_size: int) -> None:
        """Feed one completed batch's wall time back into the queue's
        adaptive limit (no-op for a static scheduler)."""
        if not self.adaptive or batch_size < 1:
            return
        per_map = batch_ms / batch_size
        prev = self._ewma_ms.get(queue_key)
        ewma = per_map if prev is None else 0.5 * prev + 0.5 * per_map
        self._ewma_ms[queue_key] = ewma
        desired = int(self.target_batch_ms / max(ewma, 1e-6))
        limit = self.batch_limit(queue_key)
        ramped = min(desired, limit * 2)           # up: at most double
        self._limits[queue_key] = max(self.min_batch,
                                      min(ramped, self.max_batch))

    # ------------------------------------------------------------------
    def _deadline_hit(self, queue: List[ExplainRequest]) -> bool:
        return (self.max_delay_ms is not None and bool(queue)
                and (time.monotonic() - queue[0].enqueued_at) * 1000.0
                >= self.max_delay_ms)

    def _ready(self, queue_key: QueueKey,
               queue: List[ExplainRequest]) -> bool:
        return (len(queue) >= self.batch_limit(queue_key)
                or self._deadline_hit(queue))

    # ------------------------------------------------------------------
    def enqueue(self, method: str, image: np.ndarray, label: int,
                target_label: Optional[int], key: CacheKey,
                handle) -> Tuple[ExplainRequest, bool, bool]:
        """Queue (or dedup onto) a request; returns
        ``(request, deduped, queue_ready)``.

        A *new* request owns a private copy of ``image`` (the caller
        may reuse its buffer before the batch flushes, and ``key`` was
        digested from the bytes as they are now); a deduped submit
        attaches its handle without paying the copy.  Dedup covers both
        still-queued requests and **in-flight** ones (popped into a
        running batch but not yet completed), so duplicate traffic
        never recomputes even when its twin is already executing.
        """
        queue_key: QueueKey = (method, tuple(image.shape))
        queue = self._queues.setdefault(queue_key, [])
        bucket = self._by_key.setdefault(queue_key, {})
        request = self.lookup(queue_key, key)
        if request is not None:
            request.handles.append(handle)
            self.dedup_hits += 1
            deduped = True
        else:
            request = ExplainRequest(np.array(image, copy=True), int(label),
                                     target_label, key, queue_key,
                                     handles=[handle])
            queue.append(request)
            bucket[key] = request
            deduped = False
        return request, deduped, self._ready(queue_key, queue)

    def lookup(self, queue_key: QueueKey,
               key: CacheKey) -> Optional[ExplainRequest]:
        """The queued-or-in-flight request a submit of ``key`` would
        dedup onto, or ``None`` (the admission controller probes this
        before deciding whether a submit adds unique work)."""
        request = self._by_key.get(queue_key, {}).get(key)
        if request is None:
            request = self._inflight.get(queue_key, {}).get(key)
        return request

    def discard(self, request: ExplainRequest) -> bool:
        """Drop a still-queued request (submit-failure cleanup)."""
        queue = self._queues.get(request.queue_key)
        if queue and request in queue:
            queue.remove(request)
            self._by_key[request.queue_key].pop(request.key, None)
            return True
        return False

    # ------------------------------------------------------------------
    def _pop_chunk(self, queue_key: QueueKey) -> List[ExplainRequest]:
        queue = self._queues[queue_key]
        chunk = queue[:self.batch_limit(queue_key)]
        del queue[:len(chunk)]
        bucket = self._by_key[queue_key]
        inflight = self._inflight.setdefault(queue_key, {})
        for request in chunk:
            bucket.pop(request.key, None)
            inflight[request.key] = request
        return chunk

    def mark_complete(self, requests: List[ExplainRequest]) -> None:
        """Retire completed requests from the in-flight dedup map.

        Must be called in the same critical section that resolves the
        requests' handles, so a duplicate submit either attaches before
        resolution (and is resolved with the batch) or arrives after
        the key left the map (and re-probes the cache).
        """
        for request in requests:
            self._inflight.get(request.queue_key, {}).pop(request.key,
                                                          None)

    def pop_batches(self, method: Optional[str] = None
                    ) -> List[Tuple[QueueKey, List[ExplainRequest]]]:
        """Drain every pending request (for one method or all) into
        micro-batches of at most ``max_batch`` unique requests."""
        batches = []
        for queue_key in list(self._queues):
            if method is not None and queue_key[0] != method:
                continue
            while self._queues[queue_key]:
                batches.append((queue_key, self._pop_chunk(queue_key)))
        return batches

    def pop_ready(self, method: Optional[str] = None
                  ) -> List[Tuple[QueueKey, List[ExplainRequest]]]:
        """Pop only the queues that hit ``max_batch`` or the deadline,
        leaving partial queues to keep accumulating (async ingestion)."""
        batches = []
        for queue_key in list(self._queues):
            if method is not None and queue_key[0] != method:
                continue
            while self._ready(queue_key, self._queues[queue_key]):
                batches.append((queue_key, self._pop_chunk(queue_key)))
        return batches

    def requeue_front(self, queue_key: QueueKey,
                      requests: List[ExplainRequest]
                      ) -> List[ExplainRequest]:
        """Put a failed batch back at the queue front for a retry.

        A duplicate of a failed request may have been enqueued while the
        batch ran; its handles are merged onto the requeued request so
        no handle is ever split across two computations.  Returns the
        requests that merged away (unique pending work shrank by them —
        the engine's admission accounting needs to settle their slots).
        """
        queue = self._queues.setdefault(queue_key, [])
        bucket = self._by_key.setdefault(queue_key, {})
        inflight = self._inflight.get(queue_key, {})
        keep = []
        merged = []
        for request in requests:
            inflight.pop(request.key, None)
            newer = bucket.get(request.key)
            if newer is not None:
                newer.handles.extend(request.handles)
                self.dedup_hits += 1
                merged.append(request)
            else:
                bucket[request.key] = request
                keep.append(request)
        queue[0:0] = keep
        return merged

    # ------------------------------------------------------------------
    def pending_count(self, method: Optional[str] = None) -> int:
        """Unique queued computations (deduped handles count once)."""
        return sum(len(q) for key, q in self._queues.items()
                   if method is None or key[0] == method)

    def pending_handles(self, method: Optional[str] = None) -> int:
        """Unresolved handles attached to queued **or in-flight**
        requests.

        Requests popped into a running batch stay in the in-flight dedup
        map until :meth:`mark_complete` retires them in the same
        critical section that resolves their handles — so every handle
        is counted here exactly until the moment it is done, and
        dashboards never watch handles vanish mid-flight.
        """
        queued = sum(len(r.handles) for key, q in self._queues.items()
                     if method is None or key[0] == method for r in q)
        inflight = sum(len(r.handles)
                       for key, bucket in self._inflight.items()
                       if method is None or key[0] == method
                       for r in bucket.values())
        return queued + inflight

    def queue_keys(self) -> List[QueueKey]:
        return [key for key, q in self._queues.items() if q]
