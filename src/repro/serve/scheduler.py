"""Micro-batch scheduling: per-``(method, shape, class)`` queues with
dedup, SLO-aware flush ordering, and deadline expiry.

The scheduler owns the pending-request state of the engine runtime:

* **Queue keying** — requests queue per ``(method, image_shape,
  priority_class)``, so one engine serves heterogeneous datasets: a
  32x32 brain image and a 16x16 OCT image of the same method occupy
  independent queues that batch and flush independently (``np.stack``
  never sees mixed shapes), and an interactive request never waits
  inside a bulk micro-batch.
* **Cross-request dedup** — a submit whose ``(digest, method, label,
  target)`` key is already queued *or in flight* (popped into a running
  batch) attaches its handle to the existing request instead of
  enqueueing a second compute; when the batch completes, the one result
  fans out to every attached handle.  Dedup spans priority classes
  (the key maps are per ``(method, shape)``, class-free): a bulk sweep
  and an interactive click on the same image cost one explainer pass.
  When the attaching context is *more urgent* than the queued request,
  the still-queued request is **promoted** into the higher-priority
  queue (position by original ``enqueued_at``), so dedup can only ever
  improve a handle's latency.
* **Priority flush ordering with starvation aging** — pop order across
  ready queues is by *effective rank*: the class rank
  (``interactive=0 < normal=1 < bulk=2``) minus ``queue_wait_ms /
  aging_ms``.  A bulk queue that has waited ``2 * aging_ms`` therefore
  outranks a fresh interactive queue — a saturating interactive flood
  can delay bulk work by at most ~``rank_gap * aging_ms`` of extra
  wait, never starve it.  With ``priority=False`` pops keep the legacy
  insertion order (the sort key is constant and the sort is stable).
* **Deadline expiry** — every pop scans the queues it touches and
  prunes requests whose absolute deadline already passed, returning
  them to the engine *separately* from the batches; they never reach an
  executor and never feed the adaptive-batching EWMA.
* **Adaptive micro-batching** — with ``min_batch`` set, every
  ``(method, shape)`` pair carries its own flush limit that ramps
  between ``min_batch`` and ``max_batch`` from the observed per-map
  latency of its recent batches (see :class:`MicroBatchScheduler`).
  The adaptive state is class-free: priority classes share one latency
  model because they run the same compute.

The scheduler is *externally synchronized*: the engine calls every
mutating method under its own lock.  Keeping the lock out of this class
lets the engine compose enqueue + dispatch decisions atomically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .cache import CacheKey
from .context import PRIORITY_RANK, RequestContext

#: Queue identity: one micro-batch queue per (method, image shape,
#: priority class).
QueueKey = Tuple[str, Tuple[int, ...], str]

#: Class-free queue family: dedup maps and adaptive-batching state key
#: on (method, shape) so priority classes share both.
BaseKey = Tuple[str, Tuple[int, ...]]


def base_key(queue_key) -> BaseKey:
    """The class-free ``(method, shape)`` family of a queue key (also
    accepts a bare 2-tuple, for callers that never knew about classes)."""
    return (queue_key[0], queue_key[1])


@dataclass(eq=False)          # identity semantics (fields hold ndarrays)
class ExplainRequest:
    """One unique queued computation, fanning out to >= 1 handles."""

    image: np.ndarray
    label: int
    target_label: Optional[int]
    key: CacheKey
    queue_key: QueueKey
    ctx: RequestContext = field(default_factory=RequestContext)
    handles: List = field(default_factory=list)
    enqueued_at: float = field(default_factory=time.monotonic)
    #: Set while a dispatched batch containing this request is running.
    future: Optional[object] = None
    #: True when this request occupies an admission slot (it was
    #: ingested through the bounded async path); sync submits are
    #: self-limiting and never consume the ``max_pending`` budget.
    counted: bool = False
    #: Tenant whose per-tenant quota slice this request occupies, or
    #: ``None`` (anonymous, or no quota configured for the tenant).
    #: Unlike ``counted`` this charges on *both* the sync and async
    #: ingestion paths — a tenant's slice is a fairness bound on unique
    #: unresolved work, however it arrived.
    slot_tenant: Optional[str] = None


class MicroBatchScheduler:
    """Deduplicating per-``(method, shape, class)`` request queues.

    ``max_batch`` counts *unique* requests: attaching a duplicate handle
    never grows a micro-batch.  ``max_delay_ms`` bounds how long the
    oldest queued request of a queue may wait before :meth:`enqueue`
    reports the queue ready (``None`` disables the deadline).

    **Priority ordering** — ``priority=True`` (default) makes
    :meth:`pop_ready`/:meth:`pop_batches` visit queues in effective-rank
    order: class rank minus ``wait_ms / aging_ms`` of the queue's oldest
    request.  ``aging_ms`` is the starvation bound knob — the extra wait
    a lower class can be dealt per rank step; ``priority=False``
    restores the legacy insertion-order pops bit-for-bit.

    **Adaptive micro-batching** — with ``min_batch`` set, the flush
    threshold is no longer one global knob: each ``(method, shape)``
    family carries its own limit that ramps between ``min_batch`` and
    ``max_batch`` from the observed per-map latency of its recent
    batches (:meth:`observe`, an EWMA).  A family's limit targets
    ``target_batch_ms`` of compute per batch: cheap methods (occlusion,
    CAE) ramp wide and amortise dispatch overhead, while an expensive
    method (StyLEx, ~1000x a CAE map) settles at small batches so one
    flush never holds its handles — or a worker — for seconds.  Limits
    ramp *up* by at most doubling per observed batch (a single lucky
    timing can't over-commit the next flush) and clamp *down*
    immediately (tail latency recovers within one batch).
    """

    def __init__(self, max_batch: int = 16,
                 max_delay_ms: Optional[float] = None,
                 min_batch: Optional[int] = None,
                 target_batch_ms: float = 200.0,
                 priority: bool = True,
                 aging_ms: float = 1000.0):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if min_batch is not None and not 1 <= min_batch <= max_batch:
            raise ValueError("min_batch must satisfy "
                             "1 <= min_batch <= max_batch")
        if target_batch_ms <= 0:
            raise ValueError("target_batch_ms must be > 0")
        if aging_ms <= 0:
            raise ValueError("aging_ms must be > 0")
        self.max_batch = max_batch
        self.max_delay_ms = max_delay_ms
        self.min_batch = min_batch
        self.target_batch_ms = target_batch_ms
        self.adaptive = min_batch is not None
        self.priority = priority
        self.aging_ms = aging_ms
        self._queues: Dict[QueueKey, List[ExplainRequest]] = {}
        self._by_key: Dict[BaseKey, Dict[CacheKey, ExplainRequest]] = {}
        #: key -> request for batches popped but not yet completed, so
        #: duplicates arriving while their twin computes still dedup.
        self._inflight: Dict[BaseKey, Dict[CacheKey, ExplainRequest]] = {}
        #: Adaptive state: per-family flush limit and per-map ms EWMA.
        self._limits: Dict[BaseKey, int] = {}
        self._ewma_ms: Dict[BaseKey, float] = {}
        self.dedup_hits = 0
        #: Dedup attaches that moved a queued request to a more urgent
        #: class.
        self.promotions = 0

    # ------------------------------------------------------------------
    def batch_limit(self, queue_key) -> int:
        """Current flush threshold of one queue (``max_batch`` when the
        scheduler is static; ramps from ``min_batch`` when adaptive)."""
        if not self.adaptive:
            return self.max_batch
        return self._limits.get(base_key(queue_key), self.min_batch)

    def batch_limits(self) -> Dict[str, int]:
        """JSON-friendly ``"method@HxW" -> limit`` snapshot (families
        that have been observed at least once; others sit at the
        default)."""
        return {f"{m}@{'x'.join(str(d) for d in shape)}": limit
                for (m, shape), limit in sorted(self._limits.items())}

    def observe(self, queue_key, batch_ms: float,
                batch_size: int) -> None:
        """Feed one completed batch's wall time back into the family's
        adaptive limit (no-op for a static scheduler)."""
        if not self.adaptive or batch_size < 1:
            return
        family = base_key(queue_key)
        per_map = batch_ms / batch_size
        prev = self._ewma_ms.get(family)
        ewma = per_map if prev is None else 0.5 * prev + 0.5 * per_map
        self._ewma_ms[family] = ewma
        desired = int(self.target_batch_ms / max(ewma, 1e-6))
        limit = self.batch_limit(queue_key)
        ramped = min(desired, limit * 2)           # up: at most double
        self._limits[family] = max(self.min_batch,
                                   min(ramped, self.max_batch))

    # ------------------------------------------------------------------
    def _deadline_hit(self, queue: List[ExplainRequest]) -> bool:
        return (self.max_delay_ms is not None and bool(queue)
                and (time.monotonic() - queue[0].enqueued_at) * 1000.0
                >= self.max_delay_ms)

    def _ready(self, queue_key: QueueKey,
               queue: List[ExplainRequest]) -> bool:
        return (len(queue) >= self.batch_limit(queue_key)
                or self._deadline_hit(queue))

    # ------------------------------------------------------------------
    def enqueue(self, method: str, image: np.ndarray, label: int,
                target_label: Optional[int], key: CacheKey,
                handle, ctx: Optional[RequestContext] = None
                ) -> Tuple[ExplainRequest, bool, bool]:
        """Queue (or dedup onto) a request; returns
        ``(request, deduped, queue_ready)``.

        A *new* request owns a private copy of ``image`` (the caller
        may reuse its buffer before the batch flushes, and ``key`` was
        digested from the bytes as they are now); a deduped submit
        attaches its handle without paying the copy.  Dedup covers both
        still-queued requests and **in-flight** ones (popped into a
        running batch but not yet completed), so duplicate traffic
        never recomputes even when its twin is already executing.

        Dedup merges SLO envelopes conservatively: the shared request's
        deadline becomes the *loosest* of the attached handles (``None``
        wins — an undeadlined handle must get its result), and a more
        urgent attaching class promotes a still-queued request into the
        higher-priority queue.
        """
        ctx = RequestContext.ensure(ctx)
        family = base_key((method, tuple(image.shape)))
        bucket = self._by_key.setdefault(family, {})
        request = self.lookup(family, key)
        if request is not None:
            request.handles.append(handle)
            self.dedup_hits += 1
            self._merge_ctx(request, ctx)
            return request, True, self._ready(
                request.queue_key,
                self._queues.get(request.queue_key, []))
        queue_key: QueueKey = (method, tuple(image.shape), ctx.priority)
        queue = self._queues.setdefault(queue_key, [])
        request = ExplainRequest(np.array(image, copy=True), int(label),
                                 target_label, key, queue_key,
                                 ctx=ctx, handles=[handle])
        queue.append(request)
        bucket[key] = request
        return request, False, self._ready(queue_key, queue)

    def _merge_ctx(self, request: ExplainRequest,
                   ctx: RequestContext) -> None:
        """Fold an attaching handle's SLO envelope into the shared
        request: loosest deadline wins; a more urgent class promotes a
        still-queued request into its queue (in-flight requests keep
        their class — the batch already dispatched)."""
        rctx = request.ctx
        if rctx.deadline is not None:
            rctx.deadline = (None if ctx.deadline is None
                             else max(rctx.deadline, ctx.deadline))
        if PRIORITY_RANK[ctx.priority] >= PRIORITY_RANK[rctx.priority]:
            return
        old_key = request.queue_key
        queue = self._queues.get(old_key)
        if queue is None or request not in queue:
            return                        # in flight: too late to move
        queue.remove(request)
        rctx.priority = ctx.priority
        new_key: QueueKey = (old_key[0], old_key[1], ctx.priority)
        request.queue_key = new_key
        target = self._queues.setdefault(new_key, [])
        idx = len(target)
        while idx > 0 and target[idx - 1].enqueued_at > request.enqueued_at:
            idx -= 1                      # keep FIFO by original arrival
        target.insert(idx, request)
        self.promotions += 1

    def lookup(self, queue_key, key: CacheKey
               ) -> Optional[ExplainRequest]:
        """The queued-or-in-flight request a submit of ``key`` would
        dedup onto, or ``None`` (the admission controller probes this
        before deciding whether a submit adds unique work).  Accepts a
        full queue key or a bare ``(method, shape)`` family."""
        family = base_key(queue_key)
        request = self._by_key.get(family, {}).get(key)
        if request is None:
            request = self._inflight.get(family, {}).get(key)
        return request

    def discard(self, request: ExplainRequest) -> bool:
        """Drop a still-queued request (submit-failure cleanup)."""
        queue = self._queues.get(request.queue_key)
        if queue and request in queue:
            queue.remove(request)
            self._by_key[base_key(request.queue_key)].pop(request.key,
                                                          None)
            return True
        return False

    # ------------------------------------------------------------------
    def _pop_chunk(self, queue_key: QueueKey) -> List[ExplainRequest]:
        queue = self._queues[queue_key]
        chunk = queue[:self.batch_limit(queue_key)]
        del queue[:len(chunk)]
        family = base_key(queue_key)
        bucket = self._by_key[family]
        inflight = self._inflight.setdefault(family, {})
        for request in chunk:
            bucket.pop(request.key, None)
            inflight[request.key] = request
        return chunk

    def mark_complete(self, requests: List[ExplainRequest]) -> None:
        """Retire completed requests from the in-flight dedup map.

        Must be called in the same critical section that resolves the
        requests' handles, so a duplicate submit either attaches before
        resolution (and is resolved with the batch) or arrives after
        the key left the map (and re-probes the cache).
        """
        for request in requests:
            self._inflight.get(base_key(request.queue_key), {}).pop(
                request.key, None)

    def _prune_expired(self, queue_key: QueueKey,
                       now: float) -> List[ExplainRequest]:
        """Drop queued requests whose deadline passed; they never reach
        an executor.  Returns them for the engine to resolve as
        :class:`~repro.serve.context.DeadlineExceeded`."""
        queue = self._queues.get(queue_key)
        if not queue:
            return []
        expired = [r for r in queue if r.ctx.expired(now)]
        if not expired:
            return []
        queue[:] = [r for r in queue if not r.ctx.expired(now)]
        bucket = self._by_key.get(base_key(queue_key), {})
        for request in expired:
            bucket.pop(request.key, None)
        return expired

    def _pop_order(self, keys: List[QueueKey],
                   now: float) -> List[QueueKey]:
        """Visit order for a pop pass: effective rank (class rank minus
        ``wait/aging``), oldest first within a rank.  With priority off
        the key is constant and the stable sort preserves the legacy
        insertion order."""
        if not self.priority:
            return keys

        def effective(queue_key: QueueKey):
            queue = self._queues.get(queue_key)
            if not queue:
                return (float("inf"), float("inf"))
            oldest = queue[0].enqueued_at
            rank = float(PRIORITY_RANK.get(queue_key[2], 1))
            rank -= (now - oldest) * 1000.0 / self.aging_ms
            return (rank, oldest)

        return sorted(keys, key=effective)

    def pop_batches(self, method: Optional[str] = None
                    ) -> Tuple[List[Tuple[QueueKey, List[ExplainRequest]]],
                               List[ExplainRequest]]:
        """Drain every pending request (for one method or all) into
        micro-batches of at most ``max_batch`` unique requests.
        Returns ``(batches, expired)``: batches in priority order, and
        the deadline-expired requests pruned during the pass."""
        now = time.monotonic()
        keys = [qk for qk in list(self._queues)
                if method is None or qk[0] == method]
        expired: List[ExplainRequest] = []
        for queue_key in keys:
            expired.extend(self._prune_expired(queue_key, now))
        batches = []
        for queue_key in self._pop_order(keys, now):
            while self._queues[queue_key]:
                batches.append((queue_key, self._pop_chunk(queue_key)))
        return batches, expired

    def pop_ready(self, method: Optional[str] = None,
                  limit: Optional[int] = None
                  ) -> Tuple[List[Tuple[QueueKey, List[ExplainRequest]]],
                             List[ExplainRequest]]:
        """Pop only the queues that hit their batch limit or the flush
        deadline, leaving partial queues to keep accumulating (async
        ingestion).  Returns ``(batches, expired)`` as
        :meth:`pop_batches` does — expiry is swept over every scanned
        queue even when none is ready, so a periodic ``engine.kick()``
        bounds how long a dead request can linger.

        ``limit`` caps the number of batches popped (still in priority
        order; pruning is never capped).  ``engine.kick()`` uses it to
        dispatch no more batches than the executor has idle capacity
        for, so the excess backlog stays *here* — where class order,
        aging, and deadline expiry still apply — instead of queueing
        FIFO inside the executor where an interactive batch can no
        longer overtake bulk."""
        now = time.monotonic()
        keys = [qk for qk in list(self._queues)
                if method is None or qk[0] == method]
        expired: List[ExplainRequest] = []
        for queue_key in keys:
            expired.extend(self._prune_expired(queue_key, now))
        batches: List[Tuple[QueueKey, List[ExplainRequest]]] = []
        for queue_key in self._pop_order(keys, now):
            while self._ready(queue_key, self._queues[queue_key]):
                if limit is not None and len(batches) >= limit:
                    return batches, expired
                batches.append((queue_key, self._pop_chunk(queue_key)))
        return batches, expired

    def requeue_front(self, queue_key: QueueKey,
                      requests: List[ExplainRequest]
                      ) -> List[ExplainRequest]:
        """Put a failed batch back at the queue front for a retry.

        A duplicate of a failed request may have been enqueued while the
        batch ran; its handles are merged onto the requeued request so
        no handle is ever split across two computations.  Returns the
        requests that merged away (unique pending work shrank by them —
        the engine's admission accounting needs to settle their slots).
        """
        queue = self._queues.setdefault(queue_key, [])
        family = base_key(queue_key)
        bucket = self._by_key.setdefault(family, {})
        inflight = self._inflight.get(family, {})
        keep = []
        merged = []
        for request in requests:
            inflight.pop(request.key, None)
            newer = bucket.get(request.key)
            if newer is not None:
                newer.handles.extend(request.handles)
                self.dedup_hits += 1
                merged.append(request)
            else:
                bucket[request.key] = request
                keep.append(request)
        queue[0:0] = keep
        return merged

    # ------------------------------------------------------------------
    def pending_count(self, method: Optional[str] = None) -> int:
        """Unique queued computations (deduped handles count once)."""
        return sum(len(q) for key, q in self._queues.items()
                   if method is None or key[0] == method)

    def pending_handles(self, method: Optional[str] = None) -> int:
        """Unresolved handles attached to queued **or in-flight**
        requests.

        Requests popped into a running batch stay in the in-flight dedup
        map until :meth:`mark_complete` retires them in the same
        critical section that resolves their handles — so every handle
        is counted here exactly until the moment it is done, and
        dashboards never watch handles vanish mid-flight.
        """
        queued = sum(len(r.handles) for key, q in self._queues.items()
                     if method is None or key[0] == method for r in q)
        inflight = sum(len(r.handles)
                       for key, bucket in self._inflight.items()
                       if method is None or key[0] == method
                       for r in bucket.values())
        return queued + inflight

    def queue_keys(self) -> List[QueueKey]:
        return [key for key, q in self._queues.items() if q]

    def queue_stats(self) -> Dict[str, Dict[str, float]]:
        """Operator-facing pressure snapshot: per-queue depth, attached
        handles, age of the oldest request, and the current flush
        limit, keyed ``"method@HxW#class"``.  Empty queues are elided —
        depth 0 carries no pressure."""
        now = time.monotonic()
        out: Dict[str, Dict[str, float]] = {}
        for queue_key, queue in sorted(self._queues.items()):
            if not queue:
                continue
            method, shape, cls = queue_key
            name = f"{method}@{'x'.join(str(d) for d in shape)}#{cls}"
            out[name] = {
                "depth": len(queue),
                "handles": sum(len(r.handles) for r in queue),
                "oldest_ms": round(
                    (now - queue[0].enqueued_at) * 1000.0, 3),
                "limit": self.batch_limit(queue_key),
            }
        return out
