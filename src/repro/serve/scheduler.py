"""Micro-batch scheduling: per-``(method, shape)`` queues with dedup.

The scheduler owns the pending-request state of the engine runtime:

* **Queue keying** — requests queue per ``(method, image_shape)``, so
  one engine serves heterogeneous datasets: a 32x32 brain image and a
  16x16 OCT image of the same method occupy independent queues that
  batch and flush independently (``np.stack`` never sees mixed shapes).
* **Cross-request dedup** — a submit whose ``(digest, method, label,
  target)`` key is already queued *or in flight* (popped into a running
  batch) attaches its handle to the existing request instead of
  enqueueing a second compute; when the batch completes, the one result
  fans out to every attached handle.  Duplicate-heavy traffic (and
  duplicate images inside one synchronous ``explain_batch``) therefore
  cost one explainer pass per unique request.

The scheduler is *externally synchronized*: the engine calls every
mutating method under its own lock.  Keeping the lock out of this class
lets the engine compose enqueue + dispatch decisions atomically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .cache import CacheKey

#: Queue identity: one micro-batch queue per (method, image shape).
QueueKey = Tuple[str, Tuple[int, ...]]


@dataclass(eq=False)          # identity semantics (fields hold ndarrays)
class ExplainRequest:
    """One unique queued computation, fanning out to >= 1 handles."""

    image: np.ndarray
    label: int
    target_label: Optional[int]
    key: CacheKey
    queue_key: QueueKey
    handles: List = field(default_factory=list)
    enqueued_at: float = field(default_factory=time.monotonic)
    #: Set while a dispatched batch containing this request is running.
    future: Optional[object] = None


class MicroBatchScheduler:
    """Deduplicating per-``(method, shape)`` request queues.

    ``max_batch`` counts *unique* requests: attaching a duplicate handle
    never grows a micro-batch.  ``max_delay_ms`` bounds how long the
    oldest queued request of a queue may wait before :meth:`enqueue`
    reports the queue ready (``None`` disables the deadline).
    """

    def __init__(self, max_batch: int = 16,
                 max_delay_ms: Optional[float] = None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch
        self.max_delay_ms = max_delay_ms
        self._queues: Dict[QueueKey, List[ExplainRequest]] = {}
        self._by_key: Dict[QueueKey, Dict[CacheKey, ExplainRequest]] = {}
        #: key -> request for batches popped but not yet completed, so
        #: duplicates arriving while their twin computes still dedup.
        self._inflight: Dict[QueueKey, Dict[CacheKey, ExplainRequest]] = {}
        self.dedup_hits = 0

    # ------------------------------------------------------------------
    def _deadline_hit(self, queue: List[ExplainRequest]) -> bool:
        return (self.max_delay_ms is not None and bool(queue)
                and (time.monotonic() - queue[0].enqueued_at) * 1000.0
                >= self.max_delay_ms)

    def _ready(self, queue: List[ExplainRequest]) -> bool:
        return len(queue) >= self.max_batch or self._deadline_hit(queue)

    # ------------------------------------------------------------------
    def enqueue(self, method: str, image: np.ndarray, label: int,
                target_label: Optional[int], key: CacheKey,
                handle) -> Tuple[ExplainRequest, bool, bool]:
        """Queue (or dedup onto) a request; returns
        ``(request, deduped, queue_ready)``.

        A *new* request owns a private copy of ``image`` (the caller
        may reuse its buffer before the batch flushes, and ``key`` was
        digested from the bytes as they are now); a deduped submit
        attaches its handle without paying the copy.  Dedup covers both
        still-queued requests and **in-flight** ones (popped into a
        running batch but not yet completed), so duplicate traffic
        never recomputes even when its twin is already executing.
        """
        queue_key: QueueKey = (method, tuple(image.shape))
        queue = self._queues.setdefault(queue_key, [])
        bucket = self._by_key.setdefault(queue_key, {})
        request = bucket.get(key)
        if request is None:
            request = self._inflight.get(queue_key, {}).get(key)
        if request is not None:
            request.handles.append(handle)
            self.dedup_hits += 1
            deduped = True
        else:
            request = ExplainRequest(np.array(image, copy=True), int(label),
                                     target_label, key, queue_key,
                                     handles=[handle])
            queue.append(request)
            bucket[key] = request
            deduped = False
        return request, deduped, self._ready(queue)

    def discard(self, request: ExplainRequest) -> bool:
        """Drop a still-queued request (submit-failure cleanup)."""
        queue = self._queues.get(request.queue_key)
        if queue and request in queue:
            queue.remove(request)
            self._by_key[request.queue_key].pop(request.key, None)
            return True
        return False

    # ------------------------------------------------------------------
    def _pop_chunk(self, queue_key: QueueKey) -> List[ExplainRequest]:
        queue = self._queues[queue_key]
        chunk = queue[:self.max_batch]
        del queue[:len(chunk)]
        bucket = self._by_key[queue_key]
        inflight = self._inflight.setdefault(queue_key, {})
        for request in chunk:
            bucket.pop(request.key, None)
            inflight[request.key] = request
        return chunk

    def mark_complete(self, requests: List[ExplainRequest]) -> None:
        """Retire completed requests from the in-flight dedup map.

        Must be called in the same critical section that resolves the
        requests' handles, so a duplicate submit either attaches before
        resolution (and is resolved with the batch) or arrives after
        the key left the map (and re-probes the cache).
        """
        for request in requests:
            self._inflight.get(request.queue_key, {}).pop(request.key,
                                                          None)

    def pop_batches(self, method: Optional[str] = None
                    ) -> List[Tuple[QueueKey, List[ExplainRequest]]]:
        """Drain every pending request (for one method or all) into
        micro-batches of at most ``max_batch`` unique requests."""
        batches = []
        for queue_key in list(self._queues):
            if method is not None and queue_key[0] != method:
                continue
            while self._queues[queue_key]:
                batches.append((queue_key, self._pop_chunk(queue_key)))
        return batches

    def pop_ready(self, method: Optional[str] = None
                  ) -> List[Tuple[QueueKey, List[ExplainRequest]]]:
        """Pop only the queues that hit ``max_batch`` or the deadline,
        leaving partial queues to keep accumulating (async ingestion)."""
        batches = []
        for queue_key in list(self._queues):
            if method is not None and queue_key[0] != method:
                continue
            while self._ready(self._queues[queue_key]):
                batches.append((queue_key, self._pop_chunk(queue_key)))
        return batches

    def requeue_front(self, queue_key: QueueKey,
                      requests: List[ExplainRequest]) -> None:
        """Put a failed batch back at the queue front for a retry.

        A duplicate of a failed request may have been enqueued while the
        batch ran; its handles are merged onto the requeued request so
        no handle is ever split across two computations.
        """
        queue = self._queues.setdefault(queue_key, [])
        bucket = self._by_key.setdefault(queue_key, {})
        inflight = self._inflight.get(queue_key, {})
        keep = []
        for request in requests:
            inflight.pop(request.key, None)
            newer = bucket.get(request.key)
            if newer is not None:
                newer.handles.extend(request.handles)
                self.dedup_hits += 1
            else:
                bucket[request.key] = request
                keep.append(request)
        queue[0:0] = keep

    # ------------------------------------------------------------------
    def pending_count(self, method: Optional[str] = None) -> int:
        """Unique queued computations (deduped handles count once)."""
        return sum(len(q) for key, q in self._queues.items()
                   if method is None or key[0] == method)

    def pending_handles(self, method: Optional[str] = None) -> int:
        """Unresolved handles attached to queued requests."""
        return sum(len(r.handles) for key, q in self._queues.items()
                   if method is None or key[0] == method for r in q)

    def queue_keys(self) -> List[QueueKey]:
        return [key for key, q in self._queues.items() if q]
