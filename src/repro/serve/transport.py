"""Zero-copy shared-memory transport for the process pool.

PR 5's payload codec pickles the full float32 image stack out to each
worker and the full saliency stack back through ``multiprocessing.Pipe``
— every batch pays four bulk copies (pickle out, unpickle in, pickle
back, unpickle back) plus the intermediate ``np.stack``s on both sides,
so payload cost grows linearly with batch bytes exactly where multi-core
scaling should pay off.  This module replaces the *payload* path with
per-worker **double-buffered shared-memory arenas** while the pipe keeps
carrying only small control headers (method, shapes, dtypes, slot id,
arena generation, labels):

* :class:`ShmArena` — the parent-side owner of one worker's slots.
  Each of the (default two) slots holds an *out* segment (the request's
  image stack, written in place by the dispatcher) and a *ret* segment
  (the reply's saliency stack, written in place by the worker).  Two
  slots let the dispatcher encode batch N+1 while the worker still
  computes batch N — the encode/compute overlap PR 5's blocking
  ``recv`` serialized away.  Segments grow geometrically when a batch
  outgrows them (the old segment is unlinked immediately: a slot is
  only grown while it is free, so no in-flight batch can be using it).
* :class:`ArenaClient` — the worker-side attachment cache.  Segment
  names embed the slot and an **arena generation**, so a header naming
  a new generation retires the stale mapping; a header whose segment
  cannot be attached at all (external ``/dev/shm`` cleanup, platform
  quirk) reports stale and the batch falls back to the PR 5 pipe codec.
* :class:`TransportStats` — counters for ``stats()["transport"]``:
  bytes moved per path, copies avoided, arena bytes, fallbacks, and
  overlap occupancy.

**Resource hygiene**: the parent owns every segment and is the only
process that ever unlinks one.  Parent-side creation stays registered
with ``multiprocessing.resource_tracker`` so a crashed parent still
gets its segments unlinked at tracker shutdown; worker-side attachments
are *un*registered (or opened with ``track=False`` on 3.13+) so a
worker exit can never unlink — or double-free — a segment the parent
still serves from.  ``ProcessExecutor`` unlinks a channel's arena when
the channel is reaped (worker crash) and on ``shutdown()``; either
side dying therefore leaves zero ``/dev/shm`` segments behind, which
the transport test suite asserts by listing the directory.

Platforms without :mod:`multiprocessing.shared_memory` — or a
``REPRO_SERVE_TRANSPORT=pipe`` environment override — keep the PR 5
pipe codec byte-for-byte; the ``RemoteExecutor`` direction in the
ROADMAP reuses the same header-plus-payload split with TCP framing
swapped in for the arenas.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

try:                                       # pragma: no cover - import gate
    from multiprocessing import shared_memory as _shared_memory
except ImportError:                        # pragma: no cover - rare platform
    _shared_memory = None

__all__ = ["TRANSPORTS", "ENV_TRANSPORT", "have_shared_memory",
           "resolve_transport", "ShmArena", "ArenaSlot", "ArenaClient",
           "TransportStats", "attach_segment", "segment_base",
           "pack_ctxs", "unpack_ctxs"]

TRANSPORTS = ("auto", "shm", "pipe")
ENV_TRANSPORT = "REPRO_SERVE_TRANSPORT"

#: Segments are sized in whole pages; growth at least doubles so a
#: ramping workload allocates O(log) segments, not one per batch.
_PAGE = 4096


def have_shared_memory() -> bool:
    """True when :mod:`multiprocessing.shared_memory` is importable."""
    return _shared_memory is not None


def resolve_transport(requested: str = "auto") -> str:
    """Resolve a transport request to ``"shm"`` or ``"pipe"``.

    An explicit ``"shm"``/``"pipe"`` wins (tests pin their transport
    regardless of the environment); ``"auto"`` consults the
    ``REPRO_SERVE_TRANSPORT`` environment knob and finally falls back
    to shared memory whenever the platform provides it.
    """
    if requested not in TRANSPORTS:
        raise ValueError(f"unknown transport {requested!r}; "
                         f"use one of {TRANSPORTS}")
    if requested == "auto":
        env = os.environ.get(ENV_TRANSPORT, "").strip().lower()
        if env:
            if env not in ("shm", "pipe"):
                raise ValueError(
                    f"{ENV_TRANSPORT}={env!r} is not a transport; "
                    "use 'shm' or 'pipe'")
            requested = env
        else:
            requested = "shm" if have_shared_memory() else "pipe"
    if requested == "shm" and not have_shared_memory():
        raise RuntimeError(
            "shared-memory transport requested but multiprocessing."
            "shared_memory is unavailable on this platform")
    return requested


def _round_up(nbytes: int) -> int:
    return max(_PAGE, (int(nbytes) + _PAGE - 1) // _PAGE * _PAGE)


# ----------------------------------------------------------------------
# Compact request-context codec: what a batch message carries per
# request so process workers can attribute work (tenant, priority) and
# honour the cross-process deadline contract.  Stage timestamps never
# cross the wire — the worker stamps its own recv/done pair and the
# parent applies them to the live RequestContext objects on reply.
def pack_ctxs(ctxs) -> Optional[Tuple]:
    """Pack a batch's :class:`~repro.serve.context.RequestContext` list
    into compact wire tuples ``(priority, deadline, tenant, trace_id)``.
    Returns ``None`` when there is nothing worth shipping (no list, or
    every element ``None``) so callers can keep the context-free
    framings byte-for-byte."""
    if ctxs is None or all(c is None for c in ctxs):
        return None
    return tuple(None if c is None
                 else (c.priority, c.deadline, c.tenant, c.trace_id)
                 for c in ctxs)


def unpack_ctxs(wire) -> Optional[Tuple]:
    """Validate/normalize a packed context tuple from the wire (the
    worker consumes the tuples directly; this exists so both ends agree
    on one schema and tests can pin it)."""
    if wire is None:
        return None
    out = []
    for entry in wire:
        if entry is None:
            out.append(None)
            continue
        priority, deadline, tenant, trace_id = entry
        out.append((priority, deadline, tenant, trace_id))
    return tuple(out)


def segment_base(name: str) -> str:
    """The generation-independent identity of a segment name.

    Names look like ``rtx<pid>w<worker>s<slot>o-g<gen>``; everything
    before the ``-g`` identifies (executor, worker, slot, direction),
    so a worker's attachment cache can retire the previous generation
    the moment a header names a newer one.
    """
    base, _, _ = name.rpartition("-g")
    return base or name


def attach_segment(name: str):
    """Worker-side attach that adds no tracker obligation of its own:
    only the parent owns (and unlinks) segments.  Python 3.13+ exposes
    ``track=False`` for exactly this.  Older interpreters register every
    attach with the resource tracker — but multiprocessing children
    inherit the *parent's* tracker, where that registration is a
    duplicate entry in the same set (idempotent) and the parent's
    ``unlink`` clears it; explicitly unregistering here would instead
    strip the parent's own registration out of the shared tracker and
    break its crash-cleanup guarantee."""
    if _shared_memory is None:             # pragma: no cover - gated earlier
        raise RuntimeError("shared_memory unavailable")
    try:
        return _shared_memory.SharedMemory(name=name, create=False,
                                           track=False)
    except TypeError:                      # Python < 3.13: shared tracker
        return _shared_memory.SharedMemory(name=name, create=False)


class _Segment:
    """One parent-owned shared-memory segment (create + unlink side)."""

    __slots__ = ("name", "size", "shm")

    def __init__(self, name: str, size: int):
        size = _round_up(size)
        try:
            shm = _shared_memory.SharedMemory(name=name, create=True,
                                              size=size)
        except FileExistsError:
            # A leftover from a previous process that recycled our pid:
            # it is ours by name, so reclaim it.
            _shared_memory.SharedMemory(name=name).unlink()
            shm = _shared_memory.SharedMemory(name=name, create=True,
                                              size=size)
        self.name = name
        self.size = size
        self.shm = shm

    def view(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        return np.ndarray(shape, dtype=dtype, buffer=self.shm.buf)

    def destroy(self) -> None:
        """Close the mapping and unlink the backing file.  A close that
        fails because an exported view still exists (BufferError) only
        skips the munmap — the *unlink* below is what guarantees no
        ``/dev/shm`` entry outlives the arena, and the stray mapping
        dies with the process."""
        try:
            self.shm.close()
        except BufferError:                # view still exported somewhere
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:          # already gone (double close ok)
            pass


class ArenaSlot:
    """One double-buffer slot: an out segment (request payload) and a
    ret segment (reply payload), both lazily allocated and geometrically
    grown by the parent."""

    __slots__ = ("index", "generation", "in_use", "out", "ret",
                 "ret_need")

    def __init__(self, index: int):
        self.index = index
        self.generation = 0
        self.in_use = False
        self.out: Optional[_Segment] = None
        self.ret: Optional[_Segment] = None
        #: Byte hint from an oversized reply (the worker fell back to
        #: the pipe and told us how much it needed); honoured at the
        #: next encode, while the slot is provably free.
        self.ret_need = 0


class ShmArena:
    """Parent-side arena for one worker channel (see module doc).

    Externally synchronized for slot accounting: ``acquire``/``release``
    are called under the executor's pool lock.  ``encode``/``ret_view``
    touch only the caller's acquired slot, so they run lock-free in the
    dispatcher thread that owns the batch.
    """

    def __init__(self, prefix: str, slots: int = 2,
                 initial_bytes: int = 1 << 16,
                 stats: Optional["TransportStats"] = None):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.prefix = prefix
        self.initial_bytes = int(initial_bytes)
        self.slots = [ArenaSlot(i) for i in range(slots)]
        self.stats = stats if stats is not None else TransportStats("shm")
        self._closed = False

    # -- slot accounting (under the executor pool lock) -----------------
    def acquire(self) -> Optional[ArenaSlot]:
        for slot in self.slots:
            if not slot.in_use:
                slot.in_use = True
                return slot
        return None

    def release(self, slot: ArenaSlot) -> None:
        slot.in_use = False

    def free_slots(self) -> int:
        return sum(1 for slot in self.slots if not slot.in_use)

    # -- payload encode/decode (slot owned by the calling thread) -------
    def _segment_name(self, slot: ArenaSlot, direction: str) -> str:
        return f"{self.prefix}s{slot.index}{direction}-g{slot.generation}"

    def _ensure(self, slot: ArenaSlot, direction: str,
                nbytes: int) -> _Segment:
        current = slot.out if direction == "o" else slot.ret
        if current is not None and current.size >= nbytes:
            return current
        # Growth bumps the generation *before* naming the new segment so
        # the worker's attachment cache retires the old mapping on the
        # next header; the old segment is unlinked right here — the slot
        # is free (growth happens at encode time, never mid-flight), so
        # nothing can still be reading it.
        size = (max(nbytes, self.initial_bytes) if current is None
                else max(nbytes, current.size * 2))
        slot.generation += 1
        segment = _Segment(self._segment_name(slot, direction), size)
        if current is not None:
            self.stats.count_grow()
            current.destroy()
        if direction == "o":
            slot.out = segment
        else:
            slot.ret = segment
        return segment

    def encode(self, slot: ArenaSlot,
               images: Union[np.ndarray, Sequence[np.ndarray]],
               ) -> Tuple[Tuple, Tuple]:
        """Write the batch's image payload directly into the slot's out
        segment — no pickle, and no intermediate ``np.stack`` copy when
        the per-request images are already contiguous float32 (each is
        copied exactly once, straight into the arena).  Returns
        ``(out_desc, ret_desc)`` for the header:
        ``out_desc = (segment_name, segment_size, batch_shape, dtype)``,
        ``ret_desc = (segment_name, segment_size)``.
        """
        if isinstance(images, np.ndarray):
            batch_shape = images.shape
        else:
            batch_shape = (len(images),) + tuple(np.shape(images[0]))
        count = int(np.prod(batch_shape, dtype=np.int64))
        nbytes = count * 4                 # float32 payload
        out = self._ensure(slot, "o", nbytes)
        view = out.view(batch_shape, np.float32)
        if isinstance(images, np.ndarray):
            np.copyto(view, images, casting="unsafe")
        else:
            for i, image in enumerate(images):
                np.copyto(view[i], image, casting="unsafe")
        del view
        # The reply's saliency stack is one (H, W) float32 map per image
        # — never larger than the (C, H, W) inputs — so sizing ret like
        # out covers every registered method; a method that replies
        # bigger (oversize meta payloads ride the pipe anyway) falls
        # back once and leaves a byte hint honoured here next time.
        ret = self._ensure(slot, "r", max(nbytes, slot.ret_need))
        slot.ret_need = 0
        self.stats.count_shm_out(nbytes, batch_shape[0])
        return ((out.name, out.size, tuple(batch_shape), "float32"),
                (ret.name, ret.size))

    def ret_view(self, slot: ArenaSlot, shape: Tuple[int, ...],
                 dtype: str) -> np.ndarray:
        """The worker-written reply stack; valid until the slot is
        released — callers copy each map out before that."""
        assert slot.ret is not None
        return slot.ret.view(tuple(shape), np.dtype(dtype))

    def note_ret_need(self, slot: ArenaSlot, nbytes: int) -> None:
        slot.ret_need = max(slot.ret_need, int(nbytes))

    # -- accounting / lifecycle -----------------------------------------
    def live_bytes(self) -> int:
        total = 0
        for slot in self.slots:
            for segment in (slot.out, slot.ret):
                if segment is not None:
                    total += segment.size
        return total

    def close(self) -> None:
        """Unlink every segment (idempotent).  Parent-owned: this is
        the single place arena segments are ever removed, called when
        the channel is reaped or the executor shuts down."""
        if self._closed:
            return
        self._closed = True
        for slot in self.slots:
            for segment in (slot.out, slot.ret):
                if segment is not None:
                    segment.destroy()
            slot.out = slot.ret = None


class ArenaClient:
    """Worker-side attachment cache, keyed on the generation-free
    segment base so a grown segment (new generation in the name)
    retires exactly its predecessor's mapping."""

    def __init__(self):
        #: base -> (name, SharedMemory)
        self._attached: Dict[str, Tuple[str, object]] = {}
        #: Mappings whose close() hit BufferError (a view the explainer
        #: stashed somewhere still exports the buffer); retried on the
        #: next retirement and finally dropped at process exit.
        self._retired: List[object] = []

    def _segment(self, name: str):
        base = segment_base(name)
        cached = self._attached.get(base)
        if cached is not None:
            if cached[0] == name:
                return cached[1]
            self._close_mapping(cached[1])
        shm = attach_segment(name)
        self._attached[base] = (name, shm)
        return shm

    def _close_mapping(self, shm) -> None:
        for stale in list(self._retired):
            try:
                stale.close()
                self._retired.remove(stale)
            except BufferError:
                pass
        try:
            shm.close()
        except BufferError:
            self._retired.append(shm)

    def view(self, out_desc: Tuple) -> Optional[np.ndarray]:
        """Read-only ndarray over the header's out segment, or ``None``
        when the segment cannot be attached (stale header: the caller
        reports it and the batch falls back to the pipe codec)."""
        name, _size, shape, dtype = out_desc
        try:
            shm = self._segment(name)
        except (FileNotFoundError, OSError, ValueError):
            return None
        view = np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                          buffer=shm.buf)
        view.flags.writeable = False
        return view

    def write_ret(self, ret_desc: Tuple, maps: List[np.ndarray]
                  ) -> Optional[Tuple[Tuple[int, ...], str]]:
        """Write the stacked saliency maps into the reply segment —
        the shm replacement for ``encode_results``'s ``np.stack`` +
        pickle.  Returns ``(shape, dtype)`` for the reply header, or
        ``None`` when the stack does not fit (or shapes are mixed /
        the segment is unattachable): the caller falls back to the
        pipe payload, carrying the needed byte count as a growth hint.
        """
        if not maps:
            return None
        first = maps[0].shape
        if any(m.shape != first for m in maps[1:]):
            return None
        shape = (len(maps),) + tuple(first)
        nbytes = int(np.prod(shape, dtype=np.int64)) * 4
        name, size = ret_desc
        if nbytes > size:
            return None
        try:
            shm = self._segment(name)
        except (FileNotFoundError, OSError, ValueError):
            return None
        view = np.ndarray(shape, dtype=np.float32, buffer=shm.buf)
        for i, saliency in enumerate(maps):
            np.copyto(view[i], saliency, casting="unsafe")
        del view
        return shape, "float32"

    def close(self) -> None:
        for _base, (_name, shm) in list(self._attached.items()):
            self._close_mapping(shm)
        self._attached.clear()


class TransportStats:
    """Thread-safe transport counters behind ``stats()["transport"]``.

    Dispatcher threads on one executor update these concurrently, so
    mutation goes through the internal lock; ``snapshot()`` returns a
    plain dict (with derived rates) for the engine's stats call.
    """

    def __init__(self, mode: str):
        self.mode = mode
        self._lock = threading.Lock()
        self.sends = 0
        self.overlapped_sends = 0
        self.shm_batches = 0
        self.pipe_batches = 0
        self.shm_bytes_out = 0
        self.shm_bytes_ret = 0
        self.pipe_payload_bytes = 0
        self.copies_avoided = 0
        self.fallbacks_stale = 0
        self.fallbacks_oversize = 0
        self.grows = 0

    def count_send(self, overlapped: bool) -> None:
        with self._lock:
            self.sends += 1
            if overlapped:
                self.overlapped_sends += 1

    def count_shm_out(self, nbytes: int, n_images: int) -> None:
        with self._lock:
            self.shm_bytes_out += nbytes
            # Each image skipped the intermediate stack copy and the
            # pickle/unpickle pair it cost on the pipe.
            self.copies_avoided += n_images

    def count_shm_ret(self, nbytes: int, n_maps: int) -> None:
        with self._lock:
            self.shm_bytes_ret += nbytes
            self.shm_batches += 1
            # Each map skipped encode_results's np.stack plus the
            # pickle/unpickle pair.
            self.copies_avoided += n_maps

    def count_pipe(self, payload_bytes: int) -> None:
        with self._lock:
            self.pipe_batches += 1
            self.pipe_payload_bytes += payload_bytes

    def count_fallback(self, kind: str) -> None:
        with self._lock:
            if kind == "stale":
                self.fallbacks_stale += 1
            else:
                self.fallbacks_oversize += 1

    def count_grow(self) -> None:
        with self._lock:
            self.grows += 1

    def snapshot(self, arena_bytes: int = 0) -> Dict[str, object]:
        with self._lock:
            sends = self.sends
            return {
                "mode": self.mode,
                "sends": sends,
                "shm_batches": self.shm_batches,
                "pipe_batches": self.pipe_batches,
                "shm_bytes_out": self.shm_bytes_out,
                "shm_bytes_ret": self.shm_bytes_ret,
                "shm_bytes_moved": self.shm_bytes_out + self.shm_bytes_ret,
                "pipe_payload_bytes": self.pipe_payload_bytes,
                "copies_avoided": self.copies_avoided,
                "fallbacks": (self.fallbacks_stale
                              + self.fallbacks_oversize),
                "fallbacks_stale": self.fallbacks_stale,
                "fallbacks_oversize": self.fallbacks_oversize,
                "arena_grows": self.grows,
                "arena_bytes": arena_bytes,
                "overlapped_sends": self.overlapped_sends,
                "overlap_occupancy": (round(self.overlapped_sends / sends,
                                            4) if sends else 0.0),
            }
