"""Worker-process side of the :class:`~repro.serve.executor.ProcessExecutor`.

Three pieces live here, all deliberately free of any engine state:

* :class:`EngineSpec` — a picklable *recipe* for the models a worker
  needs.  The parent never ships live modules: each worker process
  materializes the spec **once at startup** (importing the factory and
  calling it), so per-batch traffic carries only compact payloads.  A
  factory is either a module-level callable or an ``"module:attr"``
  string, and returns either an ``{name: Explainer}`` mapping or a
  ``(classifier, explainers)`` pair.
* **Payload codec** — :func:`encode_batch` / :func:`decode_batch` pack a
  micro-batch as ``(method, stacked float32 images, labels, targets)``;
  :func:`encode_results` / :func:`decode_results` pack the reply as one
  stacked saliency array plus per-map labels/targets/meta.  No
  :class:`~repro.explain.base.SaliencyResult` object crosses the pipe as
  a live reference — the parent reconstructs fresh ones, so cache
  freezing and digest stamping keep working unchanged.
* :func:`worker_main` — the worker loop: handshake (``ready`` /
  ``init_error``), then ``batch`` / ``stats`` / ``stop`` messages until
  the parent hangs up.  Each batch is timed *inside the worker* (pure
  compute, no pipe or convoy time), and the measured per-map cost rides
  back for the engine's cost-aware cache and adaptive batch limits.
  Methods whose replica sets ``needs_gradients = False`` run under
  ``nn.no_grad()`` in the worker, exactly as the in-process engine
  would run them.

Under the shared-memory transport (see :mod:`repro.serve.transport`)
the pipe carries only headers: a ``("shm_batch", slot, method,
out_desc, ret_desc, labels, targets, keys)`` message names the arena
segment holding the image stack, the worker computes from a zero-copy
view and writes the stacked saliency into the return segment, replying
``("ok_shm", slot, ...)`` with just shapes and metadata.  A header
whose segment cannot be attached (stale generation after external
cleanup) is answered ``("shm_stale", slot)`` and the parent resends the
batch as a slot-routed pipe payload (``"batch_slot"`` →
``"ok_pipe"``); a reply stack that outgrows the return segment also
falls back to ``"ok_pipe"``, carrying the byte count the parent uses as
a growth hint.  The PR 5 ``"batch"`` / ``"ok"`` framing is untouched —
pipe-transport executors speak it byte-for-byte.

:func:`demo_spec` builds a small untrained-classifier spec used by the
serving benchmark, the process-executor tests, and the docs; its
registry includes the failure-injection methods ``boom`` (raises inside
the worker), ``exit`` (kills the worker process mid-batch), and ``slow``
(fixed per-map sleep) that the lifecycle/chaos tests drive.
"""

from __future__ import annotations

import importlib
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

__all__ = ["EngineSpec", "WorkerCrashed", "WorkerBatchError",
           "worker_main", "demo_spec",
           "encode_batch", "decode_batch",
           "encode_results", "decode_results", "decode_shm_results"]


class WorkerCrashed(RuntimeError):
    """A worker process died (or the pool has none left alive): the
    channel hit EOF mid-conversation.  The batch that observed it is
    requeued by the engine's normal failure path, so a surviving worker
    (or a fresh executor) can retry it."""


class WorkerBatchError(RuntimeError):
    """A batch raised *inside* a worker process.  Carries the remote
    traceback text (``remote_traceback``) so the parent-side stack —
    which only shows the pipe round-trip — still points at the real
    failure."""

    def __init__(self, method: str, exc_type: str, message: str,
                 remote_traceback: str):
        super().__init__(
            f"{exc_type} in worker while explaining {method!r}: {message}\n"
            f"--- remote traceback ---\n{remote_traceback}")
        self.method = method
        self.exc_type = exc_type
        self.remote_traceback = remote_traceback


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineSpec:
    """Picklable recipe for one engine's models.

    ``factory`` is a module-level callable or an ``"module:attr"``
    string (resolved by import in the worker — the robust form under the
    ``spawn`` start method); ``args``/``kwargs`` are its call arguments
    and must themselves pickle.  The factory returns either an
    ``{name: Explainer}`` mapping or ``(classifier, explainers)``.
    """

    factory: Union[str, Callable]
    args: Tuple = ()
    kwargs: Dict = field(default_factory=dict)

    def resolve_factory(self) -> Callable:
        if callable(self.factory):
            return self.factory
        module_name, _, attr = self.factory.partition(":")
        if not module_name or not attr:
            raise ValueError(
                f"spec factory string must look like 'module:attr', "
                f"got {self.factory!r}")
        return getattr(importlib.import_module(module_name), attr)

    def materialize(self) -> Tuple[object, Dict]:
        """Build ``(classifier_or_None, explainers)`` from the recipe."""
        built = self.resolve_factory()(*self.args, **dict(self.kwargs))
        if isinstance(built, tuple):
            classifier, explainers = built
        else:
            classifier, explainers = None, built
        if not isinstance(explainers, dict) or not explainers:
            raise TypeError(
                "spec factory must return an {name: Explainer} mapping "
                f"or a (classifier, mapping) pair, got {type(built)}")
        return classifier, explainers


# ----------------------------------------------------------------------
# Payload codec: what actually crosses the pipe, in both directions.
def encode_batch(method: str, images: np.ndarray, labels: np.ndarray,
                 targets: Optional[np.ndarray],
                 keys: Optional[List[Tuple]] = None,
                 ctxs: Optional[Tuple] = None) -> Tuple:
    """Pack one micro-batch for the wire: contiguous float32 image
    stack, int64 labels, and the optional target array (``None`` when
    no request in the batch set a counter class).  ``keys`` carries the
    per-request cache keys when the worker holds a read-only saliency
    store to probe (parent-tier misses may still be store hits a worker
    can serve without compute).  ``ctxs`` is the packed request-context
    tuple (:func:`~repro.serve.transport.pack_ctxs`); it is appended
    **only when present**, so context-free traffic keeps the pinned
    PR 5/PR 8 framings byte-for-byte."""
    images = np.ascontiguousarray(images, dtype=np.float32)
    labels = np.asarray(labels, dtype=np.int64)
    if targets is not None:
        targets = np.asarray(targets, dtype=np.int64)
    if ctxs is not None:
        return ("batch", method, images, labels, targets, keys, ctxs)
    return ("batch", method, images, labels, targets, keys)


def decode_batch(message: Tuple) -> Tuple[str, np.ndarray, np.ndarray,
                                          Optional[np.ndarray],
                                          Optional[List[Tuple]],
                                          Optional[Tuple]]:
    if len(message) == 5:                  # keyless legacy framing
        _, method, images, labels, targets = message
        return method, images, labels, targets, None, None
    if len(message) == 6:                  # keyed, context-free
        _, method, images, labels, targets, keys = message
        return method, images, labels, targets, keys, None
    _, method, images, labels, targets, keys, ctxs = message
    return method, images, labels, targets, keys, ctxs


def encode_results(results: List) -> Tuple:
    """Pack a batch's results: one stacked saliency array (the compact
    common case) plus per-map labels/targets/meta.  Mixed-shape maps —
    not produced by any registered method, but legal — fall back to a
    list of arrays."""
    maps = [np.asarray(r.saliency) for r in results]
    try:
        saliency = np.stack(maps)
    except ValueError:                     # mixed shapes: ship the list
        saliency = maps
    labels = [int(r.label) for r in results]
    targets = [r.target_label for r in results]
    metas = [r.meta for r in results]
    return (saliency, labels, targets, metas)


def decode_results(payload: Tuple) -> List:
    from ..explain.base import SaliencyResult
    saliency, labels, targets, metas = payload
    return [SaliencyResult(np.array(saliency[i]), labels[i],
                           target_label=targets[i], meta=metas[i])
            for i in range(len(labels))]


def decode_shm_results(view: np.ndarray, labels: List, targets: List,
                       metas: List) -> List:
    """Rebuild :class:`SaliencyResult`\\ s from a worker-written return
    segment: the shm counterpart of :func:`decode_results`.  Each map is
    copied out of the arena view (the slot is recycled for the next
    batch the moment the caller releases it, so results must own their
    memory)."""
    from ..explain.base import SaliencyResult
    return [SaliencyResult(np.array(view[i]), labels[i],
                           target_label=targets[i], meta=metas[i])
            for i in range(len(labels))]


# ----------------------------------------------------------------------
def _serve_batch(explainers: Dict, plan_cache, store, method: str,
                 images: np.ndarray, labels: np.ndarray,
                 targets: Optional[np.ndarray],
                 keys: Optional[List[Tuple]]) -> Tuple[List, float, int, int]:
    """The compute core shared by every batch framing (legacy pipe,
    slot-routed pipe, shm header): probe the worker-side store, run the
    plan cache over the misses, and reassemble results in request
    order.  Returns ``(results, batch_ms, n_computed, n_served)``."""
    explainer = explainers[method]
    served: Dict[int, object] = {}
    if store is not None and keys is not None:
        for i, key in enumerate(keys):
            if key is None:
                continue
            try:
                found = store.get(tuple(key))
            except Exception:              # noqa: BLE001
                # A store problem (e.g. a snapshot entry whose segment
                # the writer compacted away) must degrade to compute,
                # never fail the whole batch.
                found = None
            if found is not None:
                served[i] = found
    compute = [i for i in range(len(images)) if i not in served]
    batch_ms = 0.0
    computed_results: List = []
    if compute:
        if len(compute) == len(images):
            # The whole batch computes (the overwhelmingly common
            # case): skip the fancy-index copy and read straight from
            # the payload — under shm that is the arena view itself.
            sub_images, sub_labels = images, labels
            sub_targets = targets
        else:
            sub_images = images[compute]
            sub_labels = labels[compute]
            sub_targets = None if targets is None else targets[compute]
        start = time.perf_counter()
        # Plan replay when this replica has compiled the key; the
        # cache falls back to the tape (applying the
        # needs_gradients/no_grad contract) otherwise.
        computed_results = plan_cache.run(explainer, sub_images,
                                          sub_labels, sub_targets)
        batch_ms = (time.perf_counter() - start) * 1000.0
    results = [None] * len(images)
    for i, computed in zip(compute, computed_results):
        results[i] = computed
    for i, (hit, cost) in served.items():
        hit.meta = dict(hit.meta or {})
        hit.meta["store_hit"] = True
        hit.meta["store_cost_ms"] = cost
        results[i] = hit
    return results, batch_ms, len(compute), len(served)


def worker_main(conn, spec: EngineSpec) -> None:
    """Worker-process entry point: materialize the spec once, then
    serve ``batch`` / ``stats`` / ``stop`` messages until the parent
    hangs up.  Runs single-threaded in its own interpreter, so there is
    no GIL to share with the parent or with sibling workers.

    Each worker holds its own :class:`~repro.serve.plans.PlanCache`:
    plans compile **per replica** (buffer arenas cannot cross process
    boundaries), so after each worker's first batch of a
    (method, shape) key its hot path replays tape-free.  The ``stats``
    reply carries the replica's plan counters.

    A ``("store", directory, snapshot)`` message attaches a
    **read-only** :class:`~repro.serve.store.SaliencyStore` built from
    the parent's index snapshot (the single-writer rule: only the
    parent process ever writes the directory).  Batches whose payload
    carries per-request cache keys then probe the store first and
    compute only the misses; store-served results come back flagged
    ``meta["store_hit"]`` with their persisted cost, and ``batch_ms``
    covers the computed subset only.
    """
    from .plans import PlanCache

    try:
        _classifier, explainers = spec.materialize()
    except BaseException:                  # noqa: BLE001 — report, don't die
        try:
            conn.send(("init_error", traceback.format_exc()))
        finally:
            conn.close()
        return
    conn.send(("ready", os.getpid()))
    plan_cache = PlanCache()
    store = None
    arena_client = None
    batches = maps = store_hits = store_misses = 0
    # Per-tenant / per-class map counts, fed by the packed request
    # contexts riding context-aware batch messages (see pack_ctxs).
    tenant_maps: Dict[str, int] = {}
    priority_maps: Dict[str, int] = {}

    def note_ctxs(ctxs) -> None:
        if not ctxs:
            return
        for wire_ctx in ctxs:
            if not wire_ctx:
                continue
            prio, _deadline, tenant, _trace = wire_ctx
            priority_maps[prio] = priority_maps.get(prio, 0) + 1
            if tenant is not None:
                tenant_maps[tenant] = tenant_maps.get(tenant, 0) + 1

    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:               # parent went away: just exit
                break
            # Worker-side receive stamp (CLOCK_MONOTONIC is system-wide
            # on Linux, so the parent can compare it with its own
            # dispatch stamps on the same host).
            recv_at = time.monotonic()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "stats":
                conn.send(("stats", {"pid": os.getpid(),
                                     "batches": batches, "maps": maps,
                                     "plans": plan_cache.stats(),
                                     "tenants": dict(tenant_maps),
                                     "priorities": dict(priority_maps),
                                     "store": {"hits": store_hits,
                                               "misses": store_misses}}))
                continue
            if kind == "store":
                from .store import SaliencyStore
                _, directory, snapshot = message
                try:
                    if store is not None:
                        store.close()
                    store = SaliencyStore.open_readonly(directory,
                                                        snapshot=snapshot)
                    conn.send(("store_ok", len(store)))
                except BaseException:      # noqa: BLE001 — report it
                    store = None
                    conn.send(("store_error", traceback.format_exc()))
                continue
            if kind == "shm_batch":
                # Header-only framing: the payload lives in the arena.
                # Context-free senders (the pinned PR 8 framing) omit
                # the trailing ctxs element.
                ctxs = message[8] if len(message) > 8 else None
                _, slot, method, out_desc, ret_desc, labels, targets, \
                    keys = message[:8]
                if arena_client is None:
                    from .transport import ArenaClient
                    arena_client = ArenaClient()
                images = arena_client.view(out_desc)
                if images is None:         # stale segment: parent resends
                    conn.send(("shm_stale", slot))
                    continue
                try:
                    results, batch_ms, n_computed, n_served = _serve_batch(
                        explainers, plan_cache, store, method, images,
                        labels, targets, keys)
                except BaseException as exc:  # noqa: BLE001 — ship it back
                    conn.send(("error_slot", slot, method,
                               type(exc).__name__, str(exc),
                               traceback.format_exc()))
                    continue
                finally:
                    del images             # release the arena view
                if store is not None and keys is not None:
                    store_hits += n_served
                    store_misses += n_computed
                batches += 1
                maps += n_computed
                note_ctxs(ctxs)
                maps_out = [np.asarray(r.saliency, dtype=np.float32)
                            for r in results]
                written = arena_client.write_ret(ret_desc, maps_out)
                # Worker timestamps ride back only when the message
                # carried contexts, so the pinned reply framings keep
                # their exact arity for context-free traffic.
                wstamps = ((os.getpid(), recv_at, time.monotonic())
                           if ctxs is not None else None)
                if written is None:
                    # Reply outgrew the return segment (or shapes are
                    # mixed): ship the pickle once, with the byte count
                    # the parent turns into a growth hint.
                    first = maps_out[0].shape if maps_out else ()
                    uniform = all(m.shape == first for m in maps_out)
                    need = (len(maps_out)
                            * int(np.prod(first, dtype=np.int64)) * 4
                            if uniform and maps_out else 0)
                    reply = ("ok_pipe", slot, encode_results(results),
                             batch_ms, need)
                    conn.send(reply + (wstamps,) if wstamps else reply)
                    continue
                ret_shape, ret_dtype = written
                reply = ("ok_shm", slot, ret_shape, ret_dtype,
                         [int(r.label) for r in results],
                         [r.target_label for r in results],
                         [r.meta for r in results], batch_ms)
                conn.send(reply + (wstamps,) if wstamps else reply)
                continue
            if kind == "batch_slot":
                # Pipe payload with slot routing: the fallback leg of
                # the shm transport (stale header resend).  Context-free
                # senders omit the trailing ctxs element.
                ctxs = message[7] if len(message) > 7 else None
                _, slot, method, images, labels, targets, keys = \
                    message[:7]
                try:
                    results, batch_ms, n_computed, n_served = _serve_batch(
                        explainers, plan_cache, store, method, images,
                        labels, targets, keys)
                except BaseException as exc:  # noqa: BLE001 — ship it back
                    conn.send(("error_slot", slot, method,
                               type(exc).__name__, str(exc),
                               traceback.format_exc()))
                    continue
                if store is not None and keys is not None:
                    store_hits += n_served
                    store_misses += n_computed
                batches += 1
                maps += n_computed
                note_ctxs(ctxs)
                wstamps = ((os.getpid(), recv_at, time.monotonic())
                           if ctxs is not None else None)
                reply = ("ok_pipe", slot, encode_results(results),
                         batch_ms, 0)
                conn.send(reply + (wstamps,) if wstamps else reply)
                continue
            # PR 5 pipe framing, byte-for-byte (context-aware senders
            # append a ctxs element; the reply then carries worker
            # timestamps).
            method, images, labels, targets, keys, ctxs = \
                decode_batch(message)
            try:
                results, batch_ms, n_computed, n_served = _serve_batch(
                    explainers, plan_cache, store, method, images,
                    labels, targets, keys)
            except BaseException as exc:   # noqa: BLE001 — ship it back
                conn.send(("error", method, type(exc).__name__, str(exc),
                           traceback.format_exc()))
            else:
                if store is not None and keys is not None:
                    store_hits += n_served
                    store_misses += n_computed
                batches += 1
                maps += n_computed         # store hits did no compute
                note_ctxs(ctxs)
                wstamps = ((os.getpid(), recv_at, time.monotonic())
                           if ctxs is not None else None)
                reply = ("ok", encode_results(results), batch_ms)
                conn.send(reply + (wstamps,) if wstamps else reply)
    finally:
        plan_cache.close()
        if store is not None:
            store.close()
        if arena_client is not None:
            arena_client.close()
        conn.close()


# ----------------------------------------------------------------------
# Demo spec: a seeded untrained classifier + explainers, identical in
# every process that materializes it (SmallResNet init is RNG-seeded).
class _BoomExplainer:
    """Failure injection: every batch raises inside the worker."""

    name = "boom"
    needs_gradients = False

    def explain_batch(self, images, labels, targets=None):
        raise RuntimeError("injected worker failure")


class _ExitExplainer:
    """Failure injection: the worker process dies mid-batch (no reply,
    no cleanup — exactly what an OOM kill looks like to the parent)."""

    name = "exit"
    needs_gradients = False

    def explain_batch(self, images, labels, targets=None):
        os._exit(13)


class _EchoExplainer:
    """Payload-dominated method for transport benchmarking: the
    "saliency" is the channel mean of the input, so compute is a single
    vectorized pass and per-request cost is dominated by moving the
    image stack — exactly the regime where transport overhead shows.
    The output depends on the input, so parity checks across transports
    are real, not vacuous."""

    name = "echo"
    needs_gradients = False
    plan_eligible = False

    def explain_batch(self, images, labels, targets=None):
        from ..explain.base import SaliencyResult
        images = np.asarray(images, dtype=np.float32)
        stacked = images.mean(axis=1)
        return [SaliencyResult(np.array(stacked[i]), int(labels[i]))
                for i in range(len(images))]


def _demo_explainers(methods: Tuple[str, ...] = ("gradcam", "occlusion"),
                     num_classes: int = 2, in_channels: int = 1,
                     width: int = 8, seed: int = 0,
                     slow_ms: float = 200.0):
    """Module-level factory for :func:`demo_spec` (import-resolvable
    from any process).  Untrained weights are fine for serving-runtime
    work — engine cost is architecture-bound — and the seeded init makes
    every replica bit-identical to the parent's copy."""
    from ..classifiers import SmallResNet
    from ..explain import (FullGradExplainer, GradCAMExplainer,
                           OcclusionExplainer, SimpleFullGradExplainer)
    from ..explain.base import Explainer, SaliencyResult

    classifier = SmallResNet(num_classes, in_channels, width=width,
                             seed=seed)
    classifier.eval()

    class _SlowExplainer(Explainer):
        name = "slow"
        needs_gradients = False

        def explain_batch(self, images, labels, targets=None):
            time.sleep(slow_ms * len(images) / 1000.0)
            return [SaliencyResult(np.zeros(images.shape[2:],
                                            dtype=np.float32), int(y))
                    for y in labels]

    registry = {
        "gradcam": lambda: GradCAMExplainer(classifier),
        "fullgrad": lambda: FullGradExplainer(classifier),
        "simple_fullgrad": lambda: SimpleFullGradExplainer(classifier),
        "occlusion": lambda: OcclusionExplainer(classifier, window=4,
                                                stride=2),
        "boom": _BoomExplainer,
        "exit": _ExitExplainer,
        "slow": _SlowExplainer,
        "echo": _EchoExplainer,
    }
    unknown = [m for m in methods if m not in registry]
    if unknown:
        raise KeyError(f"demo spec has no methods {unknown}; "
                       f"choose from {sorted(registry)}")
    return classifier, {m: registry[m]() for m in methods}


def demo_spec(methods: Tuple[str, ...] = ("gradcam", "occlusion"),
              num_classes: int = 2, in_channels: int = 1, width: int = 8,
              seed: int = 0, slow_ms: float = 200.0) -> EngineSpec:
    """Spec for a small seeded demo engine (see :func:`_demo_explainers`).

    Used by ``benchmarks/bench_serve.py``, the process-executor test
    suite, and as the reference for writing real specs: the parent calls
    ``spec.materialize()`` for its own engine-side explainers, and every
    worker materializes the same recipe to bit-identical replicas.
    """
    return EngineSpec("repro.serve.worker:_demo_explainers",
                      kwargs=dict(methods=tuple(methods),
                                  num_classes=num_classes,
                                  in_channels=in_channels, width=width,
                                  seed=seed, slow_ms=slow_ms))
