"""Persistent content-addressed saliency store: the serving cache's
disk tier.

The in-memory :class:`~repro.serve.cache.ShardedSaliencyCache` dies
with the process, so every restart, deploy, or fresh worker pool starts
cold and re-pays the full explainer cost — exactly the waste GDSF
eviction was built to avoid.  :class:`SaliencyStore` keeps the tier-1
contract warm across process lifetimes:

* **Content-addressed** — keyed on the same ``(image_digest, method,
  label, target)`` :data:`~repro.serve.cache.CacheKey` the memory tier
  uses, so an entry written by one run is a hit for any later run (or
  any sibling process) that requests the same bytes.
* **Append-only segments** — values are ``.npz``-framed records
  (float16-quantized saliency + meta arrays, JSON header carrying the
  key and GDSF cost) appended to fixed-size segment files
  (``seg-NNNNNNNN.seg``).  Nothing is ever updated in place: a re-put
  of a key appends a new record and the index forgets the old one.
* **Compact index, journaled** — lookups go through an in-memory dict
  ``key -> (segment, offset, length, cost, size, clock)``; every insert
  appends one JSON line to ``index.jsonl``.  On open, the journal is
  replayed and *validated* against the segment files; a missing,
  unparseable, or inconsistent journal (a torn write, a crashed
  flush) triggers a full segment **scan rebuild** that CRC-checks each
  record and drops only the corrupt tail — everything before a torn
  record survives with its cost metadata intact.
* **Write-behind** — :meth:`put` enqueues to a bounded, key-coalescing
  queue and returns immediately; a flusher thread batches records to
  the head segment with one fsync per drained round.  The serving hot
  path never blocks on disk; an overflowing queue drops its oldest
  pending entry (counted) rather than stalling the engine.
* **mmap reads** — :meth:`get` slices the record out of a per-segment
  ``mmap`` and materializes fresh float32 arrays (copy-on-read,
  frozen like tier-1 hits), so concurrent readers share page cache,
  not locks.
* **GDSF survives restarts** — each record persists the per-map
  compute cost the runtime measured; a tier-2 hit re-enters the memory
  tier with its original cost, so cost-aware eviction keeps protecting
  expensive maps after a restart.
* **Whole-segment compaction** — when live segment bytes exceed
  ``capacity_bytes``, the *coldest* sealed segment (lowest summed GDSF
  priority ``clock + cost/size`` over its live records) is compacted:
  live records worth keeping are rewritten (raw byte copy) to the head
  segment in priority order until the budget runs out, the rest are
  evicted (the clock ratchets, aging stale entries out), and the
  victim file is deleted.
* **Single writer, many readers** — a ``LOCK`` file (pid-stamped,
  stale-safe) enforces one read-write opener per directory.
  :meth:`SaliencyStore.open_readonly` opens the same directory without
  the lock, the journal replay, or a flusher thread — optionally from
  an **index snapshot** message (:meth:`index_snapshot`), which is how
  :class:`~repro.serve.executor.ProcessExecutor` workers attach: the
  single-writer parent ships them the directory plus its current
  index, and every worker serves store hits without ever scanning.
"""

from __future__ import annotations

import io
import json
import mmap
import os
import struct
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import STORE_CAPACITY_BYTES, STORE_SEGMENT_BYTES
from ..explain.base import SaliencyResult
from .cache import CacheKey, _freeze_result

__all__ = ["SaliencyStore", "StoreClosed"]

#: Record framing: MAGIC | header_len u32 | payload_len u32 | header
#: JSON | payload (.npz bytes) | crc32 u32 over header+payload.
_MAGIC = b"SAL1"
_PREFIX = struct.Struct("<4sII")
_CRC = struct.Struct("<I")

_JOURNAL = "index.jsonl"
_LOCKFILE = "LOCK"
_SEG_FMT = "seg-{:08d}.seg"


class StoreClosed(RuntimeError):
    """Raised by operations on a closed (or read-only, for writes)
    :class:`SaliencyStore`."""


@dataclass
class _Entry:
    """Index value: where one live record lives, plus its GDSF state."""

    __slots__ = ("segment", "offset", "length", "cost", "size", "clock")

    segment: int
    offset: int
    length: int
    cost: float        # persisted per-map compute cost (ms)
    size: float        # saliency element count (GDSF denominator)
    clock: float       # recency component of the GDSF priority


def _priority(entry: _Entry, clock_floor: float = 0.0) -> float:
    return max(entry.clock, clock_floor) + entry.cost / max(entry.size, 1.0)


# ----------------------------------------------------------------------
# Record codec: SaliencyResult <-> framed bytes.
def _encode_record(key: CacheKey, result: SaliencyResult,
                   cost_ms: Optional[float]) -> Tuple[bytes, float]:
    """Frame one result as record bytes; returns ``(record, size)``
    where ``size`` is the saliency element count the GDSF priority
    divides by.

    Float arrays (the saliency map and any float meta arrays) are
    quantized to float16 — a saliency map is a *ranking*, and float16's
    ~1e-3 relative precision preserves peak-relative ordering at half
    the bytes; integer/bool arrays keep their dtype.  Meta values that
    are neither ndarrays nor JSON-serializable are dropped (the store
    persists results, not arbitrary object graphs).
    """
    saliency = np.asarray(result.saliency)
    arrays = {"saliency": _quantize(saliency)}
    meta_json: Dict[str, object] = {}
    for name, value in (result.meta or {}).items():
        if isinstance(value, np.ndarray):
            arrays[f"meta:{name}"] = _quantize(value)
        else:
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                continue               # non-serializable meta: dropped
            meta_json[name] = value
    buf = io.BytesIO()
    np.savez(buf, **arrays)            # uncompressed: reads are memcopies
    payload = buf.getvalue()
    header = json.dumps({
        "key": list(key),
        "label": int(result.label),
        "target": (None if result.target_label is None
                   else int(result.target_label)),
        "cost_ms": None if cost_ms is None else float(cost_ms),
        "meta": meta_json,
    }, separators=(",", ":")).encode()
    body = header + payload
    record = (_PREFIX.pack(_MAGIC, len(header), len(payload)) + body
              + _CRC.pack(zlib.crc32(body)))
    return record, float(max(saliency.size, 1))


def _quantize(array: np.ndarray) -> np.ndarray:
    if np.issubdtype(array.dtype, np.floating):
        return np.ascontiguousarray(array, dtype=np.float16)
    return np.ascontiguousarray(array)


def _decode_record(view: memoryview, *, check_crc: bool = False
                   ) -> Tuple[CacheKey, SaliencyResult, Optional[float],
                              int]:
    """Parse one framed record from ``view`` (which starts at the
    record); returns ``(key, result, cost_ms, record_length)``.  Raises
    ``ValueError`` on any framing/CRC violation (the scan-rebuild path
    treats that as the corrupt tail and stops)."""
    if len(view) < _PREFIX.size:
        raise ValueError("truncated record prefix")
    magic, header_len, payload_len = _PREFIX.unpack_from(view)
    if magic != _MAGIC:
        raise ValueError("bad record magic")
    total = _PREFIX.size + header_len + payload_len + _CRC.size
    if len(view) < total:
        raise ValueError("truncated record body")
    body = view[_PREFIX.size:_PREFIX.size + header_len + payload_len]
    if check_crc:
        (crc,) = _CRC.unpack_from(view, total - _CRC.size)
        if zlib.crc32(body) != crc:
            raise ValueError("record CRC mismatch")
    header = json.loads(bytes(body[:header_len]))
    arrays = np.load(io.BytesIO(bytes(body[header_len:])),
                     allow_pickle=False)
    saliency = _materialize(arrays["saliency"])
    meta = dict(header.get("meta") or {})
    for name in arrays.files:
        if name.startswith("meta:"):
            meta[name[len("meta:"):]] = _materialize(arrays[name])
    result = SaliencyResult(saliency, int(header["label"]),
                            target_label=header.get("target"), meta=meta)
    digest, method, label, target = header["key"]
    key: CacheKey = (digest, method, int(label),
                     None if target is None else int(target))
    result.image_digest = digest
    return key, result, header.get("cost_ms"), total


def _materialize(array: np.ndarray) -> np.ndarray:
    """Copy-on-read: float16 records widen back to float32 (a fresh
    array the caller owns), everything else is copied as-is."""
    if array.dtype == np.float16:
        return array.astype(np.float32)
    return np.array(array, copy=True)


# ----------------------------------------------------------------------
class SaliencyStore:
    """Two-tier disk store for saliency results (see module docstring).

    Parameters
    ----------
    directory:
        Store root; created if missing.  One read-write opener at a
        time (``LOCK`` file); any number of read-only openers.
    capacity_bytes:
        Soft bound on total segment bytes; exceeded space is reclaimed
        by whole-segment compaction after each flush round.
    segment_bytes:
        Head-segment roll threshold (records never split across
        segments, so a segment may exceed this by one record).
    queue_depth:
        Write-behind queue bound (unique keys, coalescing).  A full
        queue drops its **oldest** pending entry rather than blocking
        the serving hot path; drops are counted in :meth:`stats`.
    write_behind:
        ``False`` runs without the flusher thread: puts still enqueue
        and coalesce, but records reach disk only on :meth:`flush` —
        the deterministic mode the crash-consistency tests (and
        synchronous-overhead benchmarks) drive.
    """

    def __init__(self, directory, *,
                 capacity_bytes: int = STORE_CAPACITY_BYTES,
                 segment_bytes: int = STORE_SEGMENT_BYTES,
                 queue_depth: int = 512,
                 write_behind: bool = True):
        if capacity_bytes < 1 or segment_bytes < 1:
            raise ValueError("capacity_bytes/segment_bytes must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.directory = os.fspath(directory)
        self.capacity_bytes = int(capacity_bytes)
        self.segment_bytes = int(segment_bytes)
        self.queue_depth = int(queue_depth)
        self.read_only = False
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.RLock()
        # Serializes the writer role (flusher thread, synchronous
        # flush() callers, close()) so all file I/O runs outside
        # self._lock: _io_lock -> _lock is the only nesting order.
        self._io_lock = threading.Lock()
        self._drain_active = False
        self._index: Dict[CacheKey, _Entry] = {}
        self._segments: Dict[int, int] = {}     # id -> flushed byte size
        self._mmaps: Dict[int, Tuple[mmap.mmap, int]] = {}
        self._pending: "OrderedDict[CacheKey, Tuple[SaliencyResult, Optional[float]]]" = OrderedDict()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._clock = 0.0
        self._seq = 0.0                          # monotone insert clock
        self._head: Optional[int] = None         # open segment id
        self._head_file = None
        self._journal_file = None
        self.rebuilds = 0
        self.hits = 0
        self.pending_hits = 0
        self.misses = 0
        self.hit_cost_ms = 0.0
        self.tenant_hits: Dict[str, int] = {}
        self.writes = 0
        self.coalesced = 0
        self.write_drops = 0
        self.compactions = 0
        self.evictions = 0
        self.fsyncs = 0
        self._acquire_lockfile()
        try:
            self._load()
        except BaseException:
            self._release_lockfile()
            raise
        self._flusher: Optional[threading.Thread] = None
        if write_behind:
            self._flusher = threading.Thread(target=self._flush_loop,
                                             name="saliency-store-flush",
                                             daemon=True)
            self._flusher.start()

    # -- read-only opener ----------------------------------------------
    @classmethod
    def open_readonly(cls, directory,
                      snapshot: Optional[List] = None) -> "SaliencyStore":
        """Open an existing store for reads only: no lock file, no
        flusher, no journal rewrite.  With ``snapshot`` (a
        :meth:`index_snapshot` message from the single writer) the
        index is adopted verbatim — the reader never touches the
        journal, which is what lets a whole worker fleet attach to one
        writer's directory in O(index) time."""
        store = cls.__new__(cls)
        store.directory = os.fspath(directory)
        store.capacity_bytes = STORE_CAPACITY_BYTES
        store.segment_bytes = STORE_SEGMENT_BYTES
        store.queue_depth = 1
        store.read_only = True
        store._lock = threading.RLock()
        store._io_lock = threading.Lock()
        store._drain_active = False
        store._index = {}
        store._segments = {}
        store._mmaps = {}
        store._pending = OrderedDict()
        store._wake = threading.Condition(store._lock)
        store._closed = False
        store._clock = 0.0
        store._seq = 0.0
        store._head = None
        store._head_file = None
        store._journal_file = None
        store._flusher = None
        store.rebuilds = 0
        store.hits = store.pending_hits = store.misses = 0
        store.hit_cost_ms = 0.0
        store.tenant_hits = {}
        store.writes = store.coalesced = store.write_drops = 0
        store.compactions = store.evictions = store.fsyncs = 0
        if snapshot is not None:
            store._adopt_snapshot(snapshot)
        else:
            store._load(scan_fallback_rewrites_journal=False)
        return store

    def _adopt_snapshot(self, snapshot: List) -> None:
        for digest, method, label, target, seg, off, length, cost, size \
                in snapshot:
            key: CacheKey = (digest, method, int(label),
                             None if target is None else int(target))
            self._seq += 1.0
            self._index[key] = _Entry(int(seg), int(off), int(length),
                                      float(cost), float(size), self._seq)
        for seg in {e.segment for e in self._index.values()}:
            path = self._segment_path(seg)
            self._segments[seg] = (os.path.getsize(path)
                                   if os.path.exists(path) else 0)

    def index_snapshot(self) -> List:
        """JSON-safe index snapshot for read-only attach messages:
        one ``[digest, method, label, target, segment, offset, length,
        cost, size]`` row per live entry.  Pending (not yet flushed)
        entries are excluded — they have no on-disk address yet."""
        with self._lock:
            return [[key[0], key[1], key[2], key[3],
                     e.segment, e.offset, e.length, e.cost, e.size]
                    for key, e in self._index.items()]

    # -- lockfile ------------------------------------------------------
    def _lockfile_path(self) -> str:
        return os.path.join(self.directory, _LOCKFILE)

    def _acquire_lockfile(self) -> None:
        path = self._lockfile_path()
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    with open(path) as fh:
                        pid = int(fh.read().strip() or "0")
                except FileNotFoundError:
                    continue               # holder vanished: retry create
                except (OSError, ValueError):
                    pid = 0
                if pid and _pid_alive(pid):
                    raise RuntimeError(
                        f"store {self.directory!r} is locked by live "
                        f"writer pid {pid}; open_readonly() for "
                        "additional readers (single-writer rule)")
                # Stale lock (writer died without close): take over
                # atomically.  rename() is the claim — of all the
                # contenders that read the dead pid, exactly one wins
                # (the rest get ENOENT and loop, finding either the
                # winner's fresh lock or no file).  A plain unlink here
                # would race: two contenders could both read the dead
                # pid and the second unlink would remove the first
                # winner's freshly written lock.
                claimed = path + f".stale.{os.getpid()}"
                try:
                    os.rename(path, claimed)
                except OSError:
                    continue
                # Re-check what we claimed: a fresh owner may have
                # replaced the lock between our read and the rename.
                try:
                    with open(claimed) as fh:
                        owner = int(fh.read().strip() or "0")
                except (OSError, ValueError):
                    owner = 0
                if owner and _pid_alive(owner):
                    try:                   # hand a live owner's lock back
                        os.link(claimed, path)
                    except OSError:
                        pass               # a newer lock already exists
                    os.unlink(claimed)
                    raise RuntimeError(
                        f"store {self.directory!r} is locked by live "
                        f"writer pid {owner}; open_readonly() for "
                        "additional readers (single-writer rule)")
                os.unlink(claimed)
                continue
            with os.fdopen(fd, "w") as fh:
                fh.write(str(os.getpid()))
            return

    def _release_lockfile(self) -> None:
        try:
            os.unlink(self._lockfile_path())
        except OSError:
            pass

    # -- open: journal replay, scan rebuild ----------------------------
    def _segment_path(self, segment: int) -> str:
        return os.path.join(self.directory, _SEG_FMT.format(segment))

    def _segment_ids_on_disk(self) -> List[int]:
        ids = []
        for name in os.listdir(self.directory):
            if name.startswith("seg-") and name.endswith(".seg"):
                try:
                    ids.append(int(name[4:-4]))
                except ValueError:
                    continue
        return sorted(ids)

    def _load(self, scan_fallback_rewrites_journal: bool = True) -> None:
        """Build the index: journal replay on the fast path, CRC-checked
        segment scan when the journal is missing or inconsistent."""
        on_disk = self._segment_ids_on_disk()
        sizes = {seg: os.path.getsize(self._segment_path(seg))
                 for seg in on_disk}
        if self._replay_journal(sizes):
            self._segments = {seg: sizes[seg] for seg in on_disk}
        else:
            self._scan_rebuild(on_disk)
            if scan_fallback_rewrites_journal and not self.read_only:
                self._rewrite_journal()
        if not self.read_only:
            self._open_head()
            self._journal_file = open(
                os.path.join(self.directory, _JOURNAL), "a")

    def _replay_journal(self, sizes: Dict[int, int]) -> bool:
        """Apply the journal; ``False`` (triggering a scan rebuild) on
        any parse error or an entry pointing outside its segment."""
        path = os.path.join(self.directory, _JOURNAL)
        if not os.path.exists(path):
            return not sizes               # empty store: nothing to scan
        index: Dict[CacheKey, _Entry] = {}
        try:
            with open(path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    op = json.loads(line)
                    if op["op"] == "put":
                        digest, method, label, target = op["key"]
                        key = (digest, method, int(label),
                               None if target is None else int(target))
                        self._seq += 1.0
                        index[key] = _Entry(int(op["seg"]), int(op["off"]),
                                            int(op["len"]),
                                            float(op.get("cost") or 0.0),
                                            float(op.get("size") or 1.0),
                                            self._seq)
                    elif op["op"] == "drop":
                        seg = int(op["seg"])
                        for k in [k for k, e in index.items()
                                  if e.segment == seg]:
                            del index[k]
                    else:
                        return False
        except (OSError, ValueError, KeyError, TypeError):
            return False
        for entry in index.values():
            size = sizes.get(entry.segment)
            if size is None or entry.offset + entry.length > size:
                return False               # torn write / missing segment
        self._index = index
        return True

    def _scan_rebuild(self, on_disk: List[int]) -> None:
        """Rebuild the index by CRC-checking every record of every
        segment in order.  A corrupt record ends its segment's scan
        (append-only: everything after a torn record is unreachable),
        dropping only the tail; records in later segments — and every
        record before the tear — survive with their cost metadata."""
        self.rebuilds += 1
        self._index = {}
        self._segments = {}
        for seg in on_disk:
            path = self._segment_path(seg)
            with open(path, "rb") as fh:
                data = fh.read()
            view = memoryview(data)
            offset = 0
            while offset < len(data):
                try:
                    key, _result, cost, length = _decode_record(
                        view[offset:], check_crc=True)
                except Exception:
                    break                  # corrupt tail: drop the rest
                self._seq += 1.0
                self._index[key] = _Entry(
                    seg, offset, length,
                    0.0 if cost is None else float(cost),
                    float(max(np.asarray(_result.saliency).size, 1)),
                    self._seq)
                offset += length
            self._segments[seg] = offset   # live prefix only

    def _rewrite_journal(self) -> None:
        """Replace the journal with a snapshot of the current index
        (after a scan rebuild, and on clean close — bounds journal
        growth and makes the next open a pure replay)."""
        path = os.path.join(self.directory, _JOURNAL)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            for key, e in self._index.items():
                fh.write(json.dumps(
                    {"op": "put", "key": list(key), "seg": e.segment,
                     "off": e.offset, "len": e.length, "cost": e.cost,
                     "size": e.size}, separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def _open_head(self) -> None:
        """Open (or create) the append head: the highest on-disk
        segment if it has room, else a fresh one."""
        ids = sorted(self._segments) or [0]
        head = ids[-1]
        if self._segments.get(head, 0) >= self.segment_bytes:
            head += 1
        self._head = head
        size = self._segments.get(head, 0)
        # Truncate scan-dropped tail bytes so appends land right after
        # the last live record (never inside a torn one).
        self._head_file = open(self._segment_path(head), "ab")
        if self._head_file.tell() != size:
            self._head_file.truncate(size)
            self._head_file.seek(size)
        self._segments[head] = size

    # -- mmap reads ----------------------------------------------------
    def _read_span(self, segment: int, offset: int,
                   length: int) -> memoryview:
        """A memoryview over one record, via a cached per-segment mmap
        (re-mapped when the writer has grown the file past the cached
        map's size)."""
        cached = self._mmaps.get(segment)
        if cached is None or cached[1] < offset + length:
            if cached is not None:
                _close_map(cached[0])
            with open(self._segment_path(segment), "rb") as fh:
                size = os.fstat(fh.fileno()).st_size
                mapped = mmap.mmap(fh.fileno(), size,
                                   access=mmap.ACCESS_READ)
            cached = (mapped, size)
            self._mmaps[segment] = cached
        return memoryview(cached[0])[offset:offset + length]

    # -- public API ----------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._index or key in self._pending

    def get(self, key: CacheKey, tenant: Optional[str] = None
            ) -> Optional[Tuple[SaliencyResult, Optional[float]]]:
        """Tier-2 probe: ``(result, cost_ms)`` on a hit, ``None`` on a
        miss.  The result's arrays are fresh copies (float16 records
        widen to float32) frozen exactly like tier-1 hits; ``cost_ms``
        is the persisted GDSF cost the caller should thread into its
        memory-tier insert so cost-aware eviction survives the restart.
        An entry still sitting in the write-behind queue is served from
        memory (``pending_hits``).  ``tenant`` attributes the hit in
        the per-tenant breakdown (``stats()["tenant_hits"]``)."""
        with self._lock:
            if self._closed:
                raise StoreClosed("store is closed")
            pending = self._pending.get(key)
            if pending is not None:
                self.pending_hits += 1
                self._count_tenant_hit(tenant)
                result, cost = pending
                self.hit_cost_ms += cost or 0.0
                copy = SaliencyResult(
                    np.array(result.saliency, copy=True), result.label,
                    target_label=result.target_label,
                    meta=dict(result.meta or {}))
                copy.image_digest = key[0]
                _freeze_result(copy)
                return copy, cost
            entry = self._index.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._seq += 1.0
            entry.clock = max(self._seq, self._clock)   # GDSF recency
            try:
                view = self._read_span(entry.segment, entry.offset,
                                       entry.length)
            except (OSError, ValueError):
                # The segment is gone (or unmappable): the single
                # writer's compaction deleted it after this read-only
                # opener took its index snapshot.  A stale entry is a
                # miss, not an error — forget it so the caller falls
                # back to compute.
                self._index.pop(key, None)
                self.misses += 1
                return None
            self.hits += 1
            self.hit_cost_ms += entry.cost
        try:
            _key, result, cost, _length = _decode_record(view)
        except (OSError, ValueError):
            # A record the index points at but cannot be parsed —
            # corruption past open-time validation.  Forget the entry
            # and report a miss rather than poisoning the caller.
            with self._lock:
                self._index.pop(key, None)
                self.hits -= 1
                self.hit_cost_ms -= entry.cost
                self.misses += 1
            return None
        with self._lock:
            self._count_tenant_hit(tenant)
        _freeze_result(result)
        return result, cost

    def _count_tenant_hit(self, tenant: Optional[str]) -> None:
        """Attribute one hit to a tenant (lock held); anonymous probes
        count only in the aggregate ``hits``/``pending_hits``."""
        if tenant is not None:
            self.tenant_hits[tenant] = self.tenant_hits.get(tenant, 0) + 1

    def put(self, key: CacheKey, result: SaliencyResult,
            cost_ms: Optional[float] = None) -> None:
        """Enqueue one result for write-behind persistence (returns
        immediately; never blocks on disk).  Re-puts of a pending key
        coalesce to the newest value; a full queue drops its oldest
        pending entry (counted in ``write_drops``)."""
        if self.read_only:
            raise StoreClosed("store is open read-only")
        with self._wake:
            if self._closed:
                raise StoreClosed("store is closed")
            if key in self._pending:
                self.coalesced += 1
                self._pending.pop(key)
            elif len(self._pending) >= self.queue_depth:
                self._pending.popitem(last=False)
                self.write_drops += 1
            self._pending[key] = (result, cost_ms)
            self._wake.notify_all()

    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until every pending entry reached disk (and fsync).
        With ``write_behind=False`` the drain runs on the calling
        thread instead."""
        if self.read_only:
            return
        if self._flusher is None:
            self._drain_once()
            return
        # time.monotonic(), not os.times().elapsed: the latter is a
        # coarse (often 10ms-tick) process clock that os module docs
        # don't even guarantee on every platform, and every other
        # deadline in serve is a monotonic instant.
        deadline = None if timeout is None else (time.monotonic()
                                                 + timeout)
        with self._wake:
            # _drain_active covers the window where the flusher popped
            # the last pending entries but has not fsynced them yet.
            while ((self._pending or self._drain_active)
                   and not self._closed):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError("store flush timed out")
                self._wake.wait(timeout=remaining if remaining else 0.05)

    def queue_depth_now(self) -> int:
        """Entries currently waiting in the write-behind queue (0 on a
        synchronous store); ``flush()`` drives it to zero."""
        with self._lock:
            return len(self._pending)

    def total_bytes(self) -> int:
        """On-disk payload bytes across all segment files — the number
        compaction holds under ``capacity_bytes``."""
        with self._lock:
            return sum(self._segments.values())

    def stats(self) -> Dict[str, object]:
        """Store counters: hits/``pending_hits``/misses, inserts and
        coalesced/dropped write-behind entries, compactions, entry and
        byte totals, and per-tenant served counts.  Aggregated into
        ``engine.stats()["store"]`` when the store is attached."""
        with self._lock:
            return {
                "hits": self.hits,
                "pending_hits": self.pending_hits,
                "misses": self.misses,
                "hit_cost_ms": self.hit_cost_ms,
                "tenant_hits": dict(self.tenant_hits),
                "writes": self.writes,
                "coalesced": self.coalesced,
                "write_drops": self.write_drops,
                "queue_depth": len(self._pending),
                "compactions": self.compactions,
                "evictions": self.evictions,
                "fsyncs": self.fsyncs,
                "rebuilds": self.rebuilds,
                "entries": len(self._index),
                "segments": len(self._segments),
                "bytes": sum(self._segments.values()),
                "capacity_bytes": self.capacity_bytes,
                "read_only": self.read_only,
            }

    def close(self) -> None:
        """Drain the write-behind queue, snapshot the journal, release
        the writer lock (idempotent)."""
        with self._wake:
            if self._closed:
                return
            self._closed = True            # no further put()/get()
            if self.read_only:
                self._close_maps()
                return
            self._wake.notify_all()
        if self._flusher is not None:
            self._flusher.join(timeout=5.0)
        # Final drain on this thread (deterministic, and correct
        # whether or not a flusher thread existed): anything enqueued
        # after the flusher's last round still reaches disk.
        self._drain_once()
        with self._lock:
            self._close_maps()
            if self._head_file is not None:
                self._head_file.close()
                self._head_file = None
            if self._journal_file is not None:
                self._journal_file.close()
                self._journal_file = None
            self._rewrite_journal()
        self._release_lockfile()

    def _close_maps(self) -> None:
        for mapped, _size in self._mmaps.values():
            _close_map(mapped)
        self._mmaps.clear()

    def __enter__(self) -> "SaliencyStore":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        mode = "ro" if self.read_only else "rw"
        return (f"SaliencyStore({self.directory!r}, mode={mode}, "
                f"entries={len(self._index)})")

    # -- write-behind flusher ------------------------------------------
    def _flush_loop(self) -> None:
        while True:
            with self._wake:
                while not self._pending and not self._closed:
                    self._wake.wait(timeout=0.2)
                if self._closed:
                    return
            self._drain_once()

    def _drain_once(self) -> None:
        """Write every pending entry (one fsync for the whole round),
        publish index entries + journal lines, then reclaim capacity.

        All disk work — npz encode, file writes, fsync, compaction —
        runs *outside* the store lock, which is taken only for the
        queue pops and the index publishes, so ``get()``/``put()`` on
        the serving hot path never wait behind I/O.  ``_io_lock``
        serializes the writer role across the flusher thread,
        synchronous ``flush()`` callers, and ``close()``."""
        with self._io_lock:
            try:
                wrote = 0
                while True:
                    with self._wake:
                        if not self._pending:
                            break
                        self._drain_active = True
                        key, (result, cost_ms) = self._pending.popitem(
                            last=False)
                    try:
                        record, size = _encode_record(key, result, cost_ms)
                    except (ValueError, TypeError):
                        continue           # unencodable result: skip it
                    self._write_record(
                        key, record,
                        0.0 if cost_ms is None else float(cost_ms), size)
                    wrote += 1
                if wrote:
                    self._sync()
                    self._maybe_compact()
            finally:
                with self._wake:
                    self._drain_active = False
                    self._wake.notify_all()   # flush() waiters

    def _write_record(self, key: CacheKey, record: bytes, cost: float,
                      size: float) -> None:
        """Append one framed record to the head segment and publish it
        to the index + journal.  Runs on the writer thread (under
        ``_io_lock``); only the publish takes the store lock, so the
        file write never blocks readers."""
        if self._segments[self._head] >= self.segment_bytes:
            self._roll_head()
        head = self._head
        offset = self._segments[head]
        self._head_file.write(record)
        # OS-level flush before publishing: the entry must be readable
        # through a fresh mmap the moment it enters the index (fsync —
        # durability — is batched per drain round in _sync()).
        self._head_file.flush()
        self._journal_file.write(json.dumps(
            {"op": "put", "key": list(key), "seg": head,
             "off": offset, "len": len(record), "cost": cost,
             "size": size}, separators=(",", ":")) + "\n")
        with self._lock:
            self._seq += 1.0
            self._index[key] = _Entry(head, offset, len(record), cost,
                                      size, max(self._seq, self._clock))
            self._segments[head] = offset + len(record)
            self.writes += 1

    def _roll_head(self) -> None:
        self._head_file.close()
        head = max(self._segments) + 1
        self._head_file = open(self._segment_path(head), "ab")
        with self._lock:
            self._head = head
            self._segments[head] = 0

    def _sync(self) -> None:
        """One fsync pair per drained batch — the 'fsync batching' that
        keeps write-behind cheap under bursty inserts."""
        self._head_file.flush()
        os.fsync(self._head_file.fileno())
        self._journal_file.flush()
        os.fsync(self._journal_file.fileno())
        self.fsyncs += 1

    # -- compaction ----------------------------------------------------
    def _maybe_compact(self) -> None:
        """Reclaim capacity by whole-segment compaction: pick the
        coldest sealed segment (lowest summed GDSF priority over its
        live records), rewrite the records worth keeping to the head
        (hot-first, raw byte copy), evict the rest, delete the file.

        Runs on the writer thread (under ``_io_lock``).  The store
        lock is held only for the victim selection and the per-record
        index updates — never across the victim read or the rewrites —
        so a multi-megabyte compaction can't stall ``get()``/``put()``.
        """
        guard = len(self._segments) + 2
        while guard:
            guard -= 1
            with self._lock:
                if sum(self._segments.values()) <= self.capacity_bytes:
                    return
                sealed = [seg for seg in self._segments
                          if seg != self._head]
                victim = None
                if sealed:
                    by_segment: Dict[int, List[Tuple[CacheKey, _Entry]]] \
                        = {seg: [] for seg in sealed}
                    for key, entry in self._index.items():
                        if entry.segment in by_segment:
                            by_segment[entry.segment].append((key, entry))
                    victim = min(sealed, key=lambda seg: sum(
                        _priority(e, self._clock)
                        for _k, e in by_segment[seg]))
                    live = sorted(
                        by_segment[victim],
                        key=lambda item: _priority(item[1], self._clock),
                        reverse=True)
                    victim_bytes = self._segments[victim]
                    budget = self.capacity_bytes - (
                        sum(self._segments.values()) - victim_bytes)
            if victim is None:
                self._roll_head()          # seal the head so it's eligible
                continue
            # One plain read of the whole victim, outside the lock:
            # sealed segments are fully flushed and records are
            # immutable bytes, so no mmap-cache traffic with get().
            try:
                with open(self._segment_path(victim), "rb") as fh:
                    data = fh.read()
            except OSError:
                data = b""
            rewritten = evicted = 0
            for key, entry in live:
                end = entry.offset + entry.length
                if entry.length <= budget and end <= len(data):
                    self._write_record(key, data[entry.offset:end],
                                       entry.cost, entry.size)
                    budget -= entry.length
                    rewritten += 1
                else:
                    # GDSF eviction: the clock ratchets to the dropped
                    # priority so long-untouched entries age out.
                    with self._lock:
                        self._clock = max(self._clock,
                                          _priority(entry, self._clock))
                        if self._index.get(key) is entry:
                            del self._index[key]
                            self.evictions += 1
                            evicted += 1
            with self._lock:
                mapped = self._mmaps.pop(victim, None)
                if mapped is not None:
                    _close_map(mapped[0])
                self._segments.pop(victim, None)
                self.compactions += 1
            try:
                os.unlink(self._segment_path(victim))
            except OSError:
                pass
            self._journal_file.write(json.dumps(
                {"op": "drop", "seg": victim},
                separators=(",", ":")) + "\n")
            # Sync only when this round actually moved or dropped
            # records (the lifetime eviction counter would force an
            # fsync on every later compaction after the first).
            if rewritten or evicted:
                self._sync()


def _close_map(mapped: mmap.mmap) -> None:
    """Close an mmap, tolerating live exported views (a reader decoding
    outside the lock while compaction retires the segment): the map is
    leaked until the view dies rather than crashing either thread."""
    try:
        mapped.close()
    except BufferError:
        pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
