"""Saliency result caching: digest keys, LRU shards, sharded front.

The cache key is ``(image_digest, method, label, target)``.  The digest
is computed **once per request** at submit time and threaded through the
whole runtime (queued request, cache insert, and the resulting
:class:`~repro.explain.base.SaliencyResult.image_digest` field) — the
image bytes are never re-hashed.

:class:`SaliencyCache` is one thread-safe bounded shard.
:class:`ShardedSaliencyCache` fronts N independent shards keyed on a
stable hash of the digest, so concurrent executor workers contend on
1/N of the lock traffic and eviction pressure spreads across shards.
With ``shards=1`` it degenerates to a single global shard (the engine's
default, which keeps exact eviction semantics).

Two eviction policies:

* ``policy="lru"`` (default) — classic least-recently-used.  Exact,
  cost-blind: a StyLEx map that took seconds to compute is evicted as
  readily as a CAE map that took a millisecond.
* ``policy="cost"`` — GDSF-style cost-aware eviction.  Each insert
  records the compute cost the runtime measured for the entry
  (``cost_ms``, per-map milliseconds); an entry's priority is
  ``clock + cost / size`` and the minimum-priority entry is evicted.
  The clock ratchets up to each evicted priority, so long-untouched
  entries age out eventually, but under pressure a flood of cheap
  recomputable maps cannot push out the few expensive ones — the
  weighted (cost-adjusted) hit rate stays high where LRU's collapses.
"""

from __future__ import annotations

import hashlib
import threading
import zlib
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..explain.base import SaliencyResult

CacheKey = Tuple[str, str, int, Optional[int]]


def image_digest(image: np.ndarray) -> str:
    """Content digest of one image (shape/dtype-aware, layout-stable)."""
    image = np.ascontiguousarray(image)
    h = hashlib.sha1()
    h.update(str(image.shape).encode())
    h.update(str(image.dtype).encode())
    h.update(image.tobytes())
    return h.hexdigest()


def request_key(image: np.ndarray, method: str, label: int,
                target_label: Optional[int],
                digest: Optional[str] = None) -> CacheKey:
    """Cache key for one explain request.

    Pass ``digest`` when the image was already hashed (the engine hashes
    each submitted image exactly once and threads the digest through).
    """
    if digest is None:
        digest = image_digest(image)
    target = None if target_label is None else int(target_label)
    return (digest, method, int(label), target)


EVICTION_POLICIES = ("lru", "cost")


def _derive_rates(stats: Dict[str, object]) -> Dict[str, object]:
    """Attach the derived ``hit_rate`` / ``weighted_hit_rate`` fields
    to a counter dict (benches and the store bench consume these
    instead of recomputing them ad hoc).  ``hit_rate`` is plain
    hits / lookups; ``weighted_hit_rate`` weights each request by its
    recorded compute cost — the fraction of requested compute served
    from cache.  Both are ``None`` until there is traffic to rate."""
    lookups = stats["hits"] + stats["misses"]
    stats["hit_rate"] = (stats["hits"] / lookups) if lookups else None
    requested = stats["hit_cost_ms"] + stats["insert_cost_ms"]
    stats["weighted_hit_rate"] = (
        stats["hit_cost_ms"] / requested if requested > 0 else None)
    return stats


def _freeze_result(result: SaliencyResult) -> None:
    """Make every ndarray reachable from a cached result read-only.

    Hits hand out the cached object itself (no per-hit copy), so a
    consumer mutating *any* array field — not just ``saliency`` — would
    silently corrupt every future hit.  Dict-valued fields (``meta``)
    are swept one level deep, where explainers stash auxiliary arrays.
    """
    fields = getattr(result, "__dict__", None)
    if fields is None:                   # plain values (tests, stubs)
        return
    for value in fields.values():
        if isinstance(value, np.ndarray):
            value.setflags(write=False)
        elif isinstance(value, dict):
            for item in value.values():
                if isinstance(item, np.ndarray):
                    item.setflags(write=False)


class SaliencyCache:
    """One thread-safe bounded shard: :data:`CacheKey` -> result.

    ``policy`` picks eviction: exact LRU (default) or cost-aware GDSF
    (``"cost"`` — see the module docstring).  Under the cost policy each
    eviction scans the shard for the minimum-priority entry; shards are
    a few hundred entries, so the scan is cheaper than maintaining a
    heap with lazy invalidation at this scale.
    """

    def __init__(self, capacity: int = 256, policy: str = "lru"):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if policy not in EVICTION_POLICIES:
            raise ValueError(f"unknown eviction policy {policy!r}; "
                             f"use one of {EVICTION_POLICIES}")
        self.capacity = capacity
        self.policy = policy
        self._store: "OrderedDict[CacheKey, SaliencyResult]" = OrderedDict()
        self._lock = threading.Lock()
        # Per-key compute cost is tracked under *both* policies (it
        # feeds the weighted hit rate); the GDSF priority map and aging
        # clock are cost-policy-only state.
        self._cost: Dict[CacheKey, float] = {}
        self._priority: Dict[CacheKey, float] = {}
        self._clock = 0.0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inserts = 0
        # Weighted hit-rate accounting: compute cost *avoided* by hits
        # vs compute cost actually *paid* (computed inserts only —
        # tier-2 store fills pass computed=False and bill nothing).
        self.hit_cost_ms = 0.0
        self.insert_cost_ms = 0.0
        # Per-tenant hit counts (requests that passed a tenant id on
        # the lookup); anonymous lookups count only in the aggregate.
        self.tenant_hits: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._store

    # -- cost-policy helpers (called under self._lock) -----------------
    @staticmethod
    def _size_of(result: SaliencyResult) -> float:
        saliency = getattr(result, "saliency", None)
        if isinstance(saliency, np.ndarray) and saliency.size:
            return float(saliency.size)
        return 1.0

    def _reprioritize(self, key: CacheKey, result: SaliencyResult) -> None:
        self._priority[key] = (self._clock
                               + self._cost.get(key, 0.0)
                               / self._size_of(result))

    def _evict_one(self) -> None:
        if self.policy == "cost":
            victim = min(self._priority, key=self._priority.__getitem__)
            evicted_priority = self._priority.pop(victim)
            self._clock = max(self._clock, evicted_priority)
            del self._store[victim]
        else:
            victim, _ = self._store.popitem(last=False)
        self._cost.pop(victim, None)
        self.evictions += 1

    # ------------------------------------------------------------------
    def get(self, key: CacheKey,
            tenant: Optional[str] = None) -> Optional[SaliencyResult]:
        with self._lock:
            result = self._store.get(key)
            if result is None:
                self.misses += 1
                return None
            self._store.move_to_end(key)
            if self.policy == "cost":
                # Refresh at the current clock: recency plus cost bonus.
                self._reprioritize(key, result)
            self.hits += 1
            self.hit_cost_ms += self._cost.get(key, 0.0)
            if tenant is not None:
                self.tenant_hits[tenant] = \
                    self.tenant_hits.get(tenant, 0) + 1
            return result

    def peek(self, key: CacheKey) -> Optional[SaliencyResult]:
        """Read without touching hit/miss counters or recency (for
        internal double-checks that must not skew serving stats)."""
        with self._lock:
            return self._store.get(key)

    def put(self, key: CacheKey, result: SaliencyResult,
            cost_ms: Optional[float] = None,
            computed: bool = True) -> None:
        """Insert a result, optionally recording its measured compute
        cost (per-map milliseconds; the engine passes batch ms / batch
        size).  The cost feeds the ``"cost"`` eviction policy and the
        weighted hit rate under either policy.  ``computed=False``
        marks inserts whose compute was *not* paid by this process —
        tier-2 store fills — so the weighted hit rate bills only real
        explainer work."""
        _freeze_result(result)
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
            else:
                self.inserts += 1
            self._store[key] = result
            if cost_ms is not None:
                self._cost[key] = float(cost_ms)
                if computed:
                    self.insert_cost_ms += float(cost_ms)
            if self.policy == "cost":
                self._reprioritize(key, result)
            while len(self._store) > self.capacity:
                self._evict_one()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return _derive_rates({
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "inserts": self.inserts,
                "hit_cost_ms": self.hit_cost_ms,
                "insert_cost_ms": self.insert_cost_ms,
                "tenant_hits": dict(self.tenant_hits),
                "size": len(self._store), "capacity": self.capacity})


class ShardedSaliencyCache:
    """N independent LRU shards selected by a stable digest hash.

    The per-request lock is per shard, so concurrent executor workers
    inserting results rarely contend; the same key always lands on the
    same shard, so hit/miss behaviour for any one request is unchanged.
    ``capacity`` is split as evenly as possible across shards (every
    shard holds at least one entry); ``shards`` is clamped so this
    always works.  Aggregate counters are summed over shards in
    :meth:`stats`.  ``policy`` selects each shard's eviction policy
    (``"lru"`` or cost-aware ``"cost"``); eviction decisions stay
    per-shard, so the cost policy compares priorities only among keys
    that share a shard.
    """

    def __init__(self, capacity: int = 256, shards: int = 1,
                 policy: str = "lru"):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        shards = min(shards, capacity)
        base, extra = divmod(capacity, shards)
        self.capacity = capacity
        self.policy = policy
        self.shards: List[SaliencyCache] = [
            SaliencyCache(base + (1 if i < extra else 0), policy=policy)
            for i in range(shards)
        ]

    # -- shard routing -------------------------------------------------
    def _shard(self, key: CacheKey) -> SaliencyCache:
        # crc32 of the digest: stable across processes (unlike hash())
        # so benchmarked shard balance is reproducible.
        return self.shards[zlib.crc32(key[0].encode()) % len(self.shards)]

    # -- mapping interface ---------------------------------------------
    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._shard(key)

    def get(self, key: CacheKey,
            tenant: Optional[str] = None) -> Optional[SaliencyResult]:
        return self._shard(key).get(key, tenant=tenant)

    def peek(self, key: CacheKey) -> Optional[SaliencyResult]:
        return self._shard(key).peek(key)

    def put(self, key: CacheKey, result: SaliencyResult,
            cost_ms: Optional[float] = None,
            computed: bool = True) -> None:
        self._shard(key).put(key, result, cost_ms=cost_ms,
                             computed=computed)

    # -- aggregated counters -------------------------------------------
    @property
    def hits(self) -> int:
        return sum(s.hits for s in self.shards)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self.shards)

    @property
    def evictions(self) -> int:
        return sum(s.evictions for s in self.shards)

    @property
    def inserts(self) -> int:
        return sum(s.inserts for s in self.shards)

    @property
    def hit_cost_ms(self) -> float:
        return sum(s.hit_cost_ms for s in self.shards)

    @property
    def insert_cost_ms(self) -> float:
        return sum(s.insert_cost_ms for s in self.shards)

    def tenant_hits(self) -> Dict[str, int]:
        """Per-tenant hit counts merged across shards."""
        merged: Dict[str, int] = {}
        for shard in self.shards:
            for tenant, count in shard.tenant_hits.items():
                merged[tenant] = merged.get(tenant, 0) + count
        return merged

    def shard_sizes(self) -> List[int]:
        return [len(s) for s in self.shards]

    def stats(self) -> Dict[str, object]:
        """Aggregate counters (with the derived hit rates) plus the
        per-shard breakdown."""
        return _derive_rates({
            "hits": self.hits, "misses": self.misses,
            "evictions": self.evictions, "inserts": self.inserts,
            "hit_cost_ms": self.hit_cost_ms,
            "insert_cost_ms": self.insert_cost_ms,
            "tenant_hits": self.tenant_hits(),
            "size": len(self), "capacity": self.capacity,
            "policy": self.policy,
            "shards": len(self.shards),
            "shard_sizes": self.shard_sizes(),
        })
