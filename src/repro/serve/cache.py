"""Saliency result caching: digest keys, LRU shards, sharded front.

The cache key is ``(image_digest, method, label, target)``.  The digest
is computed **once per request** at submit time and threaded through the
whole runtime (queued request, cache insert, and the resulting
:class:`~repro.explain.base.SaliencyResult.image_digest` field) — the
image bytes are never re-hashed.

:class:`SaliencyCache` is one thread-safe LRU shard.
:class:`ShardedSaliencyCache` fronts N independent shards keyed on a
stable hash of the digest, so concurrent executor workers contend on
1/N of the lock traffic and eviction pressure spreads across shards.
With ``shards=1`` it degenerates to a single global LRU (the engine's
default, which keeps exact LRU eviction semantics).
"""

from __future__ import annotations

import hashlib
import threading
import zlib
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..explain.base import SaliencyResult

CacheKey = Tuple[str, str, int, Optional[int]]


def image_digest(image: np.ndarray) -> str:
    """Content digest of one image (shape/dtype-aware, layout-stable)."""
    image = np.ascontiguousarray(image)
    h = hashlib.sha1()
    h.update(str(image.shape).encode())
    h.update(str(image.dtype).encode())
    h.update(image.tobytes())
    return h.hexdigest()


def request_key(image: np.ndarray, method: str, label: int,
                target_label: Optional[int],
                digest: Optional[str] = None) -> CacheKey:
    """Cache key for one explain request.

    Pass ``digest`` when the image was already hashed (the engine hashes
    each submitted image exactly once and threads the digest through).
    """
    if digest is None:
        digest = image_digest(image)
    target = None if target_label is None else int(target_label)
    return (digest, method, int(label), target)


class SaliencyCache:
    """One thread-safe bounded-LRU shard: :data:`CacheKey` -> result."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._store: "OrderedDict[CacheKey, SaliencyResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inserts = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._store

    def get(self, key: CacheKey) -> Optional[SaliencyResult]:
        with self._lock:
            result = self._store.get(key)
            if result is None:
                self.misses += 1
                return None
            self._store.move_to_end(key)
            self.hits += 1
            return result

    def peek(self, key: CacheKey) -> Optional[SaliencyResult]:
        """Read without touching hit/miss counters or LRU recency (for
        internal double-checks that must not skew serving stats)."""
        with self._lock:
            return self._store.get(key)

    def put(self, key: CacheKey, result: SaliencyResult) -> None:
        # Hits hand out the cached object itself (no per-hit copy), so
        # freeze the map: an in-place mutation by a consumer raises
        # instead of silently corrupting every future hit.
        saliency = getattr(result, "saliency", None)
        if isinstance(saliency, np.ndarray):
            saliency.setflags(write=False)
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
            else:
                self.inserts += 1
            self._store[key] = result
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
                self.evictions += 1

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "inserts": self.inserts,
                "size": len(self._store), "capacity": self.capacity}


class ShardedSaliencyCache:
    """N independent LRU shards selected by a stable digest hash.

    The per-request lock is per shard, so concurrent executor workers
    inserting results rarely contend; the same key always lands on the
    same shard, so hit/miss behaviour for any one request is unchanged.
    ``capacity`` is split as evenly as possible across shards (every
    shard holds at least one entry); ``shards`` is clamped so this
    always works.  Aggregate counters are summed over shards in
    :meth:`stats`.
    """

    def __init__(self, capacity: int = 256, shards: int = 1):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        shards = min(shards, capacity)
        base, extra = divmod(capacity, shards)
        self.capacity = capacity
        self.shards: List[SaliencyCache] = [
            SaliencyCache(base + (1 if i < extra else 0))
            for i in range(shards)
        ]

    # -- shard routing -------------------------------------------------
    def _shard(self, key: CacheKey) -> SaliencyCache:
        # crc32 of the digest: stable across processes (unlike hash())
        # so benchmarked shard balance is reproducible.
        return self.shards[zlib.crc32(key[0].encode()) % len(self.shards)]

    # -- mapping interface ---------------------------------------------
    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._shard(key)

    def get(self, key: CacheKey) -> Optional[SaliencyResult]:
        return self._shard(key).get(key)

    def peek(self, key: CacheKey) -> Optional[SaliencyResult]:
        return self._shard(key).peek(key)

    def put(self, key: CacheKey, result: SaliencyResult) -> None:
        self._shard(key).put(key, result)

    # -- aggregated counters -------------------------------------------
    @property
    def hits(self) -> int:
        return sum(s.hits for s in self.shards)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self.shards)

    @property
    def evictions(self) -> int:
        return sum(s.evictions for s in self.shards)

    @property
    def inserts(self) -> int:
        return sum(s.inserts for s in self.shards)

    def shard_sizes(self) -> List[int]:
        return [len(s) for s in self.shards]

    def stats(self) -> Dict[str, object]:
        """Aggregate counters plus the per-shard breakdown."""
        return {
            "hits": self.hits, "misses": self.misses,
            "evictions": self.evictions, "inserts": self.inserts,
            "size": len(self), "capacity": self.capacity,
            "shards": len(self.shards),
            "shard_sizes": self.shard_sizes(),
        }
