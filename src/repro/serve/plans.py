"""Serving-layer cache of compiled :mod:`repro.nn.plan` execution plans.

Serving traffic is shape-repetitive: the engine runs the same
``(method, batch_shape)`` micro-batch over and over, yet the tape path
re-records autograd bookkeeping and re-allocates every intermediate on
each batch.  :class:`PlanCache` turns that repetition into compiled-plan
replays:

* **Key** — ``(method, batch_shape, dtype)``.  On first sight of a key
  the explainer's hot path is traced and compiled
  (:meth:`~repro.explain.base.Explainer.compile_plan`); thereafter the
  batch replays through the plan's buffer arena with no Tensor objects,
  no tape, and no per-batch allocation.
* **Frozen-set revalidation** — each entry records the
  :func:`~repro.nn.frozen_fingerprint` at compile time.  A
  ``nn.frozen`` refcount transition (0→1 or 1→0) fires a listener that
  refreshes the cache's ambient fingerprint; a lookup whose ambient
  fingerprint differs from the entry's falls back to the tape (counted,
  entry retained — the entry becomes valid again when the frozen set
  reverts).  Transient ``with nn.frozen(...)`` scopes *inside* tape
  explainers therefore never invalidate anything: the fingerprint is
  only consulted between batches.
* **Dtype invalidation** — ``nn.set_default_dtype`` fires a listener
  that drops every entry (and the negative cache): plans bake buffer
  dtypes at compile time.
* **Fallbacks** — plan-ineligible explainers, ``PlanUnsupported``
  compiles (negative-cached per method), fingerprint mismatches, and
  ``PlanMismatch`` replays all run the normal tape path and bump the
  ``fallbacks`` counter, so dashboards can see when the hot path is
  *not* compiled.

Concurrency: :meth:`run` may compile concurrently for different
methods, but callers must not replay one cache key from two threads at
once (a replay mutates the plan's arena).  Both executors satisfy this
already — the in-process engine holds a per-method lock around batch
compute, and each process worker runs single-threaded on its own
replica (with its own per-replica ``PlanCache``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import nn
from ..explain.base import Explainer, SaliencyResult
from ..nn.plan import PlanMismatch, PlanUnsupported

__all__ = ["PlanCache"]

PlanKey = Tuple[str, Tuple[int, ...], str]


class PlanCache:
    """Compile-once / replay-thereafter cache (see module docstring).

    ``max_plans`` bounds live entries (LRU eviction); evicted plans free
    their buffer arenas.  Call :meth:`close` when done to unregister the
    invalidation listeners (the engine does this from its own
    ``close()``).
    """

    def __init__(self, max_plans: int = 32):
        if max_plans < 1:
            raise ValueError("max_plans must be >= 1")
        self.max_plans = max_plans
        self._lock = threading.RLock()
        #: key -> (ExecutionPlan, frozen fingerprint at compile time)
        self._plans: "OrderedDict[PlanKey, Tuple[object, frozenset]]" = \
            OrderedDict()
        #: methods whose compile raised PlanUnsupported — don't retry.
        self._unsupported: set = set()
        self.compiled = 0
        self.replay_hits = 0
        self.fallbacks = 0
        self.mismatches = 0
        self.invalidations = 0
        self.evictions = 0
        self._ambient = nn.frozen_fingerprint()
        self._closed = False
        nn.frozen.register_listener(self._on_frozen_transition)
        nn.register_dtype_listener(self._on_dtype_change)

    # -- invalidation listeners ----------------------------------------
    def _on_frozen_transition(self) -> None:
        with self._lock:
            self._ambient = nn.frozen_fingerprint()

    def _on_dtype_change(self, _dtype) -> None:
        with self._lock:
            self.invalidations += len(self._plans)
            self._plans.clear()
            self._unsupported.clear()

    def close(self) -> None:
        """Unregister listeners and drop all plans (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._plans.clear()
        nn.frozen.unregister_listener(self._on_frozen_transition)
        nn.unregister_dtype_listener(self._on_dtype_change)

    # -- stats ---------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            arena = sum(plan.arena_bytes
                        for plan, _fp in self._plans.values())
            return {
                "compiled": self.compiled,
                "replay_hits": self.replay_hits,
                "fallbacks": self.fallbacks,
                "mismatches": self.mismatches,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "plans": len(self._plans),
                "arena_bytes": arena,
            }

    # -- the hot path --------------------------------------------------
    def run(self, explainer: Explainer, images: np.ndarray,
            labels: np.ndarray, targets: Optional[np.ndarray]
            ) -> List[SaliencyResult]:
        """Execute one micro-batch through a compiled plan when
        possible, the tape otherwise (applying the engine's
        ``needs_gradients``/``no_grad`` contract to tape runs)."""
        plan = self._lookup_or_compile(explainer, images, labels)
        if plan is not None:
            try:
                results = explainer.explain_batch_planned(
                    plan, images, labels, targets)
            except PlanMismatch:
                with self._lock:
                    self.mismatches += 1
            else:
                with self._lock:
                    self.replay_hits += 1
                return results
        with self._lock:
            self.fallbacks += 1
        return self._run_tape(explainer, images, labels, targets)

    @staticmethod
    def _run_tape(explainer: Explainer, images: np.ndarray,
                  labels: np.ndarray, targets: Optional[np.ndarray]
                  ) -> List[SaliencyResult]:
        if getattr(explainer, "needs_gradients", False):
            return explainer.explain_batch(images, labels, targets)
        with nn.no_grad():
            return explainer.explain_batch(images, labels, targets)

    def _lookup_or_compile(self, explainer: Explainer, images: np.ndarray,
                           labels: np.ndarray):
        """The plan for this batch's key, compiling on first sight;
        ``None`` means "run the tape" (ineligible, unsupported, or
        frozen-set mismatch)."""
        # getattr: stub/demo explainers may predate the Explainer base.
        if not getattr(explainer, "plan_eligible", False):
            return None
        method = explainer.name
        key: PlanKey = (method, tuple(np.shape(images)),
                        str(np.asarray(images).dtype))
        with self._lock:
            if method in self._unsupported:
                return None
            entry = self._plans.get(key)
            if entry is not None:
                plan, fingerprint = entry
                if fingerprint != self._ambient:
                    return None            # counted as a fallback by run()
                self._plans.move_to_end(key)
                return plan
            fingerprint = self._ambient
        # Compile outside the lock: tracing runs the full model and must
        # not serialize other methods' lookups behind it.  The engine's
        # per-method lock already prevents duplicate compiles of one key.
        try:
            plan = explainer.compile_plan(images, labels)
        except PlanUnsupported:
            with self._lock:
                self._unsupported.add(method)
            return None
        with self._lock:
            self.compiled += 1
            self._plans[key] = (plan, fingerprint)
            self._plans.move_to_end(key)
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
                self.evictions += 1
        return plan
