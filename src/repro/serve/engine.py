"""The ``ExplainEngine`` façade over the serve runtime.

The engine composes the three runtime pieces — a
:class:`~repro.serve.cache.ShardedSaliencyCache`, a deduplicating
:class:`~repro.serve.scheduler.MicroBatchScheduler`, and a pluggable
batch executor — behind the serving API the rest of the repo consumes:

* ``submit`` / ``flush`` / ``explain`` / ``explain_batch`` — the
  synchronous contract (unchanged from the pre-runtime engine): submits
  auto-flush on ``max_batch`` unique pending requests or on the
  ``max_delay_ms`` deadline, and a failing micro-batch propagates its
  exception with the requests left queued for a retry.
* ``submit_async`` / ``drain`` — the non-blocking path: full micro-
  batches are dispatched to the executor without waiting, and
  ``drain()`` resolves everything in flight plus everything queued.
* Each image is digested **once** per request; the digest rides the
  request through the queue, keys the cache insert, and lands on the
  result's ``image_digest`` field.
* Methods with ``needs_gradients = False`` execute under
  ``nn.no_grad()`` (a thread-local switch, so concurrent workers never
  leak inference mode into each other's tapes).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import nn
from ..explain.base import Explainer, SaliencyResult
from .cache import (CacheKey, SaliencyCache, ShardedSaliencyCache,
                    image_digest, request_key)
from .executor import make_executor
from .scheduler import ExplainRequest, MicroBatchScheduler, QueueKey

__all__ = ["ExplainEngine", "PendingExplain", "SaliencyCache",
           "image_digest", "request_key"]


class PendingExplain:
    """Handle for one submitted request; resolves when its batch runs.

    Deduplicated submits share one underlying :class:`ExplainRequest`
    (and therefore one computation) but each hold their own handle.
    """

    __slots__ = ("engine", "method", "cache_hit", "_result", "_request")

    def __init__(self, engine: "ExplainEngine", method: str,
                 cache_hit: bool = False,
                 _result: Optional[SaliencyResult] = None,
                 _request: Optional[ExplainRequest] = None):
        self.engine = engine
        self.method = method
        self.cache_hit = cache_hit
        self._result = _result
        self._request = _request

    @property
    def done(self) -> bool:
        return self._result is not None

    def result(self) -> SaliencyResult:
        """The saliency result, waiting on / flushing the runtime.

        An async-dispatched batch is awaited through its future; a
        still-queued request forces a flush of the owning method.  A
        failing micro-batch propagates its exception (the requests stay
        queued for a retry); a request that somehow remains unresolved
        raises instead of returning None.
        """
        while self._result is None:
            request = self._request
            future = request.future if request is not None else None
            if future is not None:
                future.result()        # waits; re-raises a batch failure
                continue               # _result set before future cleared
            self.engine.flush(self.method)
            if self._result is not None:
                break
            # Empty flush but still unresolved: another thread's flush
            # holds the request in an in-flight batch (its future was
            # assigned atomically with the queue pop) — loop and wait
            # on it rather than raising spuriously.
            if request is not None and request.future is not None:
                continue
            raise RuntimeError(
                f"{self.method!r} explain request did not resolve after "
                "flush")
        return self._result


class ExplainEngine:
    """Serving layer over a classifier + explainer suite (see module doc).

    Parameters
    ----------
    classifier:
        The trained black-box model the explainers interrogate.
    explainers:
        ``name -> Explainer`` mapping (an
        :class:`~repro.explain.ExplainerSuite`'s ``explainers`` dict).
    max_batch:
        Micro-batch size: a ``(method, shape)`` queue auto-flushes when
        this many *unique* requests are pending.
    max_delay_ms:
        Deadline: a submit auto-flushes a queue whose oldest pending
        request has waited at least this long.  ``None`` disables the
        deadline (flush on size or demand only).
    cache_size:
        Total saliency-cache capacity (entries, across all shards).
    cache_shards:
        LRU shard count.  1 (default) keeps exact global-LRU eviction
        semantics; serving deployments with a threaded executor should
        shard (4-8) to spread lock traffic and eviction pressure.
    executor:
        ``None``/``"serial"`` (inline, deterministic), ``"threaded"``
        (persistent worker threads), or an executor instance.
    """

    def __init__(self, classifier, explainers: Dict[str, Explainer],
                 max_batch: int = 16, max_delay_ms: Optional[float] = None,
                 cache_size: int = 256, cache_shards: int = 1,
                 executor=None):
        self.classifier = classifier
        self.explainers = dict(explainers)
        self.cache = ShardedSaliencyCache(cache_size, shards=cache_shards)
        self._scheduler = MicroBatchScheduler(max_batch, max_delay_ms)
        self._executor = make_executor(executor)
        self._lock = threading.RLock()
        self._inflight: List[Future] = []
        #: Resolve counts banked from pruned (already-done) async
        #: futures, paid out by the next drain().
        self._async_resolved = 0
        # Batches of one method never overlap: explainer objects are not
        # audited for internal thread safety, so concurrency comes from
        # running *different* methods (or shape-queues) in parallel.
        self._method_locks = {name: threading.Lock() for name in explainers}
        self.batches_run = 0
        self.requests_served = 0

    # ------------------------------------------------------------------
    @property
    def methods(self) -> Tuple[str, ...]:
        return tuple(self.explainers)

    @property
    def max_batch(self) -> int:
        return self._scheduler.max_batch

    @property
    def max_delay_ms(self) -> Optional[float]:
        return self._scheduler.max_delay_ms

    @property
    def executor(self):
        return self._executor

    def stats(self) -> Dict[str, object]:
        """Serving counters (cache, batching, dedup) for dashboards."""
        cache = self.cache.stats()
        with self._lock:
            inflight = sum(1 for f in self._inflight if not f.done())
            return {
                "cache_hits": cache["hits"],
                "cache_misses": cache["misses"],
                "cache_evictions": cache["evictions"],
                "cache_inserts": cache["inserts"],
                "cache_size": cache["size"],
                "cache_shards": cache["shards"],
                "shard_sizes": cache["shard_sizes"],
                "batches_run": self.batches_run,
                "requests_served": self.requests_served,
                "pending": self._scheduler.pending_count(),
                "pending_handles": self._scheduler.pending_handles(),
                "dedup_hits": self._scheduler.dedup_hits,
                "inflight": inflight,
                "executor": self._executor.name,
            }

    def pending_count(self, method: Optional[str] = None) -> int:
        with self._lock:
            return self._scheduler.pending_count(method)

    def close(self) -> None:
        """Shut down the executor's workers (idempotent)."""
        self._executor.shutdown()

    def __enter__(self) -> "ExplainEngine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    def _explainer(self, method: str) -> Explainer:
        try:
            return self.explainers[method]
        except KeyError:
            raise KeyError(
                f"unknown method {method!r}; engine serves {self.methods}")

    def _run_batch(self, queue_key: QueueKey,
                   requests: List[ExplainRequest]) -> int:
        """Execute one micro-batch; returns the number of handles
        resolved (>= ``len(requests)`` when dedup fanned out)."""
        method = queue_key[0]
        explainer = self._explainer(method)
        images = np.stack([r.image for r in requests])
        labels = np.array([r.label for r in requests], dtype=np.int64)
        if any(r.target_label is not None for r in requests):
            targets = np.array(
                [-1 if r.target_label is None else int(r.target_label)
                 for r in requests], dtype=np.int64)
        else:
            targets = None
        with self._method_locks[method]:
            if explainer.needs_gradients:
                results = explainer.explain_batch(images, labels, targets)
            else:
                with nn.no_grad():
                    results = explainer.explain_batch(images, labels,
                                                      targets)
        served = 0
        with self._lock:
            self.batches_run += 1
            for request, result in zip(requests, results):
                result.image_digest = request.key[0]
                self.cache.put(request.key, result)
                for handle in request.handles:
                    handle._result = result
                served += len(request.handles)
            self.requests_served += served
            # Same critical section as handle resolution: a duplicate
            # submit either attached in time (resolved above) or finds
            # the key gone from the in-flight map and hits the cache.
            self._scheduler.mark_complete(requests)
        return served

    def _pop_and_prepare(self, method: Optional[str],
                         ready_only: bool, track: bool
                         ) -> List[Tuple[Future, QueueKey,
                                         List[ExplainRequest]]]:
        """Atomically pop batches and assign their futures.

        Popping a request out of the queue and giving it a waitable
        future happen under one lock hold, so a concurrent
        ``result()`` always observes the request either queued (a flush
        resolves it), carrying a future (waitable), or resolved — never
        in a popped-but-futureless limbo that would raise spuriously.
        """
        with self._lock:
            batches = (self._scheduler.pop_ready(method) if ready_only
                       else self._scheduler.pop_batches(method))
            prepared = []
            if track and batches:
                # Prune settled futures so a long-lived engine whose
                # callers resolve via handle.result() (never drain())
                # doesn't accumulate done futures without bound.  Their
                # resolve counts are banked for drain()'s return value;
                # failed futures are kept so drain() still re-raises.
                kept = []
                for f in self._inflight:
                    if f.done() and f.exception() is None:
                        self._async_resolved += f.result()
                    else:
                        kept.append(f)
                self._inflight = kept
            for queue_key, requests in batches:
                future: Future = Future()
                for request in requests:
                    request.future = future
                if track:
                    self._inflight.append(future)
                prepared.append((future, queue_key, requests))
            return prepared

    def _launch(self, future: Future, queue_key: QueueKey,
                requests: List[ExplainRequest]) -> None:
        """Hand one prepared batch to the executor.

        The batch's future was assigned at pop time (so ``result()`` on
        another thread can wait on it) and is cleared on completion; a
        failing batch requeues its requests at the queue front before
        the future carries the exception, preserving the flush-retry
        contract across executors.
        """

        def run() -> None:
            if not future.set_running_or_notify_cancel():
                return
            try:
                served = self._run_batch(queue_key, requests)
            except BaseException as exc:   # noqa: BLE001
                with self._lock:
                    for request in requests:
                        request.future = None
                    self._scheduler.requeue_front(queue_key, requests)
                future.set_exception(exc)
            else:
                with self._lock:
                    for request in requests:
                        request.future = None
                future.set_result(served)

        self._executor.submit(run)

    # ------------------------------------------------------------------
    def flush(self, method: Optional[str] = None) -> int:
        """Run all pending micro-batches (for one method or all),
        blocking until they resolve.  Returns the number of handles
        resolved.  The first batch failure is re-raised after the
        round completes; its requests are requeued for a retry.
        """
        resolved = 0
        while True:
            prepared = self._pop_and_prepare(method, ready_only=False,
                                             track=False)
            if not prepared:
                return resolved
            resolved += self._run_prepared(prepared)

    def _flush_ready(self, method: str) -> int:
        """Synchronously run only the queues of ``method`` that hit
        ``max_batch`` or the deadline (the submit auto-flush path)."""
        prepared = self._pop_and_prepare(method, ready_only=True,
                                         track=False)
        return self._run_prepared(prepared)

    def _run_prepared(self, prepared) -> int:
        """Launch prepared batches and block until all resolve; the
        first failure is re-raised after the round completes."""
        for future, queue_key, requests in prepared:
            self._launch(future, queue_key, requests)
        resolved = 0
        error: Optional[BaseException] = None
        for future, _queue_key, _requests in prepared:
            try:
                resolved += future.result()
            except BaseException as exc:   # noqa: BLE001
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return resolved

    def drain(self) -> int:
        """Resolve everything: await in-flight async batches, then flush
        all queues.  Returns the number of handles resolved.  A batch
        failure is re-raised (its requests stay queued for a retry);
        call ``drain()`` again to retry.
        """
        resolved = 0
        while True:
            with self._lock:
                futures, self._inflight = self._inflight, []
                resolved += self._async_resolved
                self._async_resolved = 0
            for i, future in enumerate(futures):
                try:
                    resolved += future.result()
                except BaseException:
                    with self._lock:
                        self._inflight.extend(futures[i + 1:])
                    raise
            resolved += self.flush()
            with self._lock:
                idle = (not self._inflight
                        and self._scheduler.pending_count() == 0)
            if idle:
                return resolved

    # ------------------------------------------------------------------
    def _submit(self, image: np.ndarray, label: int, method: str,
                target_label: Optional[int],
                dispatch_async: bool) -> PendingExplain:
        self._explainer(method)
        image = np.asarray(image)
        # Digest once per request: the same digest keys the cache probe,
        # rides the queued request, keys the insert, and is stamped on
        # the result — the image bytes are never re-hashed.
        digest = image_digest(image)
        key = request_key(image, method, label, target_label, digest=digest)
        cached = self.cache.get(key)
        if cached is not None:
            with self._lock:
                self.requests_served += 1
            return PendingExplain(self, method, cache_hit=True,
                                  _result=cached)

        # The scheduler copies the image only when it creates a new
        # request, so cache hits and deduped submits stay
        # allocation-free; a caller reusing its buffer never changes
        # what a queued request (or the cache) sees.
        handle = PendingExplain(self, method)
        with self._lock:
            # Re-probe under the lock: the request's twin may have
            # completed (cache insert + in-flight retirement share this
            # lock) between the unlocked probe above and here.  peek()
            # keeps the double-check out of the hit/miss counters.
            cached = self.cache.peek(key)
            if cached is not None:
                self.requests_served += 1
                return PendingExplain(self, method, cache_hit=True,
                                      _result=cached)
            request, _deduped, ready = self._scheduler.enqueue(
                method, image, int(label), target_label, key, handle)
            handle._request = request
        if ready:
            if dispatch_async:
                prepared = self._pop_and_prepare(method, ready_only=True,
                                                 track=True)
                for future, queue_key, requests in prepared:
                    self._launch(future, queue_key, requests)
            else:
                try:
                    # Only the queue(s) that hit max_batch/deadline run;
                    # partial queues of other shapes keep accumulating.
                    self._flush_ready(method)
                except Exception:
                    # The exception propagates before the caller ever
                    # holds the handle — drop the unresolved request
                    # (unless dedup attached other handles to it) so a
                    # retried submit doesn't enqueue a duplicate nobody
                    # can resolve.
                    with self._lock:
                        if (handle._result is None
                                and len(request.handles) == 1):
                            self._scheduler.discard(request)
                    raise
        return handle

    def submit(self, image: np.ndarray, label: int, method: str,
               target_label: Optional[int] = None) -> PendingExplain:
        """Queue one request; returns a handle resolving at flush time.

        Cache hits resolve immediately; duplicates of an already-queued
        request attach to it (one computation, fanned-out result).  The
        owning queue auto-flushes **synchronously** when ``max_batch``
        unique requests are pending or the deadline passed.
        """
        return self._submit(image, label, method, target_label,
                            dispatch_async=False)

    def submit_async(self, image: np.ndarray, label: int, method: str,
                     target_label: Optional[int] = None) -> PendingExplain:
        """Non-blocking submit: a full queue is handed to the executor
        without waiting for it to run.  Resolve via ``handle.result()``
        (waits on the in-flight batch) or a final :meth:`drain`.
        """
        return self._submit(image, label, method, target_label,
                            dispatch_async=True)

    def explain(self, image: np.ndarray, label: int, method: str,
                target_label: Optional[int] = None) -> SaliencyResult:
        """Synchronous single-request path (submit + resolve)."""
        return self.submit(image, label, method, target_label).result()

    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      method: str,
                      target_labels: Optional[np.ndarray] = None
                      ) -> List[SaliencyResult]:
        """Cache-aware batched path: only cache misses hit the models,
        and duplicate images inside the batch are computed once (their
        handles share one queued request)."""
        handles = [
            self.submit(images[i], int(labels[i]), method,
                        None if target_labels is None
                        else int(target_labels[i]))
            for i in range(len(images))
        ]
        self.flush(method)
        return [h.result() for h in handles]
