"""The ``ExplainEngine``: a caching, micro-batching saliency server.

The engine owns the trained black-box classifier plus the explainer
suite and fronts them with the serving contract the ROADMAP's
heavy-traffic north star needs:

* **Micro-batching** — incoming ``(image, label, method)`` requests are
  queued per method and executed through the method's batched-first
  :meth:`~repro.explain.Explainer.explain_batch` once ``max_batch``
  requests are pending (or the oldest pending request is older than
  ``max_delay_ms``, or the caller forces a :meth:`flush`).  One queued
  batch costs one shared conv/GEMM sweep instead of N independent ones.
* **Inference mode** — methods that declare
  ``needs_gradients = False`` run their batch inside ``nn.no_grad()``;
  white-box methods (Grad-CAM, FullGrad family, StyLEx) keep the tape.
* **Saliency cache** — a bounded LRU keyed on
  ``(image_digest, method, label, target)``; repeat requests for the
  same image/method pair are served without touching the models.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import nn
from ..explain.base import Explainer, SaliencyResult

CacheKey = Tuple[str, str, int, Optional[int]]


def image_digest(image: np.ndarray) -> str:
    """Content digest of one image (shape/dtype-aware, layout-stable)."""
    image = np.ascontiguousarray(image)
    h = hashlib.sha1()
    h.update(str(image.shape).encode())
    h.update(str(image.dtype).encode())
    h.update(image.tobytes())
    return h.hexdigest()


def request_key(image: np.ndarray, method: str, label: int,
                target_label: Optional[int]) -> CacheKey:
    """Cache key for one explain request."""
    target = None if target_label is None else int(target_label)
    return (image_digest(image), method, int(label), target)


class SaliencyCache:
    """Bounded LRU mapping :data:`CacheKey` -> :class:`SaliencyResult`."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._store: "OrderedDict[CacheKey, SaliencyResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._store

    def get(self, key: CacheKey) -> Optional[SaliencyResult]:
        result = self._store.get(key)
        if result is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return result

    def put(self, key: CacheKey, result: SaliencyResult) -> None:
        # Hits hand out the cached object itself (no per-hit copy), so
        # freeze the map: an in-place mutation by a consumer raises
        # instead of silently corrupting every future hit.
        saliency = getattr(result, "saliency", None)
        if isinstance(saliency, np.ndarray):
            saliency.setflags(write=False)
        if key in self._store:
            self._store.move_to_end(key)
        self._store[key] = result
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.evictions += 1


@dataclass
class PendingExplain:
    """Handle for a queued request; resolves when its batch runs."""

    engine: "ExplainEngine"
    method: str
    cache_hit: bool = False
    _result: Optional[SaliencyResult] = None

    @property
    def done(self) -> bool:
        return self._result is not None

    def result(self) -> SaliencyResult:
        """The saliency result, flushing the owning queue if needed.

        A failing micro-batch propagates its exception from the flush
        (the request stays queued for a retry); a request that somehow
        remains unresolved raises instead of returning None.
        """
        if self._result is None:
            self.engine.flush(self.method)
        if self._result is None:
            raise RuntimeError(
                f"{self.method!r} explain request did not resolve after "
                "flush")
        return self._result


@dataclass(eq=False)          # identity semantics (fields hold ndarrays)
class _QueuedRequest:
    image: np.ndarray
    label: int
    target_label: Optional[int]
    key: CacheKey
    handle: PendingExplain
    enqueued_at: float = field(default_factory=time.monotonic)


class ExplainEngine:
    """Serving layer over a classifier + explainer suite (see module doc).

    Parameters
    ----------
    classifier:
        The trained black-box model the explainers interrogate.
    explainers:
        ``name -> Explainer`` mapping (an
        :class:`~repro.explain.ExplainerSuite`'s ``explainers`` dict).
    max_batch:
        Micro-batch size: a method's queue auto-flushes when this many
        requests are pending.
    max_delay_ms:
        Deadline: a submit auto-flushes a method whose oldest queued
        request has waited at least this long.  ``None`` disables the
        deadline (flush on size or demand only).
    cache_size:
        LRU saliency-cache capacity (entries).
    """

    def __init__(self, classifier, explainers: Dict[str, Explainer],
                 max_batch: int = 16, max_delay_ms: Optional[float] = None,
                 cache_size: int = 256):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.classifier = classifier
        self.explainers = dict(explainers)
        self.max_batch = max_batch
        self.max_delay_ms = max_delay_ms
        self.cache = SaliencyCache(cache_size)
        self._queues: Dict[str, List[_QueuedRequest]] = {}
        self.batches_run = 0
        self.requests_served = 0

    # ------------------------------------------------------------------
    @property
    def methods(self) -> Tuple[str, ...]:
        return tuple(self.explainers)

    def stats(self) -> Dict[str, int]:
        """Serving counters (cache + batching) for dashboards/tests."""
        return {
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_evictions": self.cache.evictions,
            "cache_size": len(self.cache),
            "batches_run": self.batches_run,
            "requests_served": self.requests_served,
            "pending": sum(len(q) for q in self._queues.values()),
        }

    def pending_count(self, method: Optional[str] = None) -> int:
        if method is not None:
            return len(self._queues.get(method, ()))
        return sum(len(q) for q in self._queues.values())

    # ------------------------------------------------------------------
    def _explainer(self, method: str) -> Explainer:
        try:
            return self.explainers[method]
        except KeyError:
            raise KeyError(
                f"unknown method {method!r}; engine serves {self.methods}")

    def _run_batch(self, method: str,
                   requests: List[_QueuedRequest]) -> None:
        """Execute one micro-batch through the method's batched path."""
        explainer = self._explainer(method)
        images = np.stack([r.image for r in requests])
        labels = np.array([r.label for r in requests], dtype=np.int64)
        if any(r.target_label is not None for r in requests):
            targets = np.array(
                [-1 if r.target_label is None else int(r.target_label)
                 for r in requests], dtype=np.int64)
        else:
            targets = None
        if explainer.needs_gradients:
            results = explainer.explain_batch(images, labels, targets)
        else:
            with nn.no_grad():
                results = explainer.explain_batch(images, labels, targets)
        self.batches_run += 1
        for request, result in zip(requests, results):
            self.cache.put(request.key, result)
            request.handle._result = result
            self.requests_served += 1

    def flush(self, method: Optional[str] = None) -> int:
        """Run all pending micro-batches (for one method or all).

        Returns the number of requests resolved.
        """
        methods = [method] if method is not None else list(self._queues)
        resolved = 0
        for name in methods:
            queue = self._queues.get(name)
            while queue:
                batch = queue[:self.max_batch]
                # Dequeue only after success: a raising explain_batch
                # propagates to the caller with the requests still
                # queued, so their handles stay resolvable by a retry.
                self._run_batch(name, batch)
                del queue[:len(batch)]
                resolved += len(batch)
        return resolved

    # ------------------------------------------------------------------
    def submit(self, image: np.ndarray, label: int, method: str,
               target_label: Optional[int] = None) -> PendingExplain:
        """Queue one request; returns a handle resolving at flush time.

        Cache hits resolve immediately.  The owning queue auto-flushes
        when ``max_batch`` requests are pending or the oldest queued
        request is older than ``max_delay_ms``.
        """
        self._explainer(method)
        image = np.asarray(image)
        key = request_key(image, method, label, target_label)
        cached = self.cache.get(key)
        if cached is not None:
            self.requests_served += 1
            return PendingExplain(self, method, cache_hit=True,
                                  _result=cached)

        # Own a copy: the request may sit queued until a later flush, and
        # the cache key was digested just now — a caller reusing its
        # buffer must not change what this request (or the cache) sees.
        # Cache hits above stay allocation-free.
        image = np.array(image, copy=True)
        handle = PendingExplain(self, method)
        queue = self._queues.setdefault(method, [])
        request = _QueuedRequest(image, int(label), target_label, key,
                                 handle)
        queue.append(request)
        deadline_hit = (
            self.max_delay_ms is not None
            and (time.monotonic() - queue[0].enqueued_at) * 1000.0
            >= self.max_delay_ms)
        if len(queue) >= self.max_batch or deadline_hit:
            try:
                self.flush(method)
            except Exception:
                # The exception propagates before the caller ever holds
                # the handle — drop the unresolved request so a retried
                # submit doesn't enqueue a duplicate nobody can resolve.
                if handle._result is None and request in queue:
                    queue.remove(request)
                raise
        return handle

    def explain(self, image: np.ndarray, label: int, method: str,
                target_label: Optional[int] = None) -> SaliencyResult:
        """Synchronous single-request path (submit + resolve)."""
        return self.submit(image, label, method, target_label).result()

    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      method: str,
                      target_labels: Optional[np.ndarray] = None
                      ) -> List[SaliencyResult]:
        """Cache-aware batched path: only cache misses hit the models."""
        handles = [
            self.submit(images[i], int(labels[i]), method,
                        None if target_labels is None
                        else int(target_labels[i]))
            for i in range(len(images))
        ]
        self.flush(method)
        return [h.result() for h in handles]
