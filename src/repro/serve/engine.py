"""The ``ExplainEngine`` façade over the serve runtime.

The engine composes the three runtime pieces — a
:class:`~repro.serve.cache.ShardedSaliencyCache`, a deduplicating
:class:`~repro.serve.scheduler.MicroBatchScheduler`, and a pluggable
batch executor — behind the serving API the rest of the repo consumes:

* ``submit`` / ``flush`` / ``explain`` / ``explain_batch`` — the
  synchronous contract (unchanged from the pre-runtime engine): submits
  auto-flush on ``max_batch`` unique pending requests or on the
  ``max_delay_ms`` deadline, and a failing micro-batch propagates its
  exception with the requests left queued for a retry.
* ``submit_async`` / ``drain`` — the non-blocking path: full micro-
  batches are dispatched to the executor without waiting, and
  ``drain()`` resolves everything in flight plus everything queued.
* **Admission control** — ``max_pending`` bounds the unique unresolved
  requests the async path may hold (queued plus dispatched-but-
  unfinished).  An over-limit ``submit_async`` either blocks on a
  condition variable until completed batches make room
  (``policy="block"``) or raises :class:`EngineOverloaded`
  (``policy="reject"``) so the caller can shed load; cache hits and
  dedup attaches are always admitted (they add no work).  ``stats()``
  reports the rejected count and total blocked milliseconds.
* Each image is digested **once** per request; the digest rides the
  request through the queue, keys the cache insert, and lands on the
  result's ``image_digest`` field.
* Each batch's measured wall time feeds back twice: as the per-map
  compute cost on the cache insert (the ``eviction="cost"`` policy
  keeps expensive maps under pressure) and into the scheduler's
  adaptive per-queue batch limits (``min_batch``).
* Methods with ``needs_gradients = False`` execute under
  ``nn.no_grad()`` (a thread-local switch, so concurrent workers never
  leak inference mode into each other's tapes).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import nn
from ..explain.base import Explainer, SaliencyResult
from .cache import (CacheKey, SaliencyCache, ShardedSaliencyCache,
                    image_digest, request_key)
from .context import DeadlineExceeded, RequestContext
from .executor import make_executor
from .plans import PlanCache
from .scheduler import ExplainRequest, MicroBatchScheduler, QueueKey
from .store import SaliencyStore
from .worker import WorkerCrashed

__all__ = ["EngineOverloaded", "TenantOverQuota", "ExplainEngine",
           "PendingExplain", "DeadlineExceeded", "RequestContext",
           "SaliencyCache", "image_digest", "request_key"]

ADMISSION_POLICIES = ("block", "reject")


def _merge_plan_stats(parent: Optional[Dict], worker_stats: List[dict]
                      ) -> Optional[Dict]:
    """Fold per-worker ``plans`` dicts into the engine-level section:
    counters sum across replicas (each compiles/replays its own plans);
    ``arena_bytes`` takes the max — arenas are peak per-process memory,
    not additive."""
    merged = dict(parent) if parent is not None else None
    for worker in worker_stats:
        plans = worker.get("plans")
        if not plans:
            continue
        if merged is None:
            merged = dict(plans)
            continue
        for key, value in plans.items():
            if key == "arena_bytes":
                merged[key] = max(merged.get(key, 0), value)
            else:
                merged[key] = merged.get(key, 0) + value
    return merged


class EngineOverloaded(RuntimeError):
    """Raised by ``submit_async`` under ``policy="reject"`` when the
    engine already holds ``max_pending`` unique unresolved requests.
    The rejected request was not queued; the caller owns the retry (or
    the shed).

    A ``policy="block"`` submit raises it in exactly one situation:
    the backpressure can never drain because the pending work keeps
    failing even after the blocked submit's own retry dispatch (the
    batch failure rides along as ``__cause__`` and its requests stay
    queued for another retry).  A transient, fails-once batch recovers
    transparently inside the block."""


class TenantOverQuota(EngineOverloaded):
    """One tenant exhausted its per-tenant quota slice.

    Raised by ``submit``/``submit_async`` when the submitting tenant
    already holds ``quota`` unique unresolved requests, **regardless of
    global capacity** — quota is a fairness bound, so a single tenant
    flooding the engine is shed with this error while every other
    tenant keeps being admitted.  Always a rejection (never a block,
    even under ``policy="block"``): the tenant owns the retry, and
    ``retry_after_s`` is the engine's backoff hint (the HTTP tier maps
    this exception to ``429 Too Many Requests`` with a ``Retry-After``
    header).

    Attributes
    ----------
    tenant:
        The over-quota tenant id.
    held:
        Unique unresolved requests the tenant held at rejection time.
    quota:
        The tenant's configured slice (``tenant_quotas[tenant]`` or the
        engine-wide ``tenant_quota`` default).
    retry_after_s:
        Suggested client backoff in seconds.
    """

    def __init__(self, tenant: str, held: int, quota: int,
                 retry_after_s: float):
        super().__init__(
            f"tenant {tenant!r} holds {held} unresolved request(s), "
            f"quota is {quota}; rejected by per-tenant admission "
            f"(retry after {retry_after_s:g}s)")
        self.tenant = tenant
        self.held = held
        self.quota = quota
        self.retry_after_s = retry_after_s


class PendingExplain:
    """Handle for one submitted request; resolves when its batch runs.

    Deduplicated submits share one underlying :class:`ExplainRequest`
    (and therefore one computation) but each hold their own handle.
    ``ctx`` is the submit's :class:`RequestContext`: stage timestamps
    land on it as the request moves through the runtime (a cache hit
    carries ``admitted``/``resolved`` only — it never queued).
    """

    __slots__ = ("engine", "method", "cache_hit", "ctx", "_result",
                 "_error", "_request")

    def __init__(self, engine: "ExplainEngine", method: str,
                 cache_hit: bool = False,
                 _result: Optional[SaliencyResult] = None,
                 _request: Optional[ExplainRequest] = None,
                 ctx: Optional[RequestContext] = None):
        self.engine = engine
        self.method = method
        self.cache_hit = cache_hit
        self.ctx = ctx
        self._result = _result
        self._error = None
        self._request = _request

    @property
    def done(self) -> bool:
        return self._result is not None or self._error is not None

    def result(self) -> SaliencyResult:
        """The saliency result, waiting on / flushing the runtime.

        An async-dispatched batch is awaited through its future; a
        still-queued request forces a flush of the owning method.  A
        failing micro-batch propagates its exception (the requests stay
        queued for a retry); a request whose deadline passed while it
        was queued raises :class:`DeadlineExceeded`; a request that
        somehow remains unresolved raises instead of returning None.
        """
        while True:
            if self._error is not None:
                raise self._error
            if self._result is not None:
                return self._result
            request = self._request
            future = request.future if request is not None else None
            if future is not None:
                future.result()        # waits; re-raises a batch failure
                continue               # _result set before future cleared
            self.engine.flush(self.method)
            if self._result is not None or self._error is not None:
                continue               # loop top returns or raises
            # Empty flush but still unresolved: another thread's flush
            # holds the request in an in-flight batch (its future was
            # assigned atomically with the queue pop) — loop and wait
            # on it rather than raising spuriously.
            if request is not None and request.future is not None:
                continue
            raise RuntimeError(
                f"{self.method!r} explain request did not resolve after "
                "flush")


class ExplainEngine:
    """Serving layer over a classifier + explainer suite (see module doc).

    Parameters
    ----------
    classifier:
        The trained black-box model the explainers interrogate.
    explainers:
        ``name -> Explainer`` mapping (an
        :class:`~repro.explain.ExplainerSuite`'s ``explainers`` dict).
    max_batch:
        Micro-batch size ceiling: a ``(method, shape, class)`` queue
        auto-flushes when its current limit of *unique* requests is
        pending (the limit is ``max_batch`` itself unless adaptive
        batching is on).
    max_delay_ms:
        Deadline: a submit auto-flushes a queue whose oldest pending
        request has waited at least this long.  ``None`` disables the
        deadline (flush on size or demand only).
    min_batch:
        Turns on adaptive micro-batching: each queue's flush limit
        ramps between ``min_batch`` and ``max_batch`` from the observed
        per-map latency of its recent batches, targeting
        ``target_batch_ms`` of compute per batch.  ``None`` (default)
        keeps the single static ``max_batch`` knob.
    target_batch_ms:
        Per-batch compute budget the adaptive limits steer toward
        (ignored unless ``min_batch`` is set).
    cache_size:
        Total saliency-cache capacity (entries, across all shards).
    cache_shards:
        Cache shard count.  1 (default) keeps exact global eviction
        semantics; serving deployments with a threaded executor should
        shard (4-8) to spread lock traffic and eviction pressure.
    eviction:
        Cache eviction policy: exact ``"lru"`` (default) or cost-aware
        ``"cost"`` (GDSF: under pressure, cheap-to-recompute maps are
        evicted before expensive ones — the engine records each batch's
        measured per-map cost on insert).
    max_pending:
        Admission bound: the async path holds at most this many unique
        unresolved requests (queued + dispatched).  ``None`` (default)
        admits everything — the pre-admission unbounded behaviour.
    policy:
        What an over-limit ``submit_async`` does: ``"block"`` (default)
        waits on a condition variable until room frees; ``"reject"``
        raises :class:`EngineOverloaded` immediately.
    tenant_quota:
        Per-tenant fairness bound (default ``None`` — off): the most
        unique unresolved requests any *single* tenant may hold, on
        both the sync and async paths.  A submit that would exceed the
        submitter's slice raises :class:`TenantOverQuota` immediately —
        even under ``policy="block"``, and even when global capacity
        remains — so one tenant's flood is shed while every other
        tenant keeps being served.  Anonymous requests (no ``tenant``
        on the context) are never quota'd; dedup attaches and cache
        hits are always admitted (they add no work).
    tenant_quotas:
        Per-tenant overrides of ``tenant_quota`` (``tenant -> slice``).
        A tenant listed here is quota'd even when ``tenant_quota`` is
        ``None``.
    quota_retry_after_s:
        Backoff hint carried on :class:`TenantOverQuota` (and surfaced
        as the HTTP tier's ``Retry-After``).
    executor:
        ``None``/``"serial"`` (inline, deterministic), ``"threaded"``
        (persistent worker threads), or an executor instance — e.g. a
        :class:`~repro.serve.executor.ProcessExecutor` built from an
        :class:`~repro.serve.worker.EngineSpec` (persistent worker
        *processes*; ``ExperimentContext.engine(executor="process")``
        derives the spec automatically).  When the executor exposes a
        ``run_batch`` remote-compute channel, the engine ships each
        batch's compute to it as a compact payload and keeps all
        bookkeeping (cache, dedup fan-out, admission) in-process.
    plans:
        Compiled execution plans (default on): plan-eligible methods
        are traced once per ``(method, batch_shape, dtype)`` key and
        replayed tape-free thereafter through a
        :class:`~repro.serve.plans.PlanCache`; everything else (and any
        shape/dtype or frozen-set mismatch) falls back to the tape,
        counted in ``stats()["plans"]``.  Process workers keep their own
        per-replica caches — this flag does not affect them.  ``False``
        restores the always-tape behaviour.
    store:
        Persistent second cache tier (default off): a directory path —
        the engine opens a :class:`~repro.serve.store.SaliencyStore`
        there (read-write, single writer) and closes it with the
        engine — or an already-open store instance.  Tier-1 misses
        probe the store before queueing compute (mmap read, arrays
        re-frozen, the persisted GDSF cost threaded into the tier-1
        insert); computed results write behind to it.  A process pool
        additionally gets the directory plus an index snapshot so its
        workers serve store hits read-only.  Reopening the same
        directory later starts the engine *warm* — the whole point.
    priority:
        SLO-aware flush ordering (default on): ready queues pop in
        priority-class order (``interactive`` before ``normal`` before
        ``bulk``) with starvation aging — a queue's effective rank
        improves by one class per ``aging_ms`` of queue wait, so a
        saturating interactive flood can delay bulk work but never
        starve it.  ``False`` restores insertion-order pops exactly.
    aging_ms:
        The starvation bound: extra queue-wait (milliseconds) that
        promotes a queue by one priority class in the pop order.
    """

    def __init__(self, classifier, explainers: Dict[str, Explainer],
                 max_batch: int = 16, max_delay_ms: Optional[float] = None,
                 min_batch: Optional[int] = None,
                 target_batch_ms: float = 200.0,
                 cache_size: int = 256, cache_shards: int = 1,
                 eviction: str = "lru",
                 max_pending: Optional[int] = None, policy: str = "block",
                 tenant_quota: Optional[int] = None,
                 tenant_quotas: Optional[Dict[str, int]] = None,
                 quota_retry_after_s: float = 1.0,
                 executor=None, plans: bool = True, store=None,
                 priority: bool = True, aging_ms: float = 1000.0):
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None)")
        if policy not in ADMISSION_POLICIES:
            raise ValueError(f"unknown admission policy {policy!r}; "
                             f"use one of {ADMISSION_POLICIES}")
        quotas = dict(tenant_quotas or {})
        for tenant, slice_ in [(None, tenant_quota), *quotas.items()]:
            if slice_ is not None and slice_ < 1:
                raise ValueError(
                    f"tenant quota must be >= 1 (or None); got {slice_!r}"
                    + (f" for tenant {tenant!r}" if tenant else ""))
        self.classifier = classifier
        self.explainers = dict(explainers)
        self.cache = ShardedSaliencyCache(cache_size, shards=cache_shards,
                                          policy=eviction)
        self._scheduler = MicroBatchScheduler(
            max_batch, max_delay_ms, min_batch=min_batch,
            target_batch_ms=target_batch_ms,
            priority=priority, aging_ms=aging_ms)
        self._executor = make_executor(executor)
        self._lock = threading.RLock()
        self._inflight: List[Future] = []
        #: Resolve counts banked from pruned (already-done) async
        #: futures, paid out by the next drain().
        self._async_resolved = 0
        # Admission control: _unresolved counts unique requests admitted
        # but not yet resolved (queued or inside a dispatched batch);
        # the condition shares the engine lock so batch completion can
        # decrement and notify in its existing critical section.
        self.max_pending = max_pending
        self.admission_policy = policy
        self._admission = threading.Condition(self._lock)
        self._unresolved = 0
        self.admission_rejected = 0
        self.admission_blocked = 0
        self.admission_blocked_ms = 0.0
        # Per-tenant quota/fairness admission: each quota'd tenant may
        # hold at most its slice of unique unresolved requests (sync or
        # async); the slices are tracked independently of the global
        # max_pending budget so one tenant's flood is shed (429 at the
        # HTTP tier) while the others keep being admitted.
        self.tenant_quota = tenant_quota
        self.tenant_quotas = quotas
        self.quota_retry_after_s = quota_retry_after_s
        self._tenant_unresolved: Dict[str, int] = {}
        self.quota_rejected = 0
        self._closed = False
        # Batches handed to the executor but not yet completed; kick()
        # throttles ready dispatch to the executor's idle capacity so
        # backlog stays in the (priority-ordered) scheduler.
        self._dispatching = 0
        # Batches of one method never overlap: explainer objects are not
        # audited for internal thread safety, so concurrency comes from
        # running *different* methods (or shape-queues) in parallel.
        self._method_locks = {name: threading.Lock() for name in explainers}
        self._plan_cache = PlanCache() if plans else None
        # Tier 2: the persistent store.  A path opens one read-write
        # (this engine is the single writer for the directory); an
        # instance is adopted as-is.  Either way close() closes it —
        # mirroring how the engine owns executor shutdown.
        if store is None or isinstance(store, SaliencyStore):
            self._store = store
        else:
            self._store = SaliencyStore(os.fspath(store))
        self.store_served = 0
        self._store_attached_compactions = 0
        if self._store is not None:
            attach = getattr(self._executor, "attach_store", None)
            if attach is not None:
                # Process workers open the same directory read-only
                # from the writer's index snapshot (never scanning a
                # segment themselves) and serve store hits without
                # compute.
                attach(self._store.directory,
                       self._store.index_snapshot())
                self._store_attached_compactions = self._store.compactions
        self.batches_run = 0
        self.requests_served = 0
        #: Requests resolved as DeadlineExceeded without compute.
        self.deadline_expired = 0
        #: tenant -> {"served": n, "deadline_expired": n}.  Cache/store
        #: hit breakdowns live in their own stats sections.
        self._tenants: Dict[str, Dict[str, int]] = {}

    def _refresh_worker_store(self) -> None:
        """Re-ship the store's index snapshot to process workers when
        compaction retired segments since the last attach.  A stale
        worker entry already degrades to compute (the read-only get
        treats a vanished segment as a miss), so this is freshness,
        not correctness: refreshed workers stop probing dead segments
        and pick up everything persisted since.  Called at drain()'s
        idle point, where attach_store's wait-for-idle is instant."""
        if self._store is None or self._closed:
            return
        attach = getattr(self._executor, "attach_store", None)
        if attach is None:
            return
        compactions = self._store.compactions
        if compactions == self._store_attached_compactions:
            return
        try:
            attach(self._store.directory, self._store.index_snapshot())
            self._store_attached_compactions = compactions
        except Exception:                  # noqa: BLE001 — best-effort
            pass

    # ------------------------------------------------------------------
    @property
    def methods(self) -> Tuple[str, ...]:
        return tuple(self.explainers)

    @property
    def max_batch(self) -> int:
        return self._scheduler.max_batch

    @property
    def max_delay_ms(self) -> Optional[float]:
        return self._scheduler.max_delay_ms

    @property
    def executor(self):
        return self._executor

    def stats(self) -> Dict[str, object]:
        """Serving counters (cache, store, batching, dedup) for
        dashboards.

        ``plans`` aggregates across replicas when process workers are
        in play: per-worker counters are summed (each replica compiles
        and replays its own plans) with ``arena_bytes`` as the max —
        arenas are peak per-process memory, not additive.  Gathering
        worker stats waits for the pool to go idle, so under continuous
        async load call ``stats()`` after a ``drain()``.
        """
        cache = self.cache.stats()
        # Worker stats ride the channel pipes and wait for idle workers
        # — gather them only when the pool is idle right now (a stats
        # probe mid-flight must observe, not drain) and before taking
        # the engine lock so a slow pool never stalls submits racing
        # through the locked section below.
        worker_stats = None
        gather = getattr(self._executor, "worker_stats", None)
        pool_idle = getattr(self._executor, "pool_idle", None)
        if (gather is not None and not self._closed
                and (pool_idle is None or pool_idle())):
            try:
                worker_stats = gather()
            except Exception:              # noqa: BLE001 — stats are best-effort
                worker_stats = None
        plans = (self._plan_cache.stats()
                 if self._plan_cache is not None else None)
        store = self._store.stats() if self._store is not None else None
        # Transport counters (process pool only): bytes moved per path,
        # copies avoided, arena footprint, fallbacks, and how often a
        # send overlapped a busy worker's in-flight batch.
        transport = None
        transport_gather = getattr(self._executor, "transport_stats", None)
        if transport_gather is not None and not self._closed:
            try:
                transport = transport_gather()
            except Exception:              # noqa: BLE001 — best-effort
                transport = None
        if worker_stats:
            plans = _merge_plan_stats(plans, worker_stats)
            if store is not None:
                store["worker_hits"] = sum(
                    w.get("store", {}).get("hits", 0)
                    for w in worker_stats)
                store["worker_misses"] = sum(
                    w.get("store", {}).get("misses", 0)
                    for w in worker_stats)
        # Combined weighted hit rate across both tiers: compute avoided
        # by tier-1 hits plus tier-2 (store) hits, over that plus the
        # compute actually paid (computed inserts).
        avoided = cache["hit_cost_ms"]
        if store is not None:
            avoided += store["hit_cost_ms"]
        requested = avoided + cache["insert_cost_ms"]
        with self._lock:
            inflight = sum(1 for f in self._inflight if not f.done())
            return {
                "cache_hits": cache["hits"],
                "cache_misses": cache["misses"],
                "cache_evictions": cache["evictions"],
                "cache_inserts": cache["inserts"],
                "cache_size": cache["size"],
                "cache_shards": cache["shards"],
                "shard_sizes": cache["shard_sizes"],
                "hit_rate": cache["hit_rate"],
                "weighted_hit_rate": (avoided / requested
                                      if requested > 0 else None),
                "store": store,
                "store_served": self.store_served,
                "batches_run": self.batches_run,
                "requests_served": self.requests_served,
                "pending": self._scheduler.pending_count(),
                "pending_handles": self._scheduler.pending_handles(),
                "queues": self._scheduler.queue_stats(),
                "dedup_hits": self._scheduler.dedup_hits,
                "priority": self._scheduler.priority,
                "aging_ms": self._scheduler.aging_ms,
                "priority_promotions": self._scheduler.promotions,
                "deadline_expired": self.deadline_expired,
                "tenants": self._tenant_stats_locked(),
                "inflight": inflight,
                "unresolved": self._unresolved,
                "max_pending": self.max_pending,
                "admission_policy": self.admission_policy,
                "admission_rejected": self.admission_rejected,
                "admission_blocked": self.admission_blocked,
                "admission_blocked_ms": round(self.admission_blocked_ms, 3),
                "tenant_quota": self.tenant_quota,
                "tenant_quotas": dict(self.tenant_quotas),
                "quota_rejected": self.quota_rejected,
                "batch_limits": self._scheduler.batch_limits(),
                "eviction": self.cache.policy,
                "executor": self._executor.name,
                "plans": plans,
                "transport": transport,
            }

    def pending_count(self, method: Optional[str] = None) -> int:
        """Unique requests currently queued (not yet dispatched) —
        for one ``method`` or, with ``None``, across every queue.
        In-flight batches are excluded; see ``stats()["inflight"]``."""
        with self._lock:
            return self._scheduler.pending_count(method)

    def close(self) -> None:
        """Drain, then shut down the executor's workers (idempotent).

        Shutting the executor down while requests still sit queued or
        in flight would silently strand their unresolved handles, so
        ``close()`` drains first.  A failing batch gets one retry (its
        requests requeue at the front); a batch that still fails leaves
        the engine closed — no worker leak — but re-raises so stranded
        handles are loud, not lost.
        """
        if self._closed:
            return
        error: Optional[Exception] = None
        try:
            for _ in range(2):             # initial drain + one retry
                try:
                    self.drain()
                    error = None
                    break
                except Exception as exc:
                    # Only batch failures are retried; KeyboardInterrupt
                    # / SystemExit must propagate, not be eaten by a
                    # second full drain.
                    error = exc
        finally:
            # Shut the workers down on every exit path — including a
            # propagating interrupt — so close() never leaks them.
            self._closed = True
            self._executor.shutdown()
            if self._plan_cache is not None:
                self._plan_cache.close()
            if self._store is not None:
                # Drains the write-behind queue and snapshots the
                # journal, so the next engine on this directory opens
                # warm with a pure replay.
                self._store.close()
        if error is not None:
            raise error

    def __enter__(self) -> "ExplainEngine":
        return self

    def __exit__(self, *exc) -> bool:
        # Propagating a drain failure would mask the body's own
        # exception — close quietly in that case (the body's error is
        # the one the caller needs).
        if exc and exc[0] is not None:
            try:
                self.close()
            except BaseException:          # noqa: BLE001
                pass
        else:
            self.close()
        return False

    # ------------------------------------------------------------------
    def _explainer(self, method: str) -> Explainer:
        try:
            return self.explainers[method]
        except KeyError:
            raise KeyError(
                f"unknown method {method!r}; engine serves {self.methods}")

    def _run_batch(self, queue_key: QueueKey,
                   requests: List[ExplainRequest]) -> int:
        """Execute one micro-batch; returns the number of handles
        resolved (>= ``len(requests)`` when dedup fanned out)."""
        method = queue_key[0]
        explainer = self._explainer(method)
        labels = np.array([r.label for r in requests], dtype=np.int64)
        if any(r.target_label is not None for r in requests):
            targets = np.array(
                [-1 if r.target_label is None else int(r.target_label)
                 for r in requests], dtype=np.int64)
        else:
            targets = None
        remote = getattr(self._executor, "run_batch", None)
        if remote is not None:
            # Process pool: compute runs on a worker's private model
            # replicas, so no per-method lock is needed (two batches of
            # one method may overlap on different workers) and the
            # worker's own wall clock is the pure-compute cost.  A pool
            # with no survivors can never drain what is queued — that
            # is the admission contract's "cannot make progress" case,
            # surfaced in its own type with the crash as the cause.
            keys = ([list(r.key) for r in requests]
                    if self._store is not None else None)
            # An executor that accepts the per-request image list gets
            # it unstacked: the shm transport writes each image straight
            # into its arena slot, so the intermediate np.stack copy
            # never exists.  Duck-typed run_batch implementations keep
            # the stacked-array contract.
            if getattr(self._executor, "accepts_image_list", False):
                images = [r.image for r in requests]
            else:
                images = np.stack([r.image for r in requests])
            kwargs = {"keys": keys}
            if getattr(self._executor, "accepts_context", False):
                # Context-aware executors carry the compact context
                # fields over the wire and stamp the worker-side
                # timestamps straight onto these ctx objects.
                kwargs["ctxs"] = [r.ctx for r in requests]
            try:
                results, batch_ms = remote(method, images, labels, targets,
                                           **kwargs)
            except WorkerCrashed as exc:
                if getattr(self._executor, "alive_workers", 1) == 0:
                    raise EngineOverloaded(
                        "process pool has no live workers; the batch is "
                        "requeued but only a fresh executor can run it"
                    ) from exc
                raise
        else:
            images = np.stack([r.image for r in requests])
            with self._method_locks[method]:
                # Time inside the method lock: a batch that convoyed
                # behind another batch of its method must not bill the
                # wait as compute, or the inflated cost skews eviction
                # priorities and shrinks the adaptive batch limit under
                # load.
                start = time.perf_counter()
                if self._plan_cache is not None:
                    # Compiled-plan path: replay when a plan exists for
                    # this (method, shape, dtype) key, compile on first
                    # sight (billed to this batch — an honest cost),
                    # tape otherwise.  The cache applies the
                    # needs_gradients/no_grad contract to tape runs.
                    results = self._plan_cache.run(explainer, images,
                                                   labels, targets)
                elif explainer.needs_gradients:
                    results = explainer.explain_batch(images, labels,
                                                      targets)
                else:
                    with nn.no_grad():
                        results = explainer.explain_batch(images, labels,
                                                          targets)
                batch_ms = (time.perf_counter() - start) * 1000.0
        # Measured per-map cost feeds the cost-aware eviction policy
        # (cache insert below) and the queue's adaptive batch limit.
        # Worker-side store hits did no compute here: the batch's wall
        # time is spread over the computed maps only, and the hits keep
        # the cost persisted with their record.
        computed = [not (isinstance(r.meta, dict)
                         and r.meta.get("store_hit")) for r in results]
        n_computed = sum(computed)
        cost_ms = batch_ms / max(n_computed, 1)
        served = 0
        store_puts: List[Tuple[CacheKey, SaliencyResult]] = []
        with self._lock:
            self.batches_run += 1
            if n_computed:
                # A batch served entirely by worker store hits did no
                # compute: feeding the scheduler a zero-millisecond
                # observation would drag its adaptive per-map cost
                # estimate toward zero, so there is nothing to learn
                # from here.
                self._scheduler.observe(queue_key, batch_ms, n_computed)
            for request, result, was_computed in zip(requests, results,
                                                     computed):
                result.image_digest = request.key[0]
                request.ctx.stamp("computed")
                if was_computed:
                    self.cache.put(request.key, result, cost_ms=cost_ms)
                    if self._store is not None:
                        store_puts.append((request.key, result))
                else:
                    stored_cost = result.meta.get("store_cost_ms")
                    self.cache.put(request.key, result,
                                   cost_ms=stored_cost, computed=False)
                for handle in request.handles:
                    hctx = handle.ctx
                    if hctx is not None:
                        if hctx is not request.ctx:
                            # Dedup fan-out: the shared request carries
                            # the pipeline stamps; each handle keeps its
                            # own admitted/resolved pair.
                            hctx.absorb(request.ctx)
                        hctx.stamp("resolved")
                        self._count_tenant(hctx.tenant, "served")
                    handle._result = result
                served += len(request.handles)
            self.requests_served += served
            # Same critical section as handle resolution: a duplicate
            # submit either attached in time (resolved above) or finds
            # the key gone from the in-flight map and hits the cache.
            self._scheduler.mark_complete(requests)
            self._unresolved -= sum(1 for r in requests if r.counted)
            for request in requests:
                self._release_tenant_slot(request)
            self._admission.notify_all()   # room freed: wake blocked submits
        # Write-behind enqueues run outside the engine lock: put() takes
        # the store lock, and a store mid-drain must never transitively
        # stall every submit racing through the critical section above.
        for key, result in store_puts:
            self._store.put(key, result, cost_ms=cost_ms)
        return served

    def _pop_and_prepare(self, method: Optional[str],
                         ready_only: bool, track: bool,
                         limit: Optional[int] = None
                         ) -> List[Tuple[Future, QueueKey,
                                         List[ExplainRequest]]]:
        """Atomically pop batches and assign their futures.

        Popping a request out of the queue and giving it a waitable
        future happen under one lock hold, so a concurrent
        ``result()`` always observes the request either queued (a flush
        resolves it), carrying a future (waitable), or resolved — never
        in a popped-but-futureless limbo that would raise spuriously.
        ``limit`` (ready-only pops) caps how many batches leave the
        scheduler — see :meth:`kick`.
        """
        with self._lock:
            batches, expired = (self._scheduler.pop_ready(method,
                                                          limit=limit)
                                if ready_only
                                else self._scheduler.pop_batches(method))
            if expired:
                # Pruned from their queues by the pop pass: resolve as
                # DeadlineExceeded in the same critical section, so a
                # concurrent result() observes queued -> errored with no
                # futureless limbo in between.
                self._resolve_expired_locked(expired)
            prepared = []
            if track and batches:
                # Prune settled futures so a long-lived engine whose
                # callers resolve via handle.result() (never drain())
                # doesn't accumulate done futures without bound.  Their
                # resolve counts are banked for drain()'s return value;
                # failed futures are kept so drain() still re-raises —
                # unless the failure went stale (a retry resolved every
                # handle of the batch), in which case there is nothing
                # left to report.
                kept = []
                for f in self._inflight:
                    if f.done() and f.exception() is None:
                        self._async_resolved += f.result()
                    elif f.done() and self._failure_is_stale(f):
                        pass
                    else:
                        kept.append(f)
                self._inflight = kept
            for queue_key, requests in batches:
                future: Future = Future()
                for request in requests:
                    request.future = future
                    request.ctx.stamp("dispatched")
                if track:
                    # Remember the batch behind the future: if it fails
                    # and a later flush/result() retry resolves the
                    # requeued requests, the parked exception is stale
                    # and drain() must not re-raise it.
                    future.engine_requests = requests
                    self._inflight.append(future)
                prepared.append((future, queue_key, requests))
            return prepared

    @staticmethod
    def _failure_is_stale(future: Future) -> bool:
        """True when every handle of a failed tracked batch has since
        resolved (its requeued requests were retried successfully by a
        flush or ``result()``): the exception reports work that already
        recovered, so surfacing it would be a spurious crash.  Call
        under the engine lock (handle lists mutate under it)."""
        requests = getattr(future, "engine_requests", None)
        if not requests:
            return False
        return all(handle._result is not None or handle._error is not None
                   for request in requests for handle in request.handles)

    def _count_tenant(self, tenant: Optional[str], field: str) -> None:
        """Bump one per-tenant counter (engine lock held); anonymous
        requests (no tenant) aggregate only into the global counters."""
        if tenant is None:
            return
        entry = self._tenants.setdefault(
            tenant, {"served": 0, "deadline_expired": 0,
                     "quota_rejected": 0})
        entry.setdefault(field, 0)
        entry[field] += 1

    def _tenant_stats_locked(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant counter snapshot (engine lock held): lifetime
        served/expired/quota-rejected counts plus the live
        ``unresolved`` footprint of every tenant currently holding a
        quota slice."""
        tenants = {tenant: dict(counts) for tenant, counts
                   in sorted(self._tenants.items())}
        for tenant, held in self._tenant_unresolved.items():
            entry = tenants.setdefault(
                tenant, {"served": 0, "deadline_expired": 0,
                         "quota_rejected": 0})
            entry["unresolved"] = held
        return tenants

    # -- per-tenant quota accounting (engine lock held throughout) -----
    def _quota_for(self, tenant: Optional[str]) -> Optional[int]:
        """The tenant's quota slice: its ``tenant_quotas`` override,
        else the engine-wide ``tenant_quota`` default, else ``None``
        (unbounded).  Anonymous requests are never quota'd."""
        if tenant is None:
            return None
        return self.tenant_quotas.get(tenant, self.tenant_quota)

    def _charge_tenant_slot(self, request: ExplainRequest,
                            tenant: Optional[str]) -> None:
        """Charge one unique new request against the tenant's slice
        (no-op when the tenant carries no quota)."""
        if self._quota_for(tenant) is None:
            return
        request.slot_tenant = tenant
        self._tenant_unresolved[tenant] = (
            self._tenant_unresolved.get(tenant, 0) + 1)

    def _release_tenant_slot(self, request: ExplainRequest) -> None:
        """Release a request's tenant-slice slot (idempotent).  Called
        at every path that retires the unique request: batch
        completion, deadline expiry, failed-batch dedup merge, and
        sync-submit discard."""
        tenant = request.slot_tenant
        if tenant is None:
            return
        request.slot_tenant = None
        held = self._tenant_unresolved.get(tenant, 0) - 1
        if held > 0:
            self._tenant_unresolved[tenant] = held
        else:
            self._tenant_unresolved.pop(tenant, None)

    def _resolve_expired_locked(self,
                                expired: List[ExplainRequest]) -> None:
        """Resolve deadline-expired requests (already pruned from their
        queues) as :class:`DeadlineExceeded` — no executor dispatch, no
        cache insert, no adaptive-batching observation.  Engine lock
        held; counted requests release their admission slots here."""
        freed = 0
        for request in expired:
            rctx = request.ctx
            rctx.stamp("resolved")
            waited_ms = (rctx.resolved_at
                         - (rctx.admitted_at or rctx.resolved_at)) * 1000.0
            error = DeadlineExceeded(
                f"request {rctx.trace_id} ({rctx.priority}) missed its "
                f"deadline after {waited_ms:.1f} ms queued", rctx)
            for handle in request.handles:
                hctx = handle.ctx
                if hctx is not None and hctx is not rctx:
                    hctx.absorb(rctx)
                    hctx.stamp("resolved")
                handle._error = error
                self.deadline_expired += 1
                self._count_tenant(
                    hctx.tenant if hctx is not None else None,
                    "deadline_expired")
            if request.counted:
                freed += 1
            self._release_tenant_slot(request)
        if freed:
            self._unresolved -= freed
            self._admission.notify_all()   # slots freed without compute

    def _launch(self, future: Future, queue_key: QueueKey,
                requests: List[ExplainRequest]) -> None:
        """Hand one prepared batch to the executor.

        The batch's future was assigned at pop time (so ``result()`` on
        another thread can wait on it) and is cleared on completion; a
        failing batch requeues its requests at the queue front before
        the future carries the exception, preserving the flush-retry
        contract across executors.
        """

        def run() -> None:
            if not future.set_running_or_notify_cancel():
                with self._lock:
                    self._dispatching -= 1
                return
            try:
                try:
                    served = self._run_batch(queue_key, requests)
                finally:
                    with self._lock:
                        self._dispatching -= 1
            except BaseException as exc:   # noqa: BLE001
                with self._lock:
                    for request in requests:
                        request.future = None
                    merged = self._scheduler.requeue_front(queue_key,
                                                           requests)
                    # A requeued request that merged onto a newer
                    # duplicate shrank the unique pending set; its
                    # admission slot transfers to the survivor (or is
                    # released if the survivor already holds one).
                    freed = 0
                    for request in merged:
                        newer = self._scheduler.lookup(queue_key,
                                                       request.key)
                        # The tenant slice transfers the same way the
                        # global slot does: the surviving duplicate now
                        # carries the unique work.
                        if (request.slot_tenant is not None
                                and newer is not None
                                and newer.slot_tenant is None):
                            newer.slot_tenant = request.slot_tenant
                            request.slot_tenant = None
                        else:
                            self._release_tenant_slot(request)
                        if not request.counted:
                            continue
                        if newer is not None and not newer.counted:
                            newer.counted = True
                        else:
                            freed += 1
                    if freed:
                        self._unresolved -= freed
                        self._admission.notify_all()
                future.set_exception(exc)
            else:
                with self._lock:
                    for request in requests:
                        request.future = None
                future.set_result(served)

        with self._lock:
            self._dispatching += 1
        self._executor.submit(run)

    # ------------------------------------------------------------------
    def flush(self, method: Optional[str] = None) -> int:
        """Run all pending micro-batches (for one method or all),
        blocking until they resolve.  Returns the number of handles
        resolved.  The first batch failure is re-raised after the
        round completes; its requests are requeued for a retry.
        """
        resolved = 0
        while True:
            prepared = self._pop_and_prepare(method, ready_only=False,
                                             track=False)
            if not prepared:
                return resolved
            try:
                resolved += self._run_prepared(prepared)
            except BaseException:
                # Earlier rounds' counts must survive the raise (the
                # failing round banked its own partial); the next
                # drain() pays them out.
                with self._lock:
                    self._async_resolved += resolved
                raise

    def _flush_ready(self, method: str) -> int:
        """Synchronously run only the queues of ``method`` that hit
        ``max_batch`` or the deadline (the submit auto-flush path)."""
        prepared = self._pop_and_prepare(method, ready_only=True,
                                         track=False)
        return self._run_prepared(prepared)

    def _run_prepared(self, prepared) -> int:
        """Launch prepared batches and block until all resolve; the
        first failure is re-raised after the round completes.  On a
        failure the successful batches' handle counts are banked for
        the next ``drain()`` rather than discarded."""
        for future, queue_key, requests in prepared:
            self._launch(future, queue_key, requests)
        resolved = 0
        error: Optional[BaseException] = None
        for future, _queue_key, _requests in prepared:
            try:
                resolved += future.result()
            except BaseException as exc:   # noqa: BLE001
                if error is None:
                    error = exc
        if error is not None:
            with self._lock:
                self._async_resolved += resolved
            raise error
        return resolved

    def drain(self) -> int:
        """Resolve everything: await in-flight async batches, then flush
        all queues.  Returns the number of handles resolved.  A batch
        failure is re-raised (its requests stay queued for a retry);
        call ``drain()`` again to retry.

        When a failure re-raises, the handle counts of the batches that
        *did* resolve this call are banked into ``_async_resolved`` —
        not discarded — so a retry drain's return value reports the
        true total instead of silently under-counting.
        """
        resolved = 0
        try:
            while True:
                with self._lock:
                    futures, self._inflight = self._inflight, []
                    resolved += self._async_resolved
                    self._async_resolved = 0
                for i, future in enumerate(futures):
                    try:
                        resolved += future.result()
                    except BaseException:
                        with self._lock:
                            stale = self._failure_is_stale(future)
                            if not stale:
                                self._inflight.extend(futures[i + 1:])
                        if stale:
                            continue   # a retry already resolved it all
                        raise
                resolved += self.flush()
                with self._lock:
                    idle = (not self._inflight
                            and self._scheduler.pending_count() == 0)
                if idle:
                    self._refresh_worker_store()
                    return resolved
        except BaseException:
            with self._lock:
                self._async_resolved += resolved
            raise

    # ------------------------------------------------------------------
    def _block_for_admission(self) -> None:
        """Wait (holding the admission condition) until the unresolved
        count drops below ``max_pending``.

        Called with the engine lock held; ``wait`` releases it so batch
        completions can decrement and notify.  When nothing is in
        flight to free room — a serial executor, or ``max_pending``
        below every queue's flush point — the blocked submit itself
        dispatches queued work, so blocking always makes progress
        instead of deadlocking.  Ready queues (full or past deadline)
        go first; only if none exists are partial queues force-flushed,
        so engaging backpressure doesn't needlessly break other
        producers' accumulating micro-batches.  If the pending work
        keeps *failing* (its batches requeue forever), a failure is
        retried once by this loop's own dispatch; only a failure that
        survives that retry — or one with nothing left to retry —
        raises :class:`EngineOverloaded` (with the batch failure as
        ``__cause__``) rather than spinning: backpressure that can
        never drain is an error the producer must see, delivered in
        the admission contract's own type.  A transient failure
        recovers transparently.
        """
        self.admission_blocked += 1
        start = time.monotonic()
        retried_failure = False
        try:
            while self._unresolved >= self.max_pending:
                if not any(not f.done() for f in self._inflight):
                    failed: Optional[Future] = None
                    for f in list(self._inflight):
                        if f.done() and f.exception() is not None:
                            if self._failure_is_stale(f):
                                self._inflight.remove(f)
                            elif failed is None:
                                failed = f
                    pending = self._scheduler.pending_count()
                    if failed is not None and (retried_failure
                                               or not pending):
                        raise EngineOverloaded(
                            "backpressure cannot drain: pending work "
                            "keeps failing (see __cause__); its "
                            "requests stay queued for a retry"
                        ) from failed.exception()
                    if pending:
                        prepared = self._pop_and_prepare(
                            None, ready_only=True, track=True)
                        if not prepared:
                            prepared = self._pop_and_prepare(
                                None, ready_only=False, track=True)
                        # Launch without the engine lock (the popped
                        # batches are already owned via their futures):
                        # a SerialExecutor runs the batch inline, and
                        # holding the lock across its method-lock wait
                        # and compute would convoy every other producer
                        # behind this one dispatch.  The lock is held
                        # exactly once here (public submit entry), so
                        # the release/acquire pair is balanced.
                        self._lock.release()
                        try:
                            for future, queue_key, requests in prepared:
                                self._launch(future, queue_key, requests)
                        finally:
                            self._lock.acquire()
                        # Dispatching with a failure outstanding IS the
                        # retry; a second failure after it raises.
                        retried_failure = failed is not None
                        continue
                self._admission.wait(timeout=0.05)
        finally:
            self.admission_blocked_ms += (time.monotonic()
                                          - start) * 1000.0

    # ------------------------------------------------------------------
    def _submit(self, image: np.ndarray, label: int, method: str,
                target_label: Optional[int],
                dispatch_async: bool, ctx=None) -> PendingExplain:
        ctx = RequestContext.ensure(ctx)
        ctx.stamp("admitted")
        self._explainer(method)
        image = np.asarray(image)
        # Digest once per request: the same digest keys the cache probe,
        # rides the queued request, keys the insert, and is stamped on
        # the result — the image bytes are never re-hashed.
        digest = image_digest(image)
        key = request_key(image, method, label, target_label, digest=digest)
        cached = self.cache.get(key, tenant=ctx.tenant)
        if cached is not None:
            ctx.stamp("resolved")
            with self._lock:
                self.requests_served += 1
                self._count_tenant(ctx.tenant, "served")
            return PendingExplain(self, method, cache_hit=True,
                                  _result=cached, ctx=ctx)
        if self._store is not None:
            # Tier 2: a store hit promotes into the memory tier with
            # its *persisted* compute cost (computed=False — nothing
            # was paid now), so GDSF keeps protecting expensive maps
            # across the restart that made this probe necessary.
            stored = self._store.get(key, tenant=ctx.tenant)
            if stored is not None:
                result, stored_cost = stored
                self.cache.put(key, result, cost_ms=stored_cost,
                               computed=False)
                ctx.stamp("resolved")
                with self._lock:
                    self.requests_served += 1
                    self.store_served += 1
                    self._count_tenant(ctx.tenant, "served")
                return PendingExplain(self, method, cache_hit=True,
                                      _result=result, ctx=ctx)
        if ctx.expired():
            # Dead on arrival: both cache tiers missed and the deadline
            # already passed — resolve without queueing or compute.
            ctx.stamp("resolved")
            handle = PendingExplain(self, method, ctx=ctx)
            handle._error = DeadlineExceeded(
                f"request {ctx.trace_id} ({ctx.priority}) deadline "
                "passed at admission", ctx)
            with self._lock:
                self.deadline_expired += 1
                self._count_tenant(ctx.tenant, "deadline_expired")
            return handle

        # The scheduler copies the image only when it creates a new
        # request, so cache hits and deduped submits stay
        # allocation-free; a caller reusing its buffer never changes
        # what a queued request (or the cache) sees.
        handle = PendingExplain(self, method, ctx=ctx)
        with self._admission:              # the engine lock, waitable
            # Re-probe under the lock: the request's twin may have
            # completed (cache insert + in-flight retirement share this
            # lock) between the unlocked probe above and here.  peek()
            # keeps the double-check out of the hit/miss counters.
            cached = self.cache.peek(key)
            if cached is not None:
                self.requests_served += 1
                self._count_tenant(ctx.tenant, "served")
                ctx.stamp("resolved")
                return PendingExplain(self, method, cache_hit=True,
                                      _result=cached, ctx=ctx)
            family = (method, tuple(image.shape))
            quota = self._quota_for(ctx.tenant)
            if (quota is not None
                    and self._scheduler.lookup(family, key) is None
                    and self._tenant_unresolved.get(ctx.tenant, 0)
                    >= quota):
                # Per-tenant fairness gate, checked *before* the global
                # admission bound: a tenant over its slice is rejected
                # outright (never blocked) even while global capacity
                # remains, so its flood sheds while other tenants'
                # submits keep flowing.  Dedup attaches are exempt —
                # they add no work.
                self.quota_rejected += 1
                self._count_tenant(ctx.tenant, "quota_rejected")
                raise TenantOverQuota(
                    ctx.tenant, self._tenant_unresolved[ctx.tenant],
                    quota, self.quota_retry_after_s)
            if (dispatch_async and self.max_pending is not None
                    and self._scheduler.lookup(family, key) is None
                    and self._unresolved >= self.max_pending):
                # Admission control gates only *new unique* async work:
                # dedup attaches and cache hits never add compute, and
                # the sync path flushes inline, so it self-limits.
                if self.admission_policy == "reject":
                    self.admission_rejected += 1
                    raise EngineOverloaded(
                        f"engine holds {self._unresolved} unresolved "
                        f"requests (max_pending={self.max_pending}); "
                        "rejected by admission policy")
                self._block_for_admission()
                cached = self.cache.peek(key)  # twin may have finished
                if cached is not None:
                    self.requests_served += 1
                    self._count_tenant(ctx.tenant, "served")
                    ctx.stamp("resolved")
                    return PendingExplain(self, method, cache_hit=True,
                                          _result=cached, ctx=ctx)
                if ctx.expired():
                    # The deadline ran out inside the backpressure wait:
                    # admitting now could never meet it.
                    ctx.stamp("resolved")
                    handle._error = DeadlineExceeded(
                        f"request {ctx.trace_id} ({ctx.priority}) "
                        "deadline passed while blocked for admission",
                        ctx)
                    self.deadline_expired += 1
                    self._count_tenant(ctx.tenant, "deadline_expired")
                    return handle
            request, _deduped, ready = self._scheduler.enqueue(
                method, image, int(label), target_label, key, handle,
                ctx)
            ctx.stamp("enqueued")
            if not _deduped and dispatch_async:
                # Only async ingestion occupies the admission budget:
                # sync submits flush inline and are self-limiting.
                self._unresolved += 1
                request.counted = True
            if not _deduped:
                # The tenant slice charges on both paths: it bounds a
                # tenant's unresolved footprint however it arrived.
                self._charge_tenant_slot(request, ctx.tenant)
            handle._request = request
        if ready:
            if dispatch_async:
                prepared = self._pop_and_prepare(method, ready_only=True,
                                                 track=True)
                for future, queue_key, requests in prepared:
                    self._launch(future, queue_key, requests)
            else:
                try:
                    # Only the queue(s) that hit max_batch/deadline run;
                    # partial queues of other shapes keep accumulating.
                    self._flush_ready(method)
                except Exception:
                    # The exception propagates before the caller ever
                    # holds the handle — drop the unresolved request
                    # (unless dedup attached other handles to it) so a
                    # retried submit doesn't enqueue a duplicate nobody
                    # can resolve.
                    with self._lock:
                        if (handle._result is None
                                and len(request.handles) == 1
                                and self._scheduler.discard(request)):
                            self._release_tenant_slot(request)
                            if request.counted:
                                self._unresolved -= 1
                                self._admission.notify_all()
                    raise
        return handle

    def submit(self, image: np.ndarray, label: int, method: str,
               target_label: Optional[int] = None,
               ctx=None) -> PendingExplain:
        """Queue one request; returns a handle resolving at flush time.

        Cache hits resolve immediately; duplicates of an already-queued
        request attach to it (one computation, fanned-out result).  The
        owning queue auto-flushes **synchronously** when ``max_batch``
        unique requests are pending or the deadline passed.

        ``ctx`` is the request's SLO envelope: a
        :class:`RequestContext`, a bare priority-class string, or
        ``None`` for the legacy default (``normal``, no deadline, no
        tenant).
        """
        return self._submit(image, label, method, target_label,
                            dispatch_async=False, ctx=ctx)

    def submit_async(self, image: np.ndarray, label: int, method: str,
                     target_label: Optional[int] = None,
                     ctx=None) -> PendingExplain:
        """Non-blocking submit: a full queue is handed to the executor
        without waiting for it to run.  Resolve via ``handle.result()``
        (waits on the in-flight batch) or a final :meth:`drain`.

        On a ``max_pending`` engine this path is admission-controlled:
        a submit that would add unique work beyond the bound blocks
        until batches complete (``policy="block"``) or raises
        :class:`EngineOverloaded` (``policy="reject"``).  Cache hits
        and dedup attaches are always admitted.  ``ctx`` as in
        :meth:`submit`; a request whose deadline passes while it is
        still queued resolves as :class:`DeadlineExceeded` without
        reaching an executor.
        """
        return self._submit(image, label, method, target_label,
                            dispatch_async=True, ctx=ctx)

    def kick(self) -> int:
        """One non-blocking scheduler sweep: deadline-expired requests
        resolve as :class:`DeadlineExceeded` and ready queues (batch
        limit or ``max_delay_ms`` hit) dispatch to the executor
        asynchronously.  Returns the number of batches launched.

        Dispatch is **throttled to the executor's idle capacity**
        (``executor.workers`` minus batches currently in flight): work
        an executor cannot start yet stays in the scheduler, where
        priority order, starvation aging, and deadline expiry still
        apply — handing it over early would freeze the order in the
        executor's FIFO, letting a bulk burst that arrived first block
        an interactive request for its whole backlog.  ``flush`` and
        ``drain`` stay unthrottled (they block until resolution, so
        holding work back buys nothing).

        An open-loop producer (e.g. ``benchmarks/bench_slo.py``) calls
        this between arrivals so partial queues honour ``max_delay_ms``
        — and dead requests are swept — without a blocking ``flush``.
        """
        if self._closed:
            return 0
        capacity = getattr(self._executor, "workers", 1) or 1
        with self._lock:
            limit = max(0, capacity - self._dispatching)
        prepared = self._pop_and_prepare(None, ready_only=True,
                                         track=True, limit=limit)
        for future, queue_key, requests in prepared:
            self._launch(future, queue_key, requests)
        return len(prepared)

    def explain(self, image: np.ndarray, label: int, method: str,
                target_label: Optional[int] = None,
                ctx=None) -> SaliencyResult:
        """Synchronous single-request path (submit + resolve).

        Returns the :class:`~repro.explain.base.SaliencyResult` for
        ``image``/``label`` under ``method`` (optionally contrasted
        against ``target_label``); equivalent to
        ``submit(...).result()``, so it batches with whatever else is
        queued.  Raises ``KeyError`` for an unknown method,
        :class:`TenantOverQuota` when ``ctx.tenant`` is over its
        slice, :class:`DeadlineExceeded` when ``ctx``'s deadline
        passes before compute, and whatever a failing
        ``explain_batch`` raised.
        """
        return self.submit(image, label, method, target_label,
                           ctx=ctx).result()

    def explain_batch(self, images: np.ndarray, labels: np.ndarray,
                      method: str,
                      target_labels: Optional[np.ndarray] = None,
                      ctx=None) -> List[SaliencyResult]:
        """Cache-aware batched path: only cache misses hit the models,
        and duplicate images inside the batch are computed once (their
        handles share one queued request).

        On a ``max_pending`` engine, ingestion runs through
        ``submit_async`` — the admission-controlled path — so a sweep
        over a huge sample set holds bounded work in memory (full
        micro-batches stream to the executor while later images are
        still being submitted).  Under ``policy="reject"`` an overload
        therefore raises :class:`EngineOverloaded` out of this call;
        already-submitted handles stay queued and resolvable.  Without
        ``max_pending`` the sweep uses the synchronous path, whose
        inline auto-flushes keep at most one full micro-batch queued
        per shape — async ingestion with no bound would instead pile
        every pending request copy into the executor's queue.
        """
        submit = (self.submit_async if self.max_pending is not None
                  else self.submit)
        # One spawn per element: priority/deadline/tenant/trace apply
        # to the whole sweep, stage stamps stay per-request.
        template = None if ctx is None else RequestContext.ensure(ctx)
        handles = [
            submit(images[i], int(labels[i]), method,
                   None if target_labels is None
                   else int(target_labels[i]),
                   ctx=None if template is None else template.spawn())
            for i in range(len(images))
        ]
        self.flush(method)
        return [h.result() for h in handles]
