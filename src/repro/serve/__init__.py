"""``repro.serve`` — the saliency serving layer.

Builds on the batched-first explainer contract (every method's
``explain_batch`` runs its forward/backward over the whole batch in
shared conv/GEMM calls) and the ``nn.no_grad()`` inference mode to serve
explanation requests at throughput: the :class:`ExplainEngine`
micro-batches incoming ``(image, label, method)`` requests up to a
configurable batch size/deadline, runs gradient-free methods under
``no_grad``, and fronts everything with an LRU saliency cache keyed on
``(image_digest, method, label, target)``.
"""

from .engine import (ExplainEngine, PendingExplain, SaliencyCache,
                     image_digest, request_key)

__all__ = [
    "ExplainEngine", "PendingExplain", "SaliencyCache",
    "image_digest", "request_key",
]
