"""``repro.serve`` — the sharded, deduplicating saliency-serving runtime.

The package splits the serving layer into four pieces:

* :mod:`~repro.serve.cache` — :class:`ShardedSaliencyCache`: N
  independent thread-safe LRU shards keyed on a stable hash of the
  image digest; per-shard stats aggregate in ``stats()``.
* :mod:`~repro.serve.scheduler` — :class:`MicroBatchScheduler`: pending
  requests queue per ``(method, image_shape)`` (one engine serves
  heterogeneous datasets) and identical ``(digest, method, label,
  target)`` requests dedup onto one computation whose result fans out
  to every attached handle.
* :mod:`~repro.serve.executor` — :class:`SerialExecutor` (inline,
  deterministic) and :class:`ThreadedExecutor` (persistent worker
  threads; the BLAS GEMMs inside ``explain_batch`` release the GIL, so
  independent micro-batches overlap on multi-core hosts).
* :mod:`~repro.serve.engine` — the :class:`ExplainEngine` façade tying
  them together behind ``submit`` / ``submit_async`` / ``flush`` /
  ``drain`` / ``explain`` / ``explain_batch``.

Quickstart
----------
::

    from repro.serve import ExplainEngine

    engine = ExplainEngine(classifier, suite.explainers,
                           max_batch=16, cache_size=512, cache_shards=4,
                           executor="threaded")
    handles = [engine.submit_async(img, int(lab), "gradcam")
               for img, lab in zip(images, labels)]   # non-blocking
    engine.drain()                                    # resolve everything
    maps = [h.result().saliency for h in handles]
    print(engine.stats())   # hits/misses/evictions per shard, batches,
                            # dedup fan-outs, in-flight batches
    engine.close()

Methods with ``needs_gradients = False`` run under the (thread-local)
``nn.no_grad()``; every image is digested exactly once per request and
the digest is stamped on the result's ``image_digest`` field.
"""

from .cache import (CacheKey, SaliencyCache, ShardedSaliencyCache,
                    image_digest, request_key)
from .engine import ExplainEngine, PendingExplain
from .executor import SerialExecutor, ThreadedExecutor, make_executor
from .scheduler import ExplainRequest, MicroBatchScheduler, QueueKey

__all__ = [
    "ExplainEngine", "PendingExplain",
    "SaliencyCache", "ShardedSaliencyCache", "CacheKey",
    "image_digest", "request_key",
    "MicroBatchScheduler", "ExplainRequest", "QueueKey",
    "SerialExecutor", "ThreadedExecutor", "make_executor",
]
