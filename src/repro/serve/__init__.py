"""``repro.serve`` — the sharded, deduplicating saliency-serving runtime.

The package splits the serving layer into four pieces:

* :mod:`~repro.serve.cache` — :class:`ShardedSaliencyCache`: N
  independent thread-safe shards keyed on a stable hash of the image
  digest; per-shard stats aggregate in ``stats()``.  Eviction is exact
  LRU by default or cost-aware GDSF (``policy="cost"``): each insert
  records the measured per-map compute cost, so a flood of cheap maps
  can't evict the few expensive ones.
* :mod:`~repro.serve.scheduler` — :class:`MicroBatchScheduler`: pending
  requests queue per ``(method, image_shape, priority_class)`` (one
  engine serves heterogeneous datasets, and an interactive request
  never waits inside a bulk micro-batch) while identical ``(digest,
  method, label, target)`` requests dedup onto one computation —
  across classes — whose result fans out to every attached handle.
  Ready queues flush in effective-rank order (class rank softened by
  queue wait, so floods delay but never starve a class).  With
  ``min_batch`` set, each queue's flush limit adapts to its observed
  per-map latency (cheap methods batch wide, expensive ones flush
  small).
* :mod:`~repro.serve.context` — :class:`RequestContext`: the
  per-request SLO envelope (priority class, optional absolute
  deadline, tenant id, trace id) and stage-timestamp carrier every
  entry point accepts as ``ctx=``; a deadline that passes while the
  request is queued resolves it as :class:`DeadlineExceeded` without
  billing compute.
* :mod:`~repro.serve.executor` — :class:`SerialExecutor` (inline,
  deterministic), :class:`ThreadedExecutor` (persistent worker threads;
  the BLAS GEMMs inside ``explain_batch`` release the GIL, so
  independent micro-batches overlap on multi-core hosts), and
  :class:`ProcessExecutor` (persistent worker *processes*: each one
  materializes the engine's models once from a picklable
  :class:`~repro.serve.worker.EngineSpec` and then serves compact batch
  payloads, sidestepping the GIL for the python-heavy explainer
  overhead threads cannot parallelize).
* :mod:`~repro.serve.worker` — the process-worker side: the
  :class:`EngineSpec` recipe, the payload codec, and the worker loop.
* :mod:`~repro.serve.transport` — the zero-copy payload path under the
  process pool: per-worker double-buffered shared-memory arenas
  (:class:`ShmArena` parent-side, :class:`ArenaClient` worker-side)
  carry the ndarray payloads while the pipe carries compact headers,
  letting the dispatcher encode the next batch while the worker
  computes the current one.  Arenas grow geometrically, stale or
  oversized payloads degrade that one batch to the pipe codec, the
  parent owns every ``/dev/shm`` segment (crashes leak nothing), and
  ``REPRO_SERVE_TRANSPORT=pipe`` — or a platform without
  ``multiprocessing.shared_memory`` — keeps the pickle codec
  byte-for-byte.
* :mod:`~repro.serve.plans` — :class:`PlanCache`: compiled execution
  plans for the shape-repetitive hot path.  The first batch of a
  plan-eligible method on a new ``(method, batch_shape, dtype)`` key is
  traced through :mod:`repro.nn.plan` into a buffer-arena plan; every
  later batch of that key **replays** tape-free (no Tensor objects, no
  closures, ``out=`` into preallocated buffers).  Plans invalidate on
  ``nn.set_default_dtype`` (all entries dropped) and revalidate their
  compile-time ``nn.frozen`` fingerprint on each lookup (a persisting
  frozen-set change falls back to the tape until it reverts).
  Ineligible methods (LIME, occlusion, StyLEx, ICAM, CAE — data-
  dependent control flow) and any shape/dtype mismatch run the tape,
  counted in ``stats()["plans"]["fallbacks"]``.  The in-process engine
  (serial/threaded executors) holds one cache; **process workers
  compile per-replica** — each worker owns a private ``PlanCache``
  because buffer arenas cannot cross process boundaries, and reports
  its counters through the executor's ``stats`` channel.
* :mod:`~repro.serve.store` — :class:`SaliencyStore`: the persistent
  second cache tier.  Content-addressed on the same cache key,
  float16-quantized records in append-only segment files, a journaled
  index rebuilt by CRC-checked segment scan on corruption, write-behind
  inserts (the hot path never blocks on disk), mmap reads, per-entry
  GDSF cost persisted so cost-aware eviction survives restarts, and
  whole-segment compaction for capacity.  One read-write opener per
  directory (the engine); process workers attach read-only from an
  index snapshot and serve store hits without compute.
* :mod:`~repro.serve.engine` — the :class:`ExplainEngine` façade tying
  them together behind ``submit`` / ``submit_async`` / ``flush`` /
  ``drain`` / ``explain`` / ``explain_batch``.  Async ingestion is
  admission-controlled: ``max_pending`` bounds unique unresolved
  requests, and an over-limit ``submit_async`` blocks for room
  (``policy="block"``) or raises :class:`EngineOverloaded`
  (``policy="reject"``), while ``tenant_quota`` / ``tenant_quotas``
  bound each tenant's slice of that capacity (reject-only:
  :class:`TenantOverQuota` carries a retry-after hint).  ``store=``
  adds the persistent tier: misses probe it before queueing compute,
  results write behind to it, and an engine reopened on the same
  directory starts warm.
* :mod:`~repro.serve.http` — the network front end: a stdlib
  HTTP/JSON daemon over the engine (sync and ticket-based async
  explain, batch, stats, health; API key -> tenant; engine exceptions
  mapped onto 4xx/5xx).  Import it explicitly
  (``from repro.serve.http import serve``) — the in-process runtime
  never pays for it; ``tools/serve_daemon.py`` is the CLI.

Quickstart
----------
::

    from repro.serve import ExplainEngine

    engine = ExplainEngine(classifier, suite.explainers,
                           max_batch=32, min_batch=2,   # adaptive batching
                           cache_size=512, cache_shards=4,
                           eviction="cost",             # keep pricey maps
                           max_pending=64,              # backpressure
                           executor="threaded")
    handles = [engine.submit_async(img, int(lab), "gradcam")
               for img, lab in zip(images, labels)]   # bounded, non-blocking
    engine.drain()                                    # resolve everything
    maps = [h.result().saliency for h in handles]
    print(engine.stats())   # hits/misses/evictions per shard, batches,
                            # dedup fan-outs, admission + batch-limit state
    engine.close()          # drains first: no handle is ever stranded

Methods with ``needs_gradients = False`` run under the (thread-local)
``nn.no_grad()``; every image is digested exactly once per request and
the digest is stamped on the result's ``image_digest`` field.
"""

from .cache import (EVICTION_POLICIES, CacheKey, SaliencyCache,
                    ShardedSaliencyCache, image_digest, request_key)
from .context import (PRIORITIES, PRIORITY_RANK, DeadlineExceeded,
                      RequestContext)
from .engine import (ADMISSION_POLICIES, EngineOverloaded, ExplainEngine,
                     PendingExplain, TenantOverQuota)
from .executor import (ProcessExecutor, SerialExecutor, ThreadedExecutor,
                       default_worker_count, make_executor)
from .plans import PlanCache
from .scheduler import ExplainRequest, MicroBatchScheduler, QueueKey
from .store import SaliencyStore, StoreClosed
from .transport import (TRANSPORTS, ArenaClient, ShmArena, TransportStats,
                        have_shared_memory, pack_ctxs, resolve_transport,
                        unpack_ctxs)
from .worker import (EngineSpec, WorkerBatchError, WorkerCrashed,
                     demo_spec)

__all__ = [
    "ExplainEngine", "PendingExplain", "EngineOverloaded",
    "TenantOverQuota",
    "RequestContext", "DeadlineExceeded", "PRIORITIES", "PRIORITY_RANK",
    "ADMISSION_POLICIES", "EVICTION_POLICIES",
    "SaliencyCache", "ShardedSaliencyCache", "CacheKey",
    "image_digest", "request_key",
    "MicroBatchScheduler", "ExplainRequest", "QueueKey",
    "SerialExecutor", "ThreadedExecutor", "ProcessExecutor",
    "default_worker_count", "make_executor", "PlanCache",
    "SaliencyStore", "StoreClosed",
    "TRANSPORTS", "ShmArena", "ArenaClient", "TransportStats",
    "have_shared_memory", "resolve_transport",
    "pack_ctxs", "unpack_ctxs",
    "EngineSpec", "WorkerBatchError", "WorkerCrashed", "demo_spec",
]
