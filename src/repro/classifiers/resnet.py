"""The black-box classifier to be explained.

The paper trains a ResNet50 per dataset; at our 32x32 numpy scale we use
a small residual CNN with the same structural recipe (stem conv, stacked
residual stages with stride-2 transitions, global average pooling, linear
head).  The explainers treat it as a black box except where the baseline
method is intrinsically white-box (Grad-CAM/FullGrad need activations and
gradients, exactly as they do with ResNet50 in the paper).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from ..nn import functional as F


class _BasicBlock(nn.Module):
    """Residual block with optional stride-2 downsample projection."""

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 rng: np.random.Generator):
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, stride=stride,
                               padding=1, rng=rng)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, padding=1,
                               rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.proj = nn.Conv2d(in_channels, out_channels, 1, stride=stride,
                                  rng=rng)
        else:
            self.proj = None

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        h = self.bn1(self.conv1(x)).relu()
        h = self.bn2(self.conv2(h))
        skip = x if self.proj is None else self.proj(x)
        return (h + skip).relu()


class SmallResNet(nn.Module):
    """Residual CNN classifier; our stand-in for the paper's ResNet50.

    Exposes the hooks that white-box baselines need:

    * :meth:`forward_with_features` returns the final conv feature map
      (for Grad-CAM).
    * :attr:`bias_parameters` and :meth:`forward_with_all_features`
      support FullGrad's bias-gradient aggregation.
    """

    def __init__(self, num_classes: int, in_channels: int = 1,
                 width: int = 16, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.num_classes = num_classes
        self.stem = nn.Conv2d(in_channels, width, 3, padding=1, rng=rng)
        self.stem_bn = nn.BatchNorm2d(width)
        self.stage1 = _BasicBlock(width, width, stride=1, rng=rng)
        self.stage2 = _BasicBlock(width, width * 2, stride=2, rng=rng)
        self.stage3 = _BasicBlock(width * 2, width * 4, stride=2, rng=rng)
        self.head = nn.Linear(width * 4, num_classes, rng=rng)

    # ------------------------------------------------------------------
    def forward(self, x: nn.Tensor) -> nn.Tensor:
        feats = self._features(x)
        pooled = F.global_avg_pool2d(feats[-1])
        return self.head(pooled)

    def _features(self, x: nn.Tensor) -> List[nn.Tensor]:
        h0 = self.stem_bn(self.stem(x)).relu()
        h1 = self.stage1(h0)
        h2 = self.stage2(h1)
        h3 = self.stage3(h2)
        return [h0, h1, h2, h3]

    def forward_with_features(self, x: nn.Tensor):
        """Return (logits, last conv feature map) for Grad-CAM."""
        feats = self._features(x)
        pooled = F.global_avg_pool2d(feats[-1])
        return self.head(pooled), feats[-1]

    def features(self, x: nn.Tensor) -> nn.Tensor:
        """The last conv feature map only (Grad-CAM's trunk pass)."""
        return self._features(x)[-1]

    def head_from_features(self, feats: nn.Tensor) -> nn.Tensor:
        """Logits from a (possibly re-tracked) last-stage feature map.

        Lets Grad-CAM run the conv trunk under ``no_grad`` and restart
        the tape at the feature map: the backward pass then touches only
        the pooling + head, never the conv stack.
        """
        return self.head(F.global_avg_pool2d(feats))

    def forward_with_all_features(self, x: nn.Tensor):
        """Return (logits, all stage feature maps) for FullGrad."""
        feats = self._features(x)
        pooled = F.global_avg_pool2d(feats[-1])
        return self.head(pooled), feats

    # ------------------------------------------------------------------
    def predict_proba(self, images: np.ndarray,
                      batch_size: int = 64) -> np.ndarray:
        """Black-box inference API: images (N, C, H, W) -> probabilities."""
        # Restore the caller's mode instead of unconditionally flipping
        # to train(): a served (eval-mode) classifier stays eval, so
        # concurrent predict calls from executor workers never race one
        # thread's eval batches against another's train() restore (which
        # would switch BatchNorm to batch stats mid-sweep and corrupt
        # the shared running statistics).
        was_training = self.training
        self.eval()
        outputs = []
        with nn.no_grad():
            for start in range(0, len(images), batch_size):
                batch = nn.Tensor(images[start:start + batch_size])
                logits = self.forward(batch)
                outputs.append(F.softmax(logits, axis=-1).data)
        if was_training:
            self.train()
        return np.concatenate(outputs, axis=0)

    def predict(self, images: np.ndarray, batch_size: int = 64) -> np.ndarray:
        return self.predict_proba(images, batch_size).argmax(axis=1)
