"""Training loop for the black-box classifier."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import nn
from ..data import DataLoader, ImageDataset, random_horizontal_flip
from .resnet import SmallResNet


@dataclass
class TrainHistory:
    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)
    wall_time: float = 0.0


class ClassifierTrainer:
    """Adam training with the paper's augmentation (random horizontal flip)."""

    def __init__(self, model: SmallResNet, lr: float = 1e-3,
                 weight_decay: float = 1e-4,
                 rng: Optional[np.random.Generator] = None):
        self.model = model
        self.optimizer = nn.Adam(model.parameters(), lr=lr,
                                 weight_decay=weight_decay)
        self.rng = rng or np.random.default_rng()
        self.history = TrainHistory()

    def fit(self, dataset: ImageDataset, epochs: int = 5,
            batch_size: int = 16, augment: bool = True,
            verbose: bool = False) -> TrainHistory:
        loader = DataLoader(
            dataset, batch_size=batch_size, shuffle=True, rng=self.rng,
            augment=random_horizontal_flip if augment else None)
        start = time.perf_counter()
        self.model.train()
        for epoch in range(epochs):
            epoch_losses = []
            correct = 0
            seen = 0
            for images, labels in loader:
                logits = self.model(nn.Tensor(images))
                loss = nn.cross_entropy(logits, labels)
                self.model.zero_grad()
                loss.backward()
                self.optimizer.step()
                epoch_losses.append(loss.item())
                correct += int((logits.data.argmax(axis=1) == labels).sum())
                seen += len(labels)
            self.history.losses.append(float(np.mean(epoch_losses)))
            self.history.accuracies.append(correct / max(seen, 1))
            if verbose:
                print(f"epoch {epoch + 1}/{epochs} "
                      f"loss={self.history.losses[-1]:.4f} "
                      f"acc={self.history.accuracies[-1]:.3f}")
        self.history.wall_time = time.perf_counter() - start
        return self.history

    def evaluate(self, dataset: ImageDataset, batch_size: int = 64) -> float:
        pred = self.model.predict(dataset.images, batch_size)
        return float((pred == dataset.labels).mean())


def train_classifier(dataset: ImageDataset, epochs: int = 5,
                     width: int = 16, lr: float = 1e-3, seed: int = 0,
                     verbose: bool = False) -> SmallResNet:
    """Convenience: build and train a SmallResNet on ``dataset``."""
    model = SmallResNet(num_classes=dataset.num_classes,
                        in_channels=dataset.image_shape[0],
                        width=width, seed=seed)
    trainer = ClassifierTrainer(model, lr=lr,
                                rng=np.random.default_rng(seed))
    trainer.fit(dataset, epochs=epochs, verbose=verbose)
    model.eval()
    return model
