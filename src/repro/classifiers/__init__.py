"""``repro.classifiers`` — the black-box image classifier under explanation."""

from .resnet import SmallResNet
from .train import ClassifierTrainer, TrainHistory, train_classifier

__all__ = ["SmallResNet", "ClassifierTrainer", "TrainHistory",
           "train_classifier"]
