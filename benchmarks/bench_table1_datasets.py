"""Table I: dataset sizes per split (scaled from the paper's counts)."""

from common import BENCH_SCALE, format_table, write_result

from repro.config import TABLE1_COUNTS, TASKS
from repro.data import make_dataset, table1_counts


def test_table1_dataset_inventory(benchmark):
    rows = []
    for name in TABLE1_COUNTS:
        train_counts = table1_counts(name, "train",
                                     divisor=BENCH_SCALE.train_divisor)
        test_counts = table1_counts(name, "test",
                                    divisor=BENCH_SCALE.train_divisor)
        paper = TABLE1_COUNTS[name]
        rows.append((
            name,
            f"{paper['train_normal']}/{paper['train_abnormal']}",
            f"{paper['test_normal']}/{paper['test_abnormal']}",
            f"{train_counts[0]}/{sum(v for k, v in train_counts.items() if k)}",
            f"{test_counts[0]}/{sum(v for k, v in test_counts.items() if k)}",
            TASKS[name],
        ))
    text = format_table(
        "Table I — image counts (normal/abnormal), paper vs scaled repro "
        f"(divisor {BENCH_SCALE.train_divisor})",
        ("dataset", "paper train", "paper test", "repro train",
         "repro test", "task"),
        rows)
    write_result("table1_datasets", text)

    # Benchmark: generating one small dataset from scratch.
    benchmark(lambda: make_dataset("brain_tumor1", "train", image_size=32,
                                   seed=0, counts={0: 8, 1: 8}))
