"""Table V: wall time per saliency map for every method.

The paper measures 100 brain images; the architectural ordering is what
matters — per-image-optimisation methods (StyLEx) and dense perturbation
methods (LIME) are orders of magnitude slower than the single-decode
methods (CAE, ICAM, LAGAN, TS-CAM).  With the batched-first contract the
table reports two columns: classic per-image latency and the batched
(serving-path) cost per map, which is the new headline number.
"""

import pytest

from common import engine_kwargs, format_table, get_context, write_result

from repro.eval import time_all_methods_batched
from repro.explain import TABLE2_METHODS

DATASET = "brain_tumor1"      # the paper times brain images
N_IMAGES = 5


def test_table5_saliency_time(benchmark):
    ctx = get_context(DATASET)
    suite = ctx.suite()
    images, labels, __ = ctx.sample_test_images(N_IMAGES,
                                                abnormal_only=True)
    # Engine-backed column: cost per map through the serving runtime
    # (cold cache), plus a warm re-sweep that should be ~pure cache.
    engine = ctx.engine(max_batch=16, **engine_kwargs())
    times = time_all_methods_batched(suite.explainers, images, labels,
                                     engine=engine)
    from repro.eval import served_saliency_time_ms
    warm = {name: served_saliency_time_ms(engine, name, images, labels)
            for name in times}

    rows = [(name, f"{times[name].per_image_ms:.1f}",
             f"{times[name].batched_ms:.1f}",
             f"{times[name].speedup:.1f}x",
             f"{times[name].served_ms:.1f}",
             f"{warm[name]:.2f}")
            for name in TABLE2_METHODS if name in times]
    text = format_table(
        f"Table V — time per saliency map (ms, {N_IMAGES} brain images)",
        ("method", "ms/map", "batched ms/map", "speedup",
         "served ms/map", "served warm ms/map"), rows)
    write_result("table5_saliency_time", text)
    stats = engine.stats()
    print(f"[serve] cache hits {stats['cache_hits']}, "
          f"misses {stats['cache_misses']}, "
          f"batches {stats['batches_run']}")

    # Benchmark the CAE explainer (the paper's fastest method).
    cae = suite["cae"]
    benchmark(lambda: cae.explain(images[0], int(labels[0])))

    # Shape checks: dense perturbation (LIME) is orders of magnitude
    # slower than the single-decode methods, as in the paper.  (StyLEx's
    # per-image optimisation cost depends on how quickly each image
    # flips, so we report it rather than asserting it.)
    assert times["lime"].per_image_ms > 5 * times["cae"].per_image_ms
    assert times["lime"].per_image_ms > 5 * times["gradcam"].per_image_ms
    print(f"[shape] stylex {times['stylex'].per_image_ms:.0f}ms vs cae "
          f"{times['cae'].per_image_ms:.0f}ms per map; batched gradcam "
          f"{times['gradcam'].speedup:.1f}x cheaper than per-image")
