"""Table V: average wall time per saliency map for every method.

The paper measures 100 brain images; the architectural ordering is what
matters — per-image-optimisation methods (StyLEx) and dense perturbation
methods (LIME) are orders of magnitude slower than the single-decode
methods (CAE, ICAM, LAGAN, TS-CAM).
"""

import pytest

from common import format_table, get_context, write_result

from repro.eval import time_all_methods
from repro.explain import TABLE2_METHODS

DATASET = "brain_tumor1"      # the paper times brain images
N_IMAGES = 5


def test_table5_saliency_time(benchmark):
    ctx = get_context(DATASET)
    suite = ctx.suite()
    images, labels, __ = ctx.sample_test_images(N_IMAGES,
                                                abnormal_only=True)
    times = time_all_methods(suite.explainers, images, labels)

    rows = [(name, f"{times[name]:.1f}")
            for name in TABLE2_METHODS if name in times]
    text = format_table(
        f"Table V — avg time per saliency map (ms, {N_IMAGES} brain images)",
        ("method", "ms/map"), rows)
    write_result("table5_saliency_time", text)

    # Benchmark the CAE explainer (the paper's fastest method).
    cae = suite["cae"]
    benchmark(lambda: cae.explain(images[0], int(labels[0])))

    # Shape checks: dense perturbation (LIME) is orders of magnitude
    # slower than the single-decode methods, as in the paper.  (StyLEx's
    # per-image optimisation cost depends on how quickly each image
    # flips, so we report it rather than asserting it.)
    assert times["lime"] > 5 * times["cae"]
    assert times["lime"] > 5 * times["gradcam"]
    print(f"[shape] stylex {times['stylex']:.0f}ms vs cae "
          f"{times['cae']:.0f}ms per map")
