"""Per-method single-vs-batched explainer micro-benchmark.

Times every Table II method (plus occlusion) producing saliency maps for
a batch of brain-dataset images two ways — a per-image ``explain`` loop
and one ``explain_batch`` call — and writes machine-readable results to
``BENCH_explainers.json`` at the repo root.  The recorded
``speedup_batched`` per method is the Table V headline the batched-first
contract exists for: batched Grad-CAM/FullGrad must stay >= 3x at the
smoke scale.  Plan-eligible methods additionally record
``plan_ms_per_map`` — the per-map cost of replaying a compiled
execution plan (:mod:`repro.nn.plan`) against the same batch — and
``speedup_plan`` (batched-tape over plan-replay; the serving hot path's
win, >= 1.5x for Grad-CAM/FullGrad at smoke scale).

Runs at the brain dataset smoke scale (16x16, width-8 classifier,
untrained weights — explainer cost is architecture-bound, not
weight-bound)::

    PYTHONPATH=src python benchmarks/bench_explainers.py --label current
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from typing import Dict

import numpy as np

from repro.classifiers import SmallResNet
from repro.config import ReproConfig
from repro.core.model import CAEModel
from repro.data import make_dataset
from repro.explain import (CAEExplainer, FullGradExplainer, GradCAMExplainer,
                           ICAMExplainer, ICAMRegModel, LAGANExplainer,
                           LimeExplainer, MaskGenerator, OcclusionExplainer,
                           LatentAutoencoder, PatchAttentionClassifier,
                           SimpleFullGradExplainer, SmoothFullGradExplainer,
                           StylexExplainer, TSCAMExplainer)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_explainers.json")

IMAGE_SIZE = 16
WIDTH = 8


def build_explainers(images: np.ndarray, labels: np.ndarray,
                     only=None) -> Dict[str, object]:
    """The method suite on untrained smoke-scale models.

    Lazy per-method factories: ``only`` skips construction entirely for
    unselected methods (ICAM/CAE manifold builds are full encoder sweeps
    a smoke run shouldn't pay for)."""
    from repro.data.base import ImageDataset

    dataset = ImageDataset(images, labels)
    classifier = SmallResNet(dataset.num_classes, dataset.image_shape[0],
                             width=WIDTH, seed=0)
    config = ReproConfig(image_size=IMAGE_SIZE, base_channels=8, seed=0)

    def make_icam():
        icam = ICAMRegModel(dataset.num_classes, config)
        return ICAMExplainer(icam, icam.build_manifold(dataset),
                             dataset.num_classes)

    def make_cae():
        cae = CAEModel(dataset.num_classes, config)
        return CAEExplainer(cae, cae.build_manifold(dataset), classifier,
                            steps=8)

    factories = {
        "lime": lambda: LimeExplainer(classifier, grid=4, n_samples=100,
                                      seed=0),
        "occlusion": lambda: OcclusionExplainer(classifier, window=4,
                                                stride=2),
        "gradcam": lambda: GradCAMExplainer(classifier),
        "fullgrad": lambda: FullGradExplainer(classifier),
        "simple_fullgrad": lambda: SimpleFullGradExplainer(classifier),
        "smooth_fullgrad": lambda: SmoothFullGradExplainer(classifier,
                                                           n_samples=4),
        "tscam": lambda: TSCAMExplainer(PatchAttentionClassifier(
            dataset.num_classes, dataset.image_shape[0],
            image_size=IMAGE_SIZE, dim=8)),
        "stylex": lambda: StylexExplainer(
            LatentAutoencoder(dataset.image_shape[0], IMAGE_SIZE),
            classifier, steps=8),
        "lagan": lambda: LAGANExplainer(MaskGenerator(dataset.image_shape[0]),
                                        classifier),
        "icam": make_icam,
        "cae": make_cae,
    }
    if only:
        unknown = set(only) - set(factories)
        if unknown:
            raise SystemExit(f"unknown methods: {sorted(unknown)}")
        factories = {name: fn for name, fn in factories.items()
                     if name in only}
    return {name: fn() for name, fn in factories.items()}


def time_method(explainer, images: np.ndarray, labels: np.ndarray,
                repeats: int) -> Dict[str, float]:
    """Median per-image ms for the explain loop vs one explain_batch,
    plus (for plan-eligible methods) per-map compiled-plan replay time."""
    explainer.explain_batch(images[:2], labels[:2])     # warmup
    n = len(images)

    singles = []
    for _ in range(repeats):
        start = time.perf_counter()
        for i in range(n):
            explainer.explain(images[i], int(labels[i]))
        singles.append((time.perf_counter() - start) / n)
    batched = []
    for _ in range(repeats):
        start = time.perf_counter()
        explainer.explain_batch(images, labels)
        batched.append((time.perf_counter() - start) / n)

    single_ms = float(np.median(singles)) * 1000.0
    batched_ms = float(np.median(batched)) * 1000.0
    out = {
        "single_ms_per_image": round(single_ms, 4),
        "batched_ms_per_image": round(batched_ms, 4),
        "speedup_batched": round(single_ms / batched_ms, 2)
        if batched_ms > 0 else float("inf"),
    }

    if getattr(explainer, "plan_eligible", False):
        # Compiled-plan replay: compile once (off the clock — serving
        # amortizes it over thousands of replays), then time replays of
        # the same (shape, dtype) key against the tape's batched path.
        plan = explainer.compile_plan(images, labels)
        explainer.explain_batch_planned(plan, images, labels)   # warmup
        planned = []
        for _ in range(repeats):
            start = time.perf_counter()
            explainer.explain_batch_planned(plan, images, labels)
            planned.append((time.perf_counter() - start) / n)
        plan_ms = float(np.median(planned)) * 1000.0
        out["plan_ms_per_map"] = round(plan_ms, 4)
        out["speedup_plan"] = round(batched_ms / plan_ms, 2) \
            if plan_ms > 0 else float("inf")
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="current",
                        help="entry name in the JSON (seed | current | ...)")
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--batch", type=int, default=16)
    parser.add_argument("--only", nargs="+",
                        help="run a subset of methods")
    args = parser.parse_args()

    dataset = make_dataset("brain_tumor1", "train", image_size=IMAGE_SIZE,
                           seed=0, counts={0: args.batch, 1: args.batch})
    idx = np.argsort(np.tile(np.arange(args.batch), 2),
                     kind="stable")[:args.batch]
    images = dataset.images[idx]                 # interleave both classes
    labels = dataset.labels[idx]

    explainers = build_explainers(dataset.images, dataset.labels,
                                  only=args.only)
    results = {}
    for name, explainer in explainers.items():
        results[name] = time_method(explainer, images, labels, args.repeats)
        plan = ""
        if "plan_ms_per_map" in results[name]:
            plan = (f"   plan {results[name]['plan_ms_per_map']:8.2f} ms/map"
                    f" ({results[name]['speedup_plan']:.1f}x)")
        print(f"{name:>16}: single {results[name]['single_ms_per_image']:8.2f}"
              f" ms/img   batched {results[name]['batched_ms_per_image']:8.2f}"
              f" ms/img   ({results[name]['speedup_batched']:.1f}x){plan}")

    doc = {}
    if os.path.exists(args.out):
        with open(args.out) as fh:
            doc = json.load(fh)
    entry = doc.setdefault(args.label, {})
    entry.update({
        "results": {**entry.get("results", {}), **results},
        "batch_size": args.batch,
        "image_size": IMAGE_SIZE,
        "classifier_width": WIDTH,
        "python": platform.python_version(),
        "numpy": np.__version__,
    })
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
