"""Shared infrastructure for the table/figure benchmarks.

Every benchmark pulls its trained models from a disk-cached
:class:`~repro.eval.ExperimentContext` (cache dir ``.repro_cache`` at the
repo root), so the expensive training happens once per dataset across the
whole ``pytest benchmarks/ --benchmark-only`` run.  Result tables are
printed and written under ``benchmarks/results/``.

Scale knobs honour ``REPRO_BENCH_DIVISOR`` / ``REPRO_BENCH_ITER`` /
``REPRO_BENCH_DATASETS`` environment variables for larger runs;
``REPRO_SERVE_EXECUTOR`` / ``REPRO_SERVE_WORKERS`` pick the serving
executor (``serial`` / ``threaded`` / ``process``) the engine-backed
reproduction sweeps (Table II / Table V) run on.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, Tuple

from repro.config import DATASET_NAMES
from repro.eval import ExperimentContext, ExperimentScale

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CACHE_DIR = os.path.join(REPO_ROOT, ".repro_cache")
RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")

#: Datasets the benchmarks sweep; override with REPRO_BENCH_DATASETS.
BENCH_DATASETS: Tuple[str, ...] = tuple(
    os.environ.get("REPRO_BENCH_DATASETS",
                   ",".join(DATASET_NAMES)).split(","))

BENCH_SCALE = ExperimentScale(
    image_size=32,
    train_divisor=int(os.environ.get("REPRO_BENCH_DIVISOR", 100)),
    classifier_epochs=10,
    classifier_width=12,
    cae_iterations=int(os.environ.get("REPRO_BENCH_ITER", 250)),
    aux_epochs=3,
    base_channels=8,
    seed=0,
)

#: Number of test images evaluated per dataset in Table II / Table V.
N_EVAL_IMAGES = int(os.environ.get("REPRO_BENCH_IMAGES", 6))

#: Patch-coverage settings: 3x3 patches on 32x32 inputs cover the same
#: per-patch area fraction as the paper's 7x7 patches on 256x256.
PATCH = 3
N_PATCHES = 20


@lru_cache(maxsize=None)
def get_context(dataset: str) -> ExperimentContext:
    """Cached experiment context for one dataset."""
    return ExperimentContext(dataset, BENCH_SCALE, cache_dir=CACHE_DIR)


def engine_kwargs() -> Dict[str, object]:
    """Executor selection for the engine-backed sweeps, from the
    ``REPRO_SERVE_EXECUTOR`` (serial | threaded | process),
    ``REPRO_SERVE_WORKERS``, and ``REPRO_SERVE_STORE`` (persistent
    saliency-store directory: set it to serve repeat sweeps warm across
    bench invocations) environment variables — pass as
    ``ctx.engine(..., **engine_kwargs())``.  Defaults to the serial
    executor (deterministic, zero overhead) and no store."""
    kwargs: Dict[str, object] = {}
    executor = os.environ.get("REPRO_SERVE_EXECUTOR")
    if executor:
        kwargs["executor"] = executor
    workers = os.environ.get("REPRO_SERVE_WORKERS")
    if workers:
        kwargs["workers"] = int(workers)
    store = os.environ.get("REPRO_SERVE_STORE")
    if store:
        kwargs["store"] = store
    return kwargs


def write_result(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text)
    print(f"\n{text}\n[written to {path}]")


def format_table(title: str, headers, rows) -> str:
    """Fixed-width ASCII table matching the paper's table layout."""
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows),
                                   default=0))
              for i, h in enumerate(headers)]
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    lines = [title, fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)
