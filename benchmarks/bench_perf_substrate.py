"""Micro-benchmarks for the repro.nn performance substrate.

Times the hot paths the perf PRs optimise — conv forward/backward, a
full ``bbcfe_step``, and an occlusion saliency sweep — and writes
machine-readable results to ``BENCH_substrate.json`` at the repo root so
successive PRs accumulate a perf trajectory.

The script runs unmodified on older revisions (it feature-detects
``nn.no_grad``), which is how the seed baseline was recorded::

    PYTHONPATH=src python benchmarks/bench_perf_substrate.py --label current
    # in a checkout of the seed commit:
    PYTHONPATH=<seed>/src python benchmarks/bench_perf_substrate.py \
        --label seed --out <here>/BENCH_substrate.json

When both ``seed`` and ``current`` entries exist the script reports the
speedup per benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from typing import Callable, Dict

import numpy as np

from repro import nn
from repro.config import ReproConfig
from repro.classifiers import SmallResNet
from repro.core.bbcfe import PairSampler, bbcfe_step
from repro.core.model import CAEModel
from repro.data import ImageDataset
from repro.explain.occlusion import OcclusionExplainer
from repro.nn import functional as F

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_substrate.json")

NO_GRAD = getattr(nn, "no_grad", None)          # absent in the seed
# Default engine dtype (float64 on the seed, where nn does not export it).
DTYPE = getattr(nn, "get_default_dtype", lambda: np.float64)()


def _timeit(fn: Callable[[], None], repeats: int, warmup: int = 1) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeats`` runs."""
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def bench_conv_forward(repeats: int) -> float:
    rng = np.random.default_rng(0)
    x = nn.Tensor(rng.standard_normal((16, 8, 32, 32)).astype(DTYPE))
    w = nn.Tensor(rng.standard_normal((16, 8, 3, 3)).astype(DTYPE))
    b = nn.Tensor(rng.standard_normal(16).astype(DTYPE))

    def run() -> None:
        F.conv2d(x, w, b, stride=1, padding=1)
    return _timeit(run, repeats)


def bench_conv_backward(repeats: int) -> float:
    rng = np.random.default_rng(0)
    x = nn.Tensor(rng.standard_normal((16, 8, 32, 32)).astype(DTYPE),
                  requires_grad=True)
    w = nn.Tensor(rng.standard_normal((16, 8, 3, 3)).astype(DTYPE),
                  requires_grad=True)
    b = nn.Tensor(rng.standard_normal(16).astype(DTYPE), requires_grad=True)

    def run() -> None:
        x.grad = w.grad = b.grad = None
        (F.conv2d(x, w, b, stride=1, padding=1) ** 2).sum().backward()
    return _timeit(run, repeats)


def _tiny_dataset(n_per_class: int = 16, size: int = 32) -> ImageDataset:
    rng = np.random.default_rng(0)
    images = rng.random((2 * n_per_class, 1, size, size))
    labels = np.repeat(np.arange(2), n_per_class)
    return ImageDataset(images, labels)


def bench_bbcfe_step(repeats: int) -> float:
    dataset = _tiny_dataset()
    config = ReproConfig(image_size=32, base_channels=8, seed=0)
    model = CAEModel(num_classes=2, config=config)
    gen_params = model.encoder.parameters() + model.decoder.parameters()
    gen_opt = nn.Adam(gen_params, lr=config.lr)
    disc_opt = nn.Adam(model.discriminator.parameters(), lr=config.lr)
    sampler = PairSampler(dataset, rng=np.random.default_rng(0))

    def run() -> None:
        bbcfe_step(model.encoder, model.decoder, model.discriminator,
                   gen_opt, disc_opt, sampler, batch_size=8,
                   weights=config.loss_weights)
    return _timeit(run, repeats)


def bench_occlusion_sweep(repeats: int) -> float:
    dataset = _tiny_dataset(n_per_class=4)
    classifier = SmallResNet(num_classes=2, width=8, seed=0)
    explainer = OcclusionExplainer(classifier, window=5, stride=2)
    images = dataset.images[:4]
    labels = dataset.labels[:4]

    def run() -> None:
        if hasattr(explainer, "explain_batch"):
            explainer.explain_batch(images, labels)
        else:
            for image, label in zip(images, labels):
                explainer.explain(image, int(label))
    return _timeit(run, repeats)


BENCHES: Dict[str, Callable[[int], float]] = {
    "conv_forward": bench_conv_forward,
    "conv_backward": bench_conv_backward,
    "bbcfe_step": bench_bbcfe_step,
    "occlusion_sweep": bench_occlusion_sweep,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="current",
                        help="entry name in the JSON (seed | current | ...)")
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--only", nargs="*", choices=sorted(BENCHES),
                        help="run a subset of benchmarks")
    args = parser.parse_args()

    results = {}
    for name, fn in BENCHES.items():
        if args.only and name not in args.only:
            continue
        seconds = fn(args.repeats)
        results[name] = {"seconds": seconds}
        print(f"{name:>16}: {seconds * 1000:8.1f} ms")

    doc = {}
    if os.path.exists(args.out):
        with open(args.out) as fh:
            doc = json.load(fh)
    entry = doc.setdefault(args.label, {})
    entry.update({
        "results": {**entry.get("results", {}), **results},
        "default_dtype": str(np.dtype(DTYPE)),
        "inference_mode": NO_GRAD is not None,
        "python": platform.python_version(),
        "numpy": np.__version__,
    })

    if "seed" in doc and "current" in doc:
        speedups = {}
        for name, cur in doc["current"]["results"].items():
            base = doc["seed"]["results"].get(name)
            if base:
                speedups[name] = round(base["seconds"] / cur["seconds"], 2)
        doc["speedup_vs_seed"] = speedups
        print("speedup vs seed:", speedups)

    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
