"""Admission-control micro-benchmark: overload, eviction, adaptivity.

Exercises the admission-controlled ``repro.serve`` runtime and writes an
``admission`` section into ``BENCH_serve.json`` (next to the throughput/
dedup/shard numbers ``bench_serve.py`` records for the same label):

* **Bounded-queue overload** — N distinct requests flood an engine whose
  ``max_pending`` is far below N, once per admission policy.  Under
  ``policy="block"`` every request is served and the producer's total
  blocked time is recorded; under ``policy="reject"`` the overflow
  raises ``EngineOverloaded`` and the run records the admitted/rejected
  split.  Both report the *served* rate (requests actually resolved per
  second — a rejected request does no work and must not inflate a
  throughput headline) next to the offered rate.
* **Eviction under pressure** — a skewed-cost trace (a small hot set of
  expensive maps revisited every round while unique cheap maps flood
  the cache) replayed against ``eviction="lru"`` and ``"cost"``.  The
  headline is the *weighted* (cost-adjusted) hit rate: the fraction of
  requested compute-milliseconds served from cache.  The run verifies
  the cost policy beats LRU on it.
* **Adaptive batch limits** — a cheap and an expensive method stream
  through one ``min_batch`` engine; the recorded per-queue limits show
  the cheap queue ramped to ``max_batch`` while the expensive queue
  stayed at the floor.

Costs come from stub explainers with deterministic per-map sleeps (the
dynamics under test are the runtime's, not the models'), so the run is
seconds, not minutes::

    PYTHONPATH=src python benchmarks/bench_admission.py --label current
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

import numpy as np

from repro.explain.base import Explainer, SaliencyResult
from repro.serve import EngineOverloaded, ExplainEngine, ThreadedExecutor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_serve.json")


class SleepStub(Explainer):
    """Deterministic-cost explainer: ``sleep_ms`` per map, counted."""

    needs_gradients = False

    def __init__(self, name: str, sleep_ms: float):
        self.name = name
        self.sleep_ms = sleep_ms
        self.computed = 0

    def explain_batch(self, images, labels, target_labels=None):
        if self.sleep_ms:
            time.sleep(self.sleep_ms * len(images) / 1000.0)
        self.computed += len(images)
        return [SaliencyResult(np.zeros(images.shape[2:]), int(y))
                for y in labels]


def _img(i: int) -> np.ndarray:
    return np.full((1, 8, 8), float(i), dtype=np.float32)


# ----------------------------------------------------------------------
def overload_run(policy: str, requests: int, max_pending: int,
                 workers: int) -> dict:
    """Flood one bounded engine with distinct requests; returns the
    admitted/rejected/blocked accounting plus end-to-end req/s."""
    stub = SleepStub("stub", sleep_ms=1.0)
    engine = ExplainEngine(None, {"stub": stub}, max_batch=4,
                           max_pending=max_pending, policy=policy,
                           cache_size=2 * requests,
                           executor=ThreadedExecutor(workers=workers))
    rejected = 0
    start = time.perf_counter()
    with engine:
        for i in range(requests):
            try:
                engine.submit_async(_img(i), 0, "stub")
            except EngineOverloaded:
                rejected += 1
        engine.drain()
        elapsed = time.perf_counter() - start
        stats = engine.stats()
    admitted = requests - rejected
    if stats["requests_served"] != admitted:
        raise SystemExit(
            f"{policy}: served {stats['requests_served']} of {admitted} "
            "admitted requests (handles were stranded)")
    if policy == "block" and rejected:
        raise SystemExit("block policy must never reject")
    return {
        "policy": policy,
        "requests": requests,
        "max_pending": max_pending,
        "admitted": admitted,
        "rejected": rejected,
        "served_rps": round(admitted / elapsed, 1),
        "offered_rps": round(requests / elapsed, 1),
        "blocked_submits": stats["admission_blocked"],
        "blocked_ms_total": stats["admission_blocked_ms"],
        "batches_run": stats["batches_run"],
    }


# ----------------------------------------------------------------------
def eviction_run(eviction: str, rounds: int, hot: int, flood: int,
                 cache_size: int, pricey_ms: float,
                 cheap_ms: float) -> dict:
    """Replay the skewed-cost trace against one eviction policy.

    Per round: two passes over the hot expensive set (the second pass
    can hit cache even under LRU), then a flood of never-repeated cheap
    maps that overflows the cache.  Weighted hit rate charges each
    request its method's nominal per-map cost.
    """
    pricey = SleepStub("pricey", pricey_ms)
    cheap = SleepStub("cheap", cheap_ms)
    engine = ExplainEngine(None, {"pricey": pricey, "cheap": cheap},
                           max_batch=4, cache_size=cache_size,
                           cache_shards=1, eviction=eviction)
    total = 0
    serial = 0
    for _ in range(rounds):
        for _pass in range(2):
            for i in range(hot):
                engine.explain(_img(i), 0, "pricey")
                total += 1
        for _ in range(flood):
            serial += 1
            engine.explain(_img(10_000 + serial), 0, "cheap")
            total += 1
    # The cache's own accounting (measured per-map costs) replaces the
    # nominal-cost recomputation this section used to do by hand.
    stats = engine.stats()
    return {
        "eviction": eviction,
        "requests": total,
        "pricey_computed": pricey.computed,
        "cheap_computed": cheap.computed,
        "hit_rate": round(stats["hit_rate"], 4),
        "weighted_hit_rate": round(stats["weighted_hit_rate"], 4),
    }


# ----------------------------------------------------------------------
def adaptive_run(cheap_requests: int, pricey_requests: int) -> dict:
    """Stream a cheap and an expensive method through one adaptive
    engine; returns the settled per-queue batch limits."""
    cheap = SleepStub("cheap", 0.0)
    pricey = SleepStub("pricey", 4.0)
    engine = ExplainEngine(None, {"cheap": cheap, "pricey": pricey},
                           max_batch=32, min_batch=1, target_batch_ms=6.0,
                           cache_size=4 * (cheap_requests
                                           + pricey_requests))
    for i in range(cheap_requests):
        engine.submit_async(_img(i), 0, "cheap")
    for i in range(pricey_requests):
        engine.submit_async(_img(i), 0, "pricey")
    engine.drain()
    stats = engine.stats()
    limits = stats["batch_limits"]
    cheap_limit = limits.get("cheap@1x8x8", 1)
    pricey_limit = limits.get("pricey@1x8x8", 1)
    if cheap_limit <= pricey_limit:
        raise SystemExit(
            f"adaptive limits did not diverge: cheap {cheap_limit} vs "
            f"pricey {pricey_limit}")
    return {
        "target_batch_ms": 6.0,
        "min_batch": 1,
        "max_batch": 32,
        "batch_limits": limits,
        "batches_run": stats["batches_run"],
        "requests": cheap_requests + pricey_requests,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="current",
                        help="entry name in the JSON (seed | current | ...)")
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--requests", type=int, default=96,
                        help="overload-section request count")
    parser.add_argument("--max-pending", type=int, default=16)
    parser.add_argument("--workers", type=int,
                        default=max(2, min(4, os.cpu_count() or 1)))
    parser.add_argument("--rounds", type=int, default=6,
                        help="eviction-trace rounds")
    args = parser.parse_args()

    overload = {policy: overload_run(policy, args.requests,
                                     args.max_pending, args.workers)
                for policy in ("block", "reject")}
    blk, rej = overload["block"], overload["reject"]
    print(f"overload ({args.requests} reqs, max_pending="
          f"{args.max_pending}):")
    print(f"  block : {blk['served_rps']:7.1f} served/s, all served, "
          f"{blk['blocked_submits']} submits blocked "
          f"{blk['blocked_ms_total']:.0f} ms total")
    print(f"  reject: {rej['served_rps']:7.1f} served/s "
          f"({rej['offered_rps']:.0f} offered/s), "
          f"{rej['admitted']} admitted / {rej['rejected']} rejected")

    eviction = {policy: eviction_run(policy, rounds=args.rounds, hot=4,
                                     flood=32, cache_size=32,
                                     pricey_ms=25.0, cheap_ms=0.2)
                for policy in ("lru", "cost")}
    lru, cost = eviction["lru"], eviction["cost"]
    if cost["weighted_hit_rate"] <= lru["weighted_hit_rate"]:
        raise SystemExit(
            f"cost-aware eviction did not beat LRU on the skewed-cost "
            f"trace: {cost['weighted_hit_rate']} <= "
            f"{lru['weighted_hit_rate']}")
    print(f"eviction under pressure ({lru['requests']} reqs, skewed "
          "costs):")
    for name, row in eviction.items():
        print(f"  {name:4s}: weighted hit rate "
              f"{row['weighted_hit_rate']:.1%} (plain {row['hit_rate']:.1%},"
              f" pricey recomputed {row['pricey_computed']}x)")

    adaptive = adaptive_run(cheap_requests=64, pricey_requests=16)
    print(f"adaptive batch limits: {adaptive['batch_limits']} "
          f"({adaptive['batches_run']} batches for "
          f"{adaptive['requests']} requests)")

    doc = {}
    if os.path.exists(args.out):
        with open(args.out) as fh:
            doc = json.load(fh)
    doc.setdefault(args.label, {})["admission"] = {
        "overload": overload,
        "eviction_under_pressure": eviction,
        "adaptive_batching": adaptive,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
