"""SLO load harness: tail latency per priority class under open-loop load.

Drives the ``repro.serve`` engine with the traffic shape the request-
context layer exists for — mixed priority classes, deadlines, and
tenants arriving *open-loop* (arrivals do not wait for completions, so
queueing delay is real, not masked by a closed feedback loop) — and
writes per-class latency percentiles into the ``slo`` section of
``BENCH_serve.json``:

* **Calibration** — a closed-loop warm-up measures this machine's serve
  capacity (req/s) for the mixed-method workload; the open-loop trace
  then offers ``--load`` (default 0.7) of that, so the harness stresses
  queueing without collapsing into unbounded backlog, on any hardware.
* **Trace** — Poisson (exponential inter-arrival) ``interactive`` and
  ``normal`` traffic over mixed methods, two image shapes, and rotating
  tenants, plus ``bulk`` arriving in periodic *bursts* (a Table-style
  sweep dumping a chunk of work at once).  Interactive requests carry a
  deadline; the same seeded trace replays for every engine variant.
* **A/B** — the identical trace runs with ``priority=True`` and
  ``priority=False`` (legacy insertion-order flush).  Per-class
  p50/p95/p99 (from each request's ``RequestContext`` stage stamps),
  deadline-miss rate, and served throughput are recorded for both.

Two gates fail the run (exit nonzero) unless ``--no-gate``:

* ``interactive_p95_ms`` must be **strictly lower** than
  ``bulk_p95_ms`` with priority on — the point of class-aware flushing.
* Priority-on served throughput must be within 10% of priority-off —
  ordering must not cost capacity.

The recorded ``*_p95_ms``/``*_p99_ms`` keys gate in CI against the
committed baseline via ``tools/check_bench.py`` (time semantics: lower
is better), so a scheduling regression that fattens the interactive
tail fails the job even when mean throughput looks fine::

    PYTHONPATH=src python benchmarks/bench_slo.py --label current
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

import numpy as np

from repro.serve import (DeadlineExceeded, ExplainEngine, RequestContext,
                         ThreadedExecutor, demo_spec)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_serve.json")

WIDTH = 8
METHODS = ("gradcam", "fullgrad")
SIDES = (16, 24)                       # two shapes -> distinct queues
TENANTS = ("acme", "globex", "initech")

#: Class mix of the open-loop portion (bulk arrives separately, in
#: bursts, on top of this).
POISSON_MIX = (("interactive", 0.35), ("normal", 0.65))
BULK_FRACTION = 0.3                    # of total trace volume


def build_images(rng: np.random.Generator, n: int, in_channels: int):
    """Distinct noise images (no cache hits: every request costs
    compute, so queueing is the phenomenon under test), alternating
    between the two shapes."""
    return [rng.standard_normal((in_channels, side, side))
            .astype(np.float32)
            for i in range(n) for side in (SIDES[i % len(SIDES)],)]


def build_trace(rng: np.random.Generator, n: int, offered_rps: float,
                deadline_ms: float):
    """Seeded arrival schedule: ``[(t, priority, tenant, method,
    img_idx, timeout_ms)]`` sorted by arrival time ``t`` (seconds from
    trace start).  Poisson interactive/normal plus bulk bursts."""
    n_bulk = int(n * BULK_FRACTION)
    n_poisson = n - n_bulk
    duration = n_poisson / (offered_rps * (1.0 - BULK_FRACTION))

    trace = []
    t = 0.0
    classes, weights = zip(*POISSON_MIX)
    for i in range(n_poisson):
        t += rng.exponential(1.0 / (offered_rps * (1.0 - BULK_FRACTION)))
        cls = classes[rng.choice(len(classes), p=weights)]
        timeout = deadline_ms if cls == "interactive" else None
        trace.append((t, cls, TENANTS[i % len(TENANTS)],
                      METHODS[i % len(METHODS)], i, timeout))
    # Bulk bursts: a few sweep-style dumps spread over the trace, each
    # depositing its whole chunk at one instant.
    n_bursts = max(1, min(4, n_bulk // 8))
    per_burst = n_bulk // n_bursts
    idx = n_poisson
    for b in range(n_bursts):
        t_burst = duration * (b + 0.5) / n_bursts
        for j in range(per_burst if b < n_bursts - 1
                       else n_bulk - per_burst * (n_bursts - 1)):
            trace.append((t_burst, "bulk", TENANTS[idx % len(TENANTS)],
                          METHODS[idx % len(METHODS)], idx, None))
            idx += 1
    trace.sort(key=lambda item: item[0])
    return trace


def make_engine(num_classes, in_channels, priority: bool, workers: int,
                max_batch: int):
    spec = demo_spec(METHODS, num_classes=num_classes,
                     in_channels=in_channels, width=WIDTH)
    classifier, explainers = spec.materialize()
    return ExplainEngine(classifier, explainers, max_batch=max_batch,
                         max_delay_ms=5.0, cache_size=16,
                         executor=ThreadedExecutor(workers=workers),
                         priority=priority)


def calibrate(num_classes, in_channels, images, workers, max_batch,
              n: int) -> float:
    """Closed-loop capacity (req/s): how fast this machine serves the
    mixed workload when arrivals never outpace completions."""
    engine = make_engine(num_classes, in_channels, True, workers,
                         max_batch)
    try:
        start = time.perf_counter()
        for i in range(n):
            engine.submit_async(images[i % len(images)], 0,
                                METHODS[i % len(METHODS)])
        engine.drain()
        return n / (time.perf_counter() - start)
    finally:
        engine.close()


def run_trace(trace, images, num_classes, in_channels, priority: bool,
              workers: int, max_batch: int) -> dict:
    """Replay one seeded trace open-loop; returns per-class latencies,
    deadline misses, and served throughput."""
    engine = make_engine(num_classes, in_channels, priority, workers,
                         max_batch)
    submitted = []                     # (handle, ctx, priority_class)
    try:
        start = time.monotonic()
        for t, cls, tenant, method, img_idx, timeout_ms in trace:
            now = time.monotonic() - start
            if t > now:
                time.sleep(t - now)
            if timeout_ms is not None:
                ctx = RequestContext.with_timeout(
                    timeout_ms, priority=cls, tenant=tenant)
            else:
                ctx = RequestContext(priority=cls, tenant=tenant)
            handle = engine.submit_async(images[img_idx], 0, method,
                                         ctx=ctx)
            submitted.append((handle, ctx, cls))
            engine.kick()              # open loop: dispatch ready queues
        engine.drain()
        elapsed = time.monotonic() - start
        stats = engine.stats()
    finally:
        engine.close()

    latencies = {cls: [] for cls, _ in POISSON_MIX}
    latencies["bulk"] = []
    misses = deadlined = 0
    for handle, ctx, cls in submitted:
        try:
            handle.result()
        except DeadlineExceeded:
            misses += 1
            if ctx.deadline is not None:
                deadlined += 1
            continue
        if ctx.deadline is not None:
            deadlined += 1
        lat = ctx.latency_ms()
        assert lat is not None, "resolved request missing stage stamps"
        latencies[cls].append(lat)
    served = len(submitted) - misses
    return {
        "latencies": latencies,
        "misses": misses,
        "deadlined": deadlined,
        "served_rps": served / elapsed,
        "elapsed_s": elapsed,
        "tenants": stats["tenants"],
        "promotions": stats.get("priority_promotions", 0),
    }


def percentiles(values) -> dict:
    arr = np.asarray(values, dtype=np.float64)
    return {"p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99))}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="current",
                        help="entry name in the JSON (seed | current | ...)")
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--requests", type=int, default=300,
                        help="trace length (open-loop arrivals)")
    parser.add_argument("--load", type=float, default=0.7,
                        help="offered fraction of calibrated capacity")
    parser.add_argument("--deadline-ms", type=float, default=500.0,
                        help="interactive-class deadline")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--no-gate", action="store_true",
                        help="record results without failing on the "
                        "priority-ordering / throughput-parity gates")
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    num_classes, in_channels = 2, 1
    images = build_images(rng, args.requests, in_channels)

    capacity = calibrate(num_classes, in_channels, images, args.workers,
                         args.max_batch, n=min(args.requests, 120))
    offered = capacity * args.load
    print(f"calibrated capacity {capacity:.1f} req/s "
          f"({args.workers} workers); offering {offered:.1f} req/s "
          f"({args.load:.0%} load)")

    trace = build_trace(rng, args.requests, offered, args.deadline_ms)

    runs = {}
    for priority in (True, False):
        tag = "priority_on" if priority else "priority_off"
        runs[tag] = run_trace(trace, images, num_classes, in_channels,
                              priority, args.workers, args.max_batch)
        r = runs[tag]
        line = " ".join(
            f"{cls}={percentiles(v)['p95']:.0f}ms"
            for cls, v in r["latencies"].items() if v)
        print(f"{tag}: {r['served_rps']:.1f} req/s served, "
              f"{r['misses']} deadline miss(es), p95 {line}")

    on = runs["priority_on"]
    section = {
        "n_requests": args.requests,
        "offered_rps": round(offered, 2),
        "capacity_rps": round(capacity, 2),
        "load_fraction": args.load,
        "deadline_ms": args.deadline_ms,
        "workers": args.workers,
        "deadline_miss_rate": round(
            on["misses"] / max(1, on["deadlined"]), 4),
        "priority_on_served_rps": round(on["served_rps"], 2),
        "priority_off_served_rps": round(
            runs["priority_off"]["served_rps"], 2),
        "priority_promotions": on["promotions"],
        "tenants_served": {t: c["served"]
                           for t, c in on["tenants"].items()},
    }
    for cls, values in on["latencies"].items():
        if not values:
            continue
        pcts = percentiles(values)
        section[f"{cls}_p50_ms"] = round(pcts["p50"], 2)
        section[f"{cls}_p95_ms"] = round(pcts["p95"], 2)
        section[f"{cls}_p99_ms"] = round(pcts["p99"], 2)
    for cls, values in runs["priority_off"]["latencies"].items():
        if values:
            section[f"off_{cls}_p95_ms"] = round(
                percentiles(values)["p95"], 2)

    failures = []
    inter = on["latencies"]["interactive"]
    bulk = on["latencies"]["bulk"]
    if inter and bulk:
        p95_i = percentiles(inter)["p95"]
        p95_b = percentiles(bulk)["p95"]
        if p95_i >= p95_b:
            failures.append(
                f"priority ordering ineffective: interactive p95 "
                f"{p95_i:.1f}ms >= bulk p95 {p95_b:.1f}ms with "
                "priority on")
    ratio = (on["served_rps"]
             / max(runs["priority_off"]["served_rps"], 1e-9))
    if ratio < 0.9:
        failures.append(
            f"priority ordering costs capacity: served {ratio:.2f}x of "
            "the priority-off run (floor 0.90x)")

    doc = {}
    if os.path.exists(args.out):
        with open(args.out) as fh:
            doc = json.load(fh)
    entry = doc.setdefault(args.label, {})
    entry["slo"] = section
    entry.setdefault("python", platform.python_version())
    entry.setdefault("numpy", np.__version__)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    if failures and not args.no_gate:
        raise SystemExit("bench_slo gate failed:\n  "
                         + "\n  ".join(failures))


if __name__ == "__main__":
    main()
