"""Table III: latent-space class separability, CAE vs ICAM-reg.

Ten-fold cross-validated random-forest accuracy classifying *test-set*
samples from their latent codes alone.  The paper reports CAE >> ICAM on
every dataset (e.g. OCT 0.956 vs 0.596).
"""

import pytest

from common import BENCH_DATASETS, format_table, get_context, write_result

from repro.eval import latent_separability

_ROWS = []


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_table3_dataset(dataset, benchmark):
    ctx = get_context(dataset)
    test = ctx.test_set

    cae_codes = ctx.cae.encode_class(test.images)
    icam_codes = ctx.icam.encode_attribute(test.images)

    cae_mean, cae_std = latent_separability(cae_codes, test.labels)
    icam_mean, icam_std = latent_separability(icam_codes, test.labels)
    _ROWS.append((dataset, f"{icam_mean:.3f}+/-{icam_std:.3f}",
                  f"{cae_mean:.3f}+/-{cae_std:.3f}"))

    text = format_table(
        f"Table III ({dataset}) — RF 10-fold accuracy on latent codes",
        ("method", "accuracy"),
        [("ICAM-reg", f"{icam_mean:.3f} +/- {icam_std:.3f}"),
         ("CAE (ours)", f"{cae_mean:.3f} +/- {cae_std:.3f}")])
    write_result(f"table3_{dataset}", text)

    # Benchmark the forest cross-validation itself.
    benchmark(lambda: latent_separability(cae_codes, test.labels,
                                          n_splits=3, n_estimators=10))

    # Shape report: the paper has CAE above ICAM on every dataset.
    status = "PASS" if cae_mean >= icam_mean - 0.05 else "BELOW"
    print(f"[shape] {dataset}: CAE {cae_mean:.3f} vs ICAM {icam_mean:.3f} "
          f"-> {status}")


def test_table3_summary(benchmark):
    if not _ROWS:
        pytest.skip("no per-dataset rows")
    text = format_table("Table III — summary (RF 10-fold CV accuracy)",
                        ("dataset", "ICAM-reg", "CAE (ours)"), _ROWS)
    write_result("table3_summary", text)
    benchmark(lambda: None)
