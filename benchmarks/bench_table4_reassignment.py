"""Table IV: class re-assignment success rate on test data.

Semantic pervasiveness: swapping CS codes across classes should flip the
black-box classifier's assignment.  Paper: CAE 88.8-98.5%, ICAM-reg
15.7-82.2%.

The evaluation layer underneath is fully batched: pair drawing is
vectorized (one RNG draw per class, no per-pair loop) and swap decoding
plus classifier scoring run in shared ``batch_size`` chunks, so the
bench pays a handful of decoder/classifier sweeps per dataset instead
of hundreds of per-pair calls.
"""

import numpy as np
import pytest

from common import BENCH_DATASETS, format_table, get_context, write_result

from repro.eval import class_reassignment_rate

N_PAIRS = 60
_ROWS = []


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_table4_dataset(dataset, benchmark):
    ctx = get_context(dataset)
    test = ctx.test_set

    cae_rate = class_reassignment_rate(
        ctx.cae, ctx.classifier, test, n_pairs=N_PAIRS,
        rng=np.random.default_rng(0), batch_size=N_PAIRS)
    icam_rate = class_reassignment_rate(
        ctx.icam, ctx.classifier, test, n_pairs=N_PAIRS,
        rng=np.random.default_rng(0), batch_size=N_PAIRS)
    _ROWS.append((dataset, f"{icam_rate:.1%}", f"{cae_rate:.1%}"))

    text = format_table(
        f"Table IV ({dataset}) — CS-code swap re-assignment success "
        f"({N_PAIRS} pairs)",
        ("method", "success rate"),
        [("ICAM-reg", f"{icam_rate:.1%}"), ("CAE (ours)", f"{cae_rate:.1%}")])
    write_result(f"table4_{dataset}", text)

    # Benchmark a small batch of code swaps (the underlying operation).
    a = test.images[test.labels == 0][:4]
    b = test.images[test.labels != 0][:4]
    benchmark(lambda: ctx.cae.swap_codes(a, b))

    # Shape report: the paper has CAE far above ICAM on every dataset.
    status = "PASS" if cae_rate >= icam_rate - 0.10 else "BELOW"
    print(f"[shape] {dataset}: CAE {cae_rate:.2f} vs ICAM {icam_rate:.2f} "
          f"-> {status}")


def test_table4_summary(benchmark):
    if not _ROWS:
        pytest.skip("no per-dataset rows")
    text = format_table("Table IV — summary (swap success rate)",
                        ("dataset", "ICAM-reg", "CAE (ours)"), _ROWS)
    write_result("table4_summary", text)
    benchmark(lambda: None)
