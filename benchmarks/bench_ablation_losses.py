"""Ablation: which CAE loss terms buy the manifold its properties?

The paper (Section IV.E) attributes CAE's advantage over ICAM-reg to
(1) BBCFE's swap-coherency training, and (2) the eq (2) + eq (3)
code-reconstruction pair that makes the embedding homeomorphic.  We
train CAE variants with individual loss terms removed and compare
latent separability and class re-assignment on the test set.
"""

import numpy as np
import pytest

from common import format_table, get_context, write_result

from repro.config import LossWeights, ReproConfig
from repro.core import train_cae
from repro.eval import class_reassignment_rate, latent_separability

DATASET = "brain_tumor1"
ITERATIONS = 60

VARIANTS = {
    "full": LossWeights(),
    "no_eq2_cs_recon": LossWeights(lambda2=0.0),
    "no_eq3_is_recon": LossWeights(lambda3=0.0),
    "no_eq4_cycle": LossWeights(lambda4=0.0),
    "no_eq6_classification": LossWeights(lambda6=0.0),
}


def test_ablation_loss_terms(benchmark):
    ctx = get_context(DATASET)
    test = ctx.test_set
    rows = []
    metrics = {}
    for name, weights in VARIANTS.items():
        config = ReproConfig(image_size=ctx.config.image_size,
                             base_channels=ctx.config.base_channels,
                             seed=0, loss_weights=weights)
        model = train_cae(ctx.train_set, iterations=ITERATIONS,
                          batch_size=6, config=config)
        codes = model.encode_class(test.images)
        sep, __ = latent_separability(codes, test.labels, n_splits=5,
                                      n_estimators=30)
        reassign = class_reassignment_rate(model, ctx.classifier, test,
                                           n_pairs=40,
                                           rng=np.random.default_rng(0))
        metrics[name] = (sep, reassign)
        rows.append((name, f"{sep:.3f}", f"{reassign:.1%}"))

    text = format_table(
        f"Ablation ({DATASET}, {ITERATIONS} iters) — loss-term removal",
        ("variant", "latent sep. acc", "swap success"), rows)
    write_result("ablation_losses", text)

    # Benchmark a single short training run (the unit of this study).
    benchmark(lambda: train_cae(
        ctx.train_set, iterations=2, batch_size=4,
        config=ReproConfig(image_size=ctx.config.image_size,
                           base_channels=ctx.config.base_channels, seed=0)))

    # The classification loss (eq 6) is what drives class transfer; its
    # removal must hurt the swap success rate.
    assert metrics["full"][1] >= metrics["no_eq6_classification"][1] - 0.05
