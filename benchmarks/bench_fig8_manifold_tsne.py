"""Fig. 8: t-SNE visualisation of the class-associated manifold.

CAE's CS codes separate classes on both train and test data with
matching topology; ICAM-reg's attribute codes collapse test data into a
poorly separated Gaussian-like blob.  We save the 2-D embeddings and
report a quantitative separation score per panel.
"""

import os

import numpy as np
import pytest

MAX_POINTS = 120    # exact t-SNE is O(n^2); subsample large code banks

from common import (BENCH_DATASETS, RESULTS_DIR, format_table, get_context,
                    write_result)

from repro.core.manifold import ClassAssociatedManifold

_ROWS = []


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_fig8_manifold(dataset, benchmark):
    ctx = get_context(dataset)
    train, test = ctx.train_set, ctx.test_set

    def subsample(dataset):
        if len(dataset) <= MAX_POINTS:
            return dataset
        rng = np.random.default_rng(0)
        return dataset.subset(rng.choice(len(dataset), MAX_POINTS,
                                         replace=False))

    train_s, test_s = subsample(train), subsample(test)
    panels = {
        "cae_train": ClassAssociatedManifold(
            ctx.cae.encode_class(train_s.images), train_s.labels),
        "cae_test": ClassAssociatedManifold(
            ctx.cae.encode_class(test_s.images), test_s.labels),
        "icam_test": ClassAssociatedManifold(
            ctx.icam.encode_attribute(test_s.images), test_s.labels),
    }

    embeddings = {}
    scores = {}
    for panel, manifold in panels.items():
        embeddings[panel] = manifold.project("tsne", seed=0, perplexity=15)
        scores[panel] = manifold.separation_score()

    os.makedirs(RESULTS_DIR, exist_ok=True)
    np.savez(os.path.join(RESULTS_DIR, f"fig8_{dataset}.npz"),
             **{f"{panel}_xy": xy for panel, xy in embeddings.items()},
             cae_train_labels=train_s.labels, cae_test_labels=test_s.labels,
             icam_test_labels=test_s.labels)

    _ROWS.append((dataset, f"{scores['cae_train']:.3f}",
                  f"{scores['cae_test']:.3f}", f"{scores['icam_test']:.3f}"))
    text = format_table(
        f"Fig 8 ({dataset}) — manifold class-separation scores "
        "(higher = better separated)",
        ("panel", "separation"),
        [(panel, f"{score:.3f}") for panel, score in scores.items()])
    write_result(f"fig8_{dataset}", text)

    # Benchmark the projection step itself (PCA for speed).
    benchmark(lambda: panels["cae_test"].project("pca"))

    # Shape report: the paper has CAE's test manifold better separated.
    status = "PASS" if scores["cae_test"] >= scores["icam_test"] - 0.05 \
        else "BELOW"
    print(f"[shape] {dataset}: cae_test {scores['cae_test']:.3f} vs "
          f"icam_test {scores['icam_test']:.3f} -> {status}")


def test_fig8_summary(benchmark):
    if not _ROWS:
        pytest.skip("no per-dataset rows")
    text = format_table("Fig 8 — separation score summary",
                        ("dataset", "CAE train", "CAE test", "ICAM test"),
                        _ROWS)
    write_result("fig8_summary", text)
    benchmark(lambda: None)
