"""Pre-train and cache every model the benchmark suite needs.

Run this once before ``pytest benchmarks/ --benchmark-only`` to move all
training cost out of the benchmark timings; benchmarks will also train
on demand if the cache is cold.
"""

from __future__ import annotations

import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from common import BENCH_DATASETS, get_context  # noqa: E402


def main() -> None:
    for name in BENCH_DATASETS:
        start = time.perf_counter()
        ctx = get_context(name)
        clf_acc = float((ctx.classifier.predict(ctx.test_set.images)
                         == ctx.test_set.labels).mean())
        print(f"[{name}] classifier ready (test acc {clf_acc:.3f}, "
              f"{time.perf_counter() - start:.0f}s)", flush=True)
        ctx.cae
        print(f"[{name}] cae ready ({time.perf_counter() - start:.0f}s)",
              flush=True)
        ctx.icam
        print(f"[{name}] icam ready ({time.perf_counter() - start:.0f}s)",
              flush=True)
    print("warmup complete", flush=True)


if __name__ == "__main__":
    main()
