"""Fig. 6: qualitative saliency-map gallery across methods and datasets.

For one abnormal exemplar per dataset, every method's saliency map is
saved (``.npz``) and scored against the synthetic ground-truth lesion
mask — a quantitative stand-in for the paper's visual "finer-grained,
clearer contours" claim.
"""

import os

import numpy as np
import pytest

from common import (BENCH_DATASETS, RESULTS_DIR, format_table, get_context,
                    write_result)

from repro.eval.localization import pointing_game, saliency_iou

_ROWS = {}


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_fig6_gallery(dataset, benchmark):
    ctx = get_context(dataset)
    suite = ctx.suite()
    images, labels, masks = ctx.sample_test_images(1, abnormal_only=True,
                                                   seed=3)
    image, label, mask = images[0], int(labels[0]), masks[0]

    maps = {}
    rows = []
    for name, explainer in suite:
        result = explainer.explain(image, label)
        maps[name] = result.normalized()
        rows.append((name,
                     f"{saliency_iou(result.saliency, mask):.3f}",
                     f"{pointing_game(result.saliency, mask):.0f}"))
    _ROWS[dataset] = rows

    os.makedirs(RESULTS_DIR, exist_ok=True)
    np.savez(os.path.join(RESULTS_DIR, f"fig6_{dataset}.npz"),
             image=image, mask=mask,
             **{f"saliency_{k}": v for k, v in maps.items()})
    text = format_table(
        f"Fig 6 ({dataset}) — saliency vs ground-truth lesion mask",
        ("method", "IoU@10%", "pointing"), rows)
    write_result(f"fig6_{dataset}", text)

    cae = suite["cae"]
    benchmark(lambda: cae.explain(image, label))
