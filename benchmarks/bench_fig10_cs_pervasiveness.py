"""Fig. 10: one CS code combined with many IS backgrounds (OCT).

Semantic pervasiveness at the single-code level: the same
class-associated code injected into 7 different individual backgrounds
should produce the same class assignment everywhere, with the shared
class features visible across backgrounds.
"""

import os

import numpy as np

from common import RESULTS_DIR, format_table, get_context, write_result

DATASET = "oct"
N_BACKGROUNDS = 7
N_CS_DONORS = 3


def test_fig10_pervasiveness(benchmark):
    ctx = get_context(DATASET)
    test = ctx.test_set

    backgrounds = test.images[test.labels == 0][:N_BACKGROUNDS]
    __, is_codes = ctx.cae.encode(backgrounds)

    rows = []
    grids = {}
    for donor_label in (1, 2, 3):
        donors = test.images[test.labels == donor_label]
        if len(donors) == 0:
            continue
        cs_codes = ctx.cae.encode_class(donors[:N_CS_DONORS])
        transfer_rates = []
        for d, cs in enumerate(cs_codes):
            grid = ctx.cae.decode(np.repeat(cs[None], len(is_codes), axis=0),
                                  is_codes)
            pred = ctx.classifier.predict(grid)
            transfer_rates.append(float((pred == donor_label).mean()))
            grids[f"class{donor_label}_donor{d}"] = grid
        rows.append((test.class_names[donor_label],
                     f"{np.mean(transfer_rates):.1%}"))

    os.makedirs(RESULTS_DIR, exist_ok=True)
    np.savez(os.path.join(RESULTS_DIR, "fig10_oct.npz"),
             backgrounds=backgrounds, **grids)
    text = format_table(
        f"Fig 10 (OCT) — one CS code x {N_BACKGROUNDS} IS backgrounds: "
        "class-transfer rate",
        ("CS donor class", "transfer rate"), rows)
    write_result("fig10_cs_pervasiveness", text)

    # Benchmark decoding one CS code against all backgrounds.
    cs = ctx.cae.encode_class(test.images[test.labels == 1][:1])
    benchmark(lambda: ctx.cae.decode(
        np.repeat(cs, len(is_codes), axis=0), is_codes))
