"""Fig. 7: the false-positive local-trap case study.

A LIME saliency map on an abnormal OCT image produces responses outside
the true lesion.  Masking that false-positive region drops the
classification probability (deceiving greedy methods) without flipping
the class; masking the true lesion flips it; masking both achieves a
similar drop to the true lesion alone but over a longer modification
path (larger covered area) — exactly the paper's argument for why the
shortest class-flipping path excludes false positives.
"""

import pytest

from common import format_table, get_context, write_result

from repro.eval import false_positive_case
from repro.explain import LimeExplainer

DATASET = "oct"


def test_fig7_false_positive_case(benchmark):
    ctx = get_context(DATASET)
    images, labels, masks = ctx.sample_test_images(4, abnormal_only=True,
                                                   seed=1)
    lime = LimeExplainer(ctx.classifier, grid=8, n_samples=150, seed=0)

    # Pick the exemplar where LIME leaks most saliency outside the lesion.
    best = None
    for image, label, mask in zip(images, labels, masks):
        result = lime.explain(image, int(label))
        outside_mass = float((result.saliency * (mask < 0.5)).sum())
        if best is None or outside_mass > best[0]:
            best = (outside_mass, image, int(label), mask, result.saliency)
    __, image, label, mask, saliency = best

    case = benchmark(lambda: false_positive_case(
        ctx.classifier, image, label, mask, saliency))

    rows = [(region, f"{entry['drop']:.3f}",
             "yes" if entry["flipped"] else "no",
             f"{entry['area']:.0f}px")
            for region, entry in case.items()]
    text = format_table(
        "Fig 7 — masking LIME's false positive vs the true lesion (OCT)",
        ("masked region", "prob drop", "class flipped", "area"), rows)
    write_result("fig7_local_trap_case", text)

    # Shape checks mirroring the paper's narrative.
    assert case["true_positive"]["drop"] >= case["false_positive"]["drop"]
    assert case["both"]["area"] > case["true_positive"]["area"]
