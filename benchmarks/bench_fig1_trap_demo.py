"""Fig. 1: local-trap illustration on a 2-D decision surface.

Gradient descent (①) and greedy multi-perturbation walks (②) stall in a
local basin without crossing the class-flipping border; the globally
guided path (④⑤) crosses it with a short, direct trajectory.
"""

from common import format_table, write_result

from repro.eval import trap_demo_2d


def test_fig1_trap_demo(benchmark):
    demo = benchmark(trap_demo_2d)

    rows = []
    for name, trace in demo.items():
        rows.append((name,
                     "yes" if trace.flipped else "no (trapped)",
                     f"{trace.probs[-1]:.3f}",
                     f"{trace.length:.2f}"))
    text = format_table(
        "Fig 1 — local-trap demo on a 2-D decision surface "
        "(start prob {:.3f})".format(demo["guided"].probs[0]),
        ("strategy", "crossed 0.5 border", "final prob", "path length"),
        rows)
    write_result("fig1_trap_demo", text)

    assert not demo["gradient"].flipped        # ① trapped
    assert not demo["greedy_walk"].flipped     # ② trapped
    assert demo["guided"].flipped              # ④⑤ crosses the border
