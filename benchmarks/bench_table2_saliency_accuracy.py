"""Table II: AOPC and PD of every XAI method on every dataset.

The paper's headline result: CAE's guided counterfactual saliency maps
degrade the classifier faster (higher AOPC, eq 11) and deeper (higher
PD, eq 12) than all nine baselines on all five datasets.
"""

import numpy as np
import pytest

from common import (BENCH_DATASETS, N_EVAL_IMAGES, N_PATCHES, PATCH,
                    engine_kwargs, format_table, get_context, write_result)

from repro.eval import evaluate_methods
from repro.explain import TABLE2_METHODS

_RESULTS = {}


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_table2_dataset(dataset, benchmark):
    ctx = get_context(dataset)
    suite = ctx.suite()
    images, labels, __ = ctx.sample_test_images(N_EVAL_IMAGES,
                                                abnormal_only=True)
    # Engine-backed: the explain step of every method runs through the
    # serving runtime (micro-batching + sharded cache + dedup), so the
    # reproduction exercises the same code path that serves traffic and
    # repeat sweeps in one session reuse cached maps.
    engine = ctx.engine(max_batch=N_EVAL_IMAGES, **engine_kwargs())
    curves = evaluate_methods(None, ctx.classifier, images, labels,
                              n_patches=N_PATCHES, patch=PATCH,
                              engine=engine)
    _RESULTS[dataset] = curves
    stats = engine.stats()
    print(f"[serve] {dataset}: {stats['batches_run']} micro-batches, "
          f"{stats['cache_hits']} cache hits, "
          f"{stats['dedup_hits']} dedup fan-outs")

    rows = [(name,
             f"{curves[name].aopc:.3f}" if name in curves else "-",
             f"{curves[name].pd:.3f}" if name in curves else "-")
            for name in TABLE2_METHODS]
    text = format_table(
        f"Table II ({dataset}) — saliency accuracy, {N_EVAL_IMAGES} "
        f"abnormal test images, {N_PATCHES}x{PATCH}x{PATCH} coverage",
        ("method", "AOPC", "PD"), rows)
    write_result(f"table2_{dataset}", text)

    # Benchmark one CAE explanation (the paper's fastest method).
    cae = suite["cae"]
    benchmark(lambda: cae.explain(images[0], int(labels[0])))

    # Shape report: the paper has CAE first on every dataset; at this
    # reduced training scale we report the rank (degradations below 0.05
    # mean the saturated classifier makes ranks pure noise).
    aopcs = {name: c.aopc for name, c in curves.items()}
    order = sorted(aopcs, key=aopcs.get, reverse=True)
    rank = order.index("cae") + 1
    regime = "ok" if max(aopcs.values()) >= 0.05 else "degenerate (noise)"
    print(f"[shape] {dataset}: CAE AOPC rank {rank}/{len(order)}, "
          f"signal regime: {regime}")


def test_table2_summary(benchmark):
    """Cross-dataset summary table once all datasets have run."""
    if not _RESULTS:
        pytest.skip("per-dataset results not computed in this session")
    headers = ["method"] + [f"{d}\n(AOPC/PD)" for d in _RESULTS]
    rows = []
    for name in TABLE2_METHODS:
        cells = [name]
        for dataset in _RESULTS:
            curves = _RESULTS[dataset]
            if name in curves:
                cells.append(f"{curves[name].aopc:.3f}/{curves[name].pd:.3f}")
            else:
                cells.append("-")
        rows.append(tuple(cells))
    text = format_table("Table II — AOPC/PD summary across datasets",
                        headers, rows)
    write_result("table2_summary", text)
    benchmark(lambda: format_table("t", ("a",), [("1",)]))
