"""Fig. 11 + Section IV.F.3: path interpolation and manifold smoothness.

(a) Dragging a CS code along a normal -> abnormal path with a fixed IS
code produces a series whose lesion features evolve and whose target
probability rises continuously and (near-)monotonously (Fig 11b).

(b) SMOTE-resampled CS codes (convex combinations on the manifold
contour) decode to the intended class at high rates (paper: 93.4-97.6%
per OCT class).
"""

import os

import numpy as np

from common import RESULTS_DIR, format_table, get_context, write_result

from repro.eval import probe_path, smote_validity

DATASET = "oct"
STEPS = 8
SMOTE_SAMPLES = 40


def test_fig11_path_and_smote(benchmark):
    ctx = get_context(DATASET)
    test = ctx.test_set
    manifold = ctx.cae.build_manifold(ctx.train_set)

    normal_idx = test.indices_of_class(0)[0]
    normal_image = test.images[normal_idx]
    cs0, is_code = ctx.cae.encode(normal_image[None])

    rows = []
    probes = {}
    for target in manifold.counter_classes(0):
        probe = probe_path(ctx.cae, ctx.classifier, cs0[0],
                           manifold.centroid(target), is_code,
                           target_label=target, steps=STEPS)
        probes[target] = probe
        rows.append((f"0 -> {test.class_names[target]}",
                     f"{probe.probs[0]:.3f} -> {probe.probs[-1]:.3f}",
                     f"{probe.monotonicity:.2f}",
                     f"{probe.total_rise:+.3f}"))

    validity = smote_validity(ctx.cae, manifold, ctx.classifier, is_code,
                              n_samples=SMOTE_SAMPLES,
                              rng=np.random.default_rng(0))
    smote_rows = [(test.class_names[label], f"{rate:.1%}")
                  for label, rate in validity.items()]

    os.makedirs(RESULTS_DIR, exist_ok=True)
    np.savez(os.path.join(RESULTS_DIR, "fig11_oct.npz"),
             **{f"series_to_{t}": p.images for t, p in probes.items()},
             **{f"probs_to_{t}": p.probs for t, p in probes.items()})
    text = "\n\n".join([
        format_table(
            f"Fig 11 (OCT) — dragged CS codes along paths ({STEPS} steps)",
            ("path", "target prob", "monotonicity", "total rise"), rows),
        format_table(
            f"Sec IV.F.3 — SMOTE-resampled code validity "
            f"({SMOTE_SAMPLES}/class)",
            ("class", "valid fraction"), smote_rows),
    ])
    write_result("fig11_path_interpolation", text)

    # Benchmark one full path probe.
    target = manifold.counter_classes(0)[0]
    benchmark(lambda: probe_path(ctx.cae, ctx.classifier, cs0[0],
                                 manifold.centroid(target), is_code,
                                 target_label=target, steps=STEPS))

    # Shape checks: probability rises along every path.
    for target, probe in probes.items():
        assert probe.total_rise > -0.05, \
            f"path to class {target} did not raise target probability"
