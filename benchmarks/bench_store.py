"""Persistent-store micro-benchmark: tiering, write-behind, recovery.

Exercises the two-tier serving path (:class:`repro.serve.SaliencyStore`
under the in-memory cache) and writes ``BENCH_store.json``:

* **Tiering** — a skewed-cost trace (a few expensive maps, many cheap
  ones) replayed three ways: *cold* (empty store, everything computed
  and written behind), *tier-2 warm* (a fresh engine reopened on the
  same directory — the in-memory cache is empty, every request is
  served from disk), and *tier-1 warm* (the same engine replays the
  trace again, now hitting memory).  The run asserts tier-2-warm
  serving is at least **5x** the cold rate and that the restarted
  engine recovers at least **90%** of the requested compute-weight
  from the store (the persisted GDSF costs make that rate exact).
* **Write-behind overhead** — the same all-miss insert trace through
  an engine with no store, with a write-behind store, and with a
  synchronous (``write_behind=False``) store.  Timing covers submit
  through drain — the serving path the write-behind queue is supposed
  to keep off the disk — and the run asserts the write-behind insert
  penalty is at most **10%** versus store-off.

Costs come from stub explainers with deterministic per-map sleeps (the
dynamics under test are the store's, not the models'), so the run is
seconds, not minutes::

    PYTHONPATH=src python benchmarks/bench_store.py --label current

CI runs the same script with ``--label ci`` and gates the recorded
``*_rps`` rates against the committed baseline via
``tools/check_bench.py --strict-missing`` (all except
``tier1_warm_rps``, which measures microsecond-scale memory hits and
is recorded for context only — see the exclusion in check_bench).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import tempfile
import time

import numpy as np

from repro.explain.base import Explainer, SaliencyResult
from repro.serve import ExplainEngine

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_store.json")


class SleepStub(Explainer):
    """Deterministic-cost explainer: ``sleep_ms`` per map, counted."""

    needs_gradients = False

    def __init__(self, name: str, sleep_ms: float):
        self.name = name
        self.sleep_ms = sleep_ms
        self.computed = 0

    def explain_batch(self, images, labels, target_labels=None):
        if self.sleep_ms:
            time.sleep(self.sleep_ms * len(images) / 1000.0)
        self.computed += len(images)
        return [SaliencyResult(np.random.default_rng(int(y)).random(
            images.shape[2:]).astype(np.float32), int(y))
                for y in labels]


def _img(i: int) -> np.ndarray:
    return np.full((1, 8, 8), float(i), dtype=np.float32)


def _engine(store, pricey_ms: float, cheap_ms: float) -> ExplainEngine:
    return ExplainEngine(None,
                         {"pricey": SleepStub("pricey", pricey_ms),
                          "cheap": SleepStub("cheap", cheap_ms)},
                         max_batch=4, cache_size=512, store=store)


def _replay(engine: ExplainEngine, hot: int, flood: int) -> float:
    """Submit the skewed trace (``hot`` pricey + ``flood`` cheap unique
    maps), drain, return elapsed seconds."""
    start = time.perf_counter()
    for i in range(hot):
        engine.submit_async(_img(i), 0, "pricey")
    for i in range(flood):
        engine.submit_async(_img(1_000 + i), 0, "cheap")
    engine.drain()
    return time.perf_counter() - start


# ----------------------------------------------------------------------
def tiering_run(directory: str, hot: int, flood: int, pricey_ms: float,
                cheap_ms: float) -> dict:
    """Cold / tier-2-warm / tier-1-warm replays of one skewed trace."""
    total = hot + flood

    cold = _engine(directory, pricey_ms, cheap_ms)
    with cold:
        cold_s = _replay(cold, hot, flood)
        cold_stats = cold.stats()
    if cold_stats["store"]["write_drops"]:
        raise SystemExit("cold run dropped write-behind records; shrink "
                         "the trace or deepen the queue")

    # Fresh engine, same directory: tier 1 empty, tier 2 on disk.
    warm = _engine(directory, pricey_ms, cheap_ms)
    with warm:
        tier2_s = _replay(warm, hot, flood)
        recovery = warm.stats()
        tier1_s = _replay(warm, hot, flood)
        final = warm.stats()

    row = {
        "requests": total,
        "hot_pricey": hot,
        "flood_cheap": flood,
        "pricey_ms": pricey_ms,
        "cheap_ms": cheap_ms,
        "cold_rps": round(total / cold_s, 1),
        "tier2_warm_rps": round(total / tier2_s, 1),
        "tier1_warm_rps": round(total / tier1_s, 1),
        "tier2_speedup": round(cold_s / tier2_s, 2),
        "recovery_store_served": recovery["store_served"],
        "recovery_weighted_hit_rate": round(
            recovery["weighted_hit_rate"], 4),
        "store_entries": final["store"]["entries"],
        "store_bytes": final["store"]["bytes"],
        "store_segments": final["store"]["segments"],
    }
    if row["tier2_speedup"] < 5.0:
        raise SystemExit(
            f"tier-2-warm serving only {row['tier2_speedup']}x cold "
            "(need >= 5x): store reads are not beating recompute")
    if row["recovery_weighted_hit_rate"] < 0.9:
        raise SystemExit(
            f"restart recovered only "
            f"{row['recovery_weighted_hit_rate']:.1%} of requested "
            "compute-weight (need >= 90%)")
    return row


# ----------------------------------------------------------------------
def write_behind_run(base_dir: str, requests: int,
                     sleep_ms: float) -> dict:
    """All-miss insert trace: store-off vs write-behind vs synchronous.

    Every map is unique, so the store only ever absorbs inserts — the
    measured spread is pure insert-path overhead.
    """
    def run(store) -> float:
        engine = ExplainEngine(None, {"stub": SleepStub("stub", sleep_ms)},
                               max_batch=4, cache_size=2 * requests,
                               store=store)
        with engine:
            start = time.perf_counter()
            for i in range(requests):
                engine.submit_async(_img(i), 0, "stub")
            engine.drain()
            return time.perf_counter() - start

    from repro.serve import SaliencyStore

    off_s = run(None)
    wb_s = run(os.path.join(base_dir, "wb"))
    sync_s = run(SaliencyStore(os.path.join(base_dir, "sync"),
                               write_behind=False))
    row = {
        "requests": requests,
        "sleep_ms": sleep_ms,
        "store_off_rps": round(requests / off_s, 1),
        "write_behind_rps": round(requests / wb_s, 1),
        "sync_store_rps": round(requests / sync_s, 1),
        "write_behind_overhead_pct": round(100.0 * (wb_s / off_s - 1.0),
                                           1),
    }
    if wb_s > 1.10 * off_s:
        raise SystemExit(
            f"write-behind insert overhead "
            f"{row['write_behind_overhead_pct']}% exceeds the 10% "
            "budget: the hot path is blocking on disk")
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="current",
                        help="entry name in the JSON (seed | current | ci)")
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--hot", type=int, default=12,
                        help="expensive hot-set size in the skewed trace")
    parser.add_argument("--flood", type=int, default=48,
                        help="cheap unique maps in the skewed trace")
    parser.add_argument("--requests", type=int, default=64,
                        help="write-behind-section insert count")
    args = parser.parse_args()

    scratch = tempfile.mkdtemp(prefix="bench_store_")
    try:
        tiering = tiering_run(os.path.join(scratch, "tier"),
                              hot=args.hot, flood=args.flood,
                              pricey_ms=6.0, cheap_ms=0.5)
        print(f"tiering ({tiering['requests']} reqs, skewed costs):")
        print(f"  cold        : {tiering['cold_rps']:8.1f} req/s")
        print(f"  tier-2 warm : {tiering['tier2_warm_rps']:8.1f} req/s "
              f"({tiering['tier2_speedup']}x cold, recovered "
              f"{tiering['recovery_weighted_hit_rate']:.1%} of "
              "requested compute-weight)")
        print(f"  tier-1 warm : {tiering['tier1_warm_rps']:8.1f} req/s")

        write_behind = write_behind_run(scratch, args.requests,
                                        sleep_ms=2.0)
        print(f"write-behind inserts ({write_behind['requests']} unique "
              "reqs):")
        print(f"  store off   : {write_behind['store_off_rps']:8.1f} "
              "req/s")
        print(f"  write-behind: {write_behind['write_behind_rps']:8.1f} "
              f"req/s ({write_behind['write_behind_overhead_pct']:+.1f}% "
              "vs off)")
        print(f"  synchronous : {write_behind['sync_store_rps']:8.1f} "
              "req/s")
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    doc = {}
    if os.path.exists(args.out):
        with open(args.out) as fh:
            doc = json.load(fh)
    doc[args.label] = {
        "tiering": tiering,
        "write_behind": write_behind,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
