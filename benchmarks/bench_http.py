"""Loopback throughput/latency benchmark for the HTTP service tier.

Starts the real daemon stack in-process (``repro.serve.http.serve``
over a threaded-executor demo engine — the same wiring
``tools/serve_daemon.py`` builds) and drives ``POST /v1/explain``
closed-loop from ``--clients`` threads, each on its own keep-alive
``http.client`` connection.  Requests rotate through a small image
pool that a warmup pass has already pushed through the engine, so the
timed window serves from the saliency cache and the numbers isolate
the **wire cost** — JSON + base64 codec, per-connection handler
threads, socket round trips — from explainer compute, which
``bench_serve.py``/``bench_slo.py`` already gate in-process.  A
regression here is a regression in the service tier itself.

Records into the ``http`` section of ``BENCH_serve.json``:

* ``http_rps`` — served requests/second (gated in CI as a rate: a
  committed-baseline regression of more than the tolerance fails).
* ``http_p95_ms`` — client-observed p95 round-trip latency (gated as
  a time: lower is better).
* ``http_p50_ms`` — recorded for context, never gated.

Usage::

    PYTHONPATH=src python benchmarks/bench_http.py --label current
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import threading
import time

import numpy as np

from repro.serve import ExplainEngine, ThreadedExecutor, demo_spec
from repro.serve.http import ServiceConfig, encode_array, serve

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_serve.json")

METHOD = "gradcam"
SIDE = 16
POOL = 32                              # distinct images in rotation


def percentiles(values):
    arr = np.asarray(values, dtype=np.float64)
    return {name: float(np.percentile(arr, q))
            for name, q in (("p50", 50), ("p95", 95), ("p99", 99))}


def client_loop(host, port, bodies, n, latencies, errors, barrier,
                offset):
    """One closed-loop client: ``n`` requests over a keep-alive
    connection, recording per-request round-trip milliseconds."""
    conn = http.client.HTTPConnection(host, port, timeout=60)
    barrier.wait()
    try:
        for i in range(n):
            body = bodies[(offset + i) % len(bodies)]
            start = time.perf_counter()
            conn.request("POST", "/v1/explain", body,
                         {"Content-Type": "application/json"})
            resp = conn.getresponse()
            resp.read()
            if resp.status != 200:
                errors.append(resp.status)
            latencies.append((time.perf_counter() - start) * 1e3)
    finally:
        conn.close()


def run(clients: int, per_client: int, workers: int):
    spec = demo_spec((METHOD,))
    classifier, explainers = spec.materialize()
    engine = ExplainEngine(
        classifier, explainers, max_batch=16, max_delay_ms=5.0,
        cache_size=POOL * 2, max_pending=4 * clients * POOL,
        policy="block",
        executor=ThreadedExecutor(workers=workers))
    daemon = serve(engine, port=0, config=ServiceConfig())
    rng = np.random.default_rng(11)
    bodies = [
        json.dumps({"method": METHOD,
                    "image": encode_array(
                        rng.standard_normal((1, SIDE, SIDE))
                        .astype(np.float32))}).encode()
        for _ in range(POOL)
    ]
    latencies, errors = [], []
    try:
        # Warmup: populate the cache pool and warm both sides of the
        # socket before the timed window.
        client_loop(daemon.host, daemon.port, bodies, POOL, [], errors,
                    threading.Barrier(1), 0)
        barrier = threading.Barrier(clients + 1)
        threads = [
            threading.Thread(target=client_loop,
                             args=(daemon.host, daemon.port, bodies,
                                   per_client, latencies, errors,
                                   barrier, i * 7))
            for i in range(clients)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        start = time.perf_counter()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
    finally:
        stats = engine.stats()
        daemon.drain()
        daemon.shutdown()
        engine.close()
    if errors:
        raise SystemExit(f"{len(errors)} non-200 responses: "
                         f"{sorted(set(errors))}")
    total = clients * per_client
    return {
        "rps": total / elapsed,
        "latencies": latencies,
        "elapsed_s": elapsed,
        "requests": total,
        "cache_hits": stats["cache_hits"],
        "batches_run": stats["batches_run"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="current",
                        help="entry name in the JSON (seed | current)")
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent keep-alive client threads")
    parser.add_argument("--per-client", type=int, default=100,
                        help="requests each client sends")
    parser.add_argument("--workers", type=int, default=2,
                        help="engine executor workers")
    args = parser.parse_args()

    result = run(args.clients, args.per_client, args.workers)
    pcts = percentiles(result["latencies"])
    print(f"{result['requests']} requests / {args.clients} clients: "
          f"{result['rps']:.1f} req/s, "
          f"p50 {pcts['p50']:.2f}ms p95 {pcts['p95']:.2f}ms "
          f"({result['cache_hits']} cache hits, "
          f"{result['batches_run']} batches)")

    section = {
        "clients": args.clients,
        "requests": result["requests"],
        "workers": args.workers,
        "image_side": SIDE,
        "pool": POOL,
        "cache_hits": int(result["cache_hits"]),
        "batches_run": int(result["batches_run"]),
        "http_rps": round(result["rps"], 2),
        "http_p50_ms": round(pcts["p50"], 3),
        "http_p95_ms": round(pcts["p95"], 3),
    }
    doc = {}
    if os.path.exists(args.out):
        with open(args.out) as fh:
            doc = json.load(fh)
    entry = doc.setdefault(args.label, {})
    entry["http"] = section
    entry.setdefault("python", platform.python_version())
    entry.setdefault("numpy", np.__version__)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out} [{args.label}][http]")


if __name__ == "__main__":
    main()
