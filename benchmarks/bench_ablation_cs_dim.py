"""Ablation: class-associated code dimensionality.

The paper fixes the CS code at 8-d.  We sweep the dimension and measure
latent separability and swap success — the low-dimensional code acts as
an l0-analog regulariser (Section III.C), so very large codes should not
be needed and very small ones should underfit multi-feature classes.
"""

import numpy as np
import pytest

from common import format_table, get_context, write_result

from repro.config import ReproConfig
from repro.core import train_cae
from repro.eval import class_reassignment_rate, latent_separability

DATASET = "brain_tumor1"
ITERATIONS = 60
DIMS = (2, 8, 32)


def test_ablation_cs_dimension(benchmark):
    ctx = get_context(DATASET)
    test = ctx.test_set
    rows = []
    for dim in DIMS:
        config = ReproConfig(image_size=ctx.config.image_size,
                             base_channels=ctx.config.base_channels,
                             cs_dim=dim, seed=0)
        model = train_cae(ctx.train_set, iterations=ITERATIONS,
                          batch_size=6, config=config)
        codes = model.encode_class(test.images)
        sep, __ = latent_separability(codes, test.labels, n_splits=5,
                                      n_estimators=30)
        reassign = class_reassignment_rate(model, ctx.classifier, test,
                                           n_pairs=40,
                                           rng=np.random.default_rng(0))
        rows.append((dim, f"{sep:.3f}", f"{reassign:.1%}"))

    text = format_table(
        f"Ablation ({DATASET}, {ITERATIONS} iters) — CS code dimension",
        ("cs_dim", "latent sep. acc", "swap success"), rows)
    write_result("ablation_cs_dim", text)

    benchmark(lambda: ctx.cae.encode_class(test.images[:8]))
