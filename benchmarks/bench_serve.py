"""Serving-runtime micro-benchmark: throughput, dedup, shard balance.

Exercises the ``repro.serve`` engine runtime the way traffic would and
writes machine-readable results to ``BENCH_serve.json`` at the repo
root:

* **Mixed-method throughput** — N distinct requests round-robin over a
  mixed gradient/perturbation method set, submitted via
  ``submit_async`` and resolved with ``drain()``; requests/sec for the
  ``SerialExecutor`` vs the ``ThreadedExecutor`` vs the
  ``ProcessExecutor`` (persistent worker processes materializing the
  same model spec).  Executor speedups are hardware-bound (threads
  overlap only where BLAS releases the GIL; processes sidestep the GIL
  but pay pipe serialization), so ``cpu_count`` is recorded next to
  them.  ``--executor`` selects a subset — CI runs a dedicated
  ``--executor process`` smoke so pool startup *and* shutdown are
  exercised on every push.
* **Transport A/B** — the same payload-dominated workload (an ``echo``
  explainer whose compute is a channel mean, 64x64 images, batch 16)
  through a process pool once per transport: ``shm`` (zero-copy
  shared-memory arenas) vs ``pipe`` (the pickle codec).  Records
  requests/sec and payload MB/s per transport plus the pickled payload
  bytes per request, and **fails the run** if shm does not move
  strictly fewer pickled bytes than pipe — that invariant is
  structural, not hardware-dependent, so it gates everywhere.
  ``--transport`` also pins the mixed-workload process pool to one
  transport so CI can smoke each path separately;
  ``--skip-transport-bench`` lets the pipe-pinned smoke skip the A/B
  (which always runs both transports regardless of the pin).
* **Duplicate-heavy dedup** — U unique images requested R times each
  through one method; the run *verifies* via ``stats()`` counters that
  each unique request was computed exactly once (``cache_inserts ==
  U``) with every duplicate served by dedup fan-out or the cache, and
  records the hit breakdown.
* **Shard balance** — distinct-key fill of the sharded cache; per-shard
  sizes and the max/mean imbalance ratio.

Runs at the brain smoke scale (16x16, width-8 classifier, untrained
weights — engine cost is architecture-bound, not weight-bound)::

    PYTHONPATH=src python benchmarks/bench_serve.py --label current
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

import numpy as np

from repro.data import make_dataset
from repro.serve import (EngineSpec, ExplainEngine, ProcessExecutor,
                         ShardedSaliencyCache, ThreadedExecutor, demo_spec)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_serve.json")

IMAGE_SIZE = 16
WIDTH = 8

EXECUTORS = ("serial", "threaded", "process")

MIXED_METHODS = ("gradcam", "fullgrad", "simple_fullgrad", "occlusion")


def serve_spec(num_classes: int, in_channels: int) -> EngineSpec:
    """The mixed-method model recipe: the parent engine and every
    ``ProcessExecutor`` worker materialize bit-identical replicas from
    this one spec (seeded untrained init is deterministic)."""
    return demo_spec(MIXED_METHODS, num_classes=num_classes,
                     in_channels=in_channels, width=WIDTH)


def build_engine(num_classes: int, in_channels: int, executor,
                 max_batch: int = 8, cache_size: int = 512,
                 shards: int = 4) -> ExplainEngine:
    """Fresh engine (cold cache) over the mixed method set."""
    classifier, explainers = serve_spec(num_classes,
                                        in_channels).materialize()
    return ExplainEngine(
        classifier, explainers,
        max_batch=max_batch, cache_size=cache_size, cache_shards=shards,
        executor=executor)


def throughput(num_classes, in_channels, images, labels, make_executor_fn,
               repeats: int) -> float:
    """Best-of-``repeats`` requests/sec for one executor flavour, plus
    the last repeat's engine-side plan-cache stats (None when the
    engine reports no plans section).

    ``make_executor_fn`` builds a fresh executor per repeat (each
    engine's ``close()`` shuts its executor down — for the process
    pool that exercises the full startup *and* orphan-free shutdown
    path every repeat).  Pool startup happens before the clock starts:
    the pool is persistent, so steady-state request throughput is the
    metric.
    """
    methods = MIXED_METHODS
    best = 0.0
    plan_stats = None
    for _ in range(repeats):
        engine = build_engine(num_classes, in_channels, make_executor_fn())
        try:
            start = time.perf_counter()
            handles = [
                engine.submit_async(images[i], int(labels[i]),
                                    methods[i % len(methods)])
                for i in range(len(images))
            ]
            engine.drain()
            elapsed = time.perf_counter() - start
            assert all(h.done for h in handles)
            best = max(best, len(images) / elapsed)
            plan_stats = engine.stats()["plans"]
        finally:
            engine.close()
    return best, plan_stats


def transport_workload(num_classes: int, in_channels: int, workers: int,
                       repeats: int, requests: int = 32, side: int = 64,
                       batch: int = 16) -> dict:
    """Shm-vs-pipe A/B on a payload-dominated process-pool workload.

    The ``echo`` explainer (channel mean — output depends on input, so
    a broken transport would corrupt results, not just slow down)
    makes serialization the dominant cost: at 64x64 the pipe pickles
    ~``side*side*4`` bytes out plus the same back per request, while
    the shm path pickles only small control headers.  The pickled-byte
    comparison is structural and gates unconditionally; the req/s
    comparison is recorded (and gated against the baseline by
    ``check_bench`` via the ``*_rps`` suffix) but shm >= pipe is only
    asserted by the test suite at smoke scale, since a loaded CI box
    can flip a close race.
    """
    spec = demo_spec(("echo",), num_classes=num_classes,
                     in_channels=in_channels, width=WIDTH)
    rng = np.random.default_rng(7)
    images = rng.standard_normal(
        (requests, in_channels, side, side)).astype(np.float32)
    payload_per_request = (in_channels + 1) * side * side * 4  # out + ret

    section = {"requests": requests, "image_side": side, "batch": batch,
               "workers": workers,
               "payload_bytes_per_request": payload_per_request}
    for transport in ("pipe", "shm"):
        best = 0.0
        stats = None
        for _ in range(repeats):
            executor = ProcessExecutor(spec, workers=workers,
                                       transport=transport)
            classifier, explainers = spec.materialize()
            engine = ExplainEngine(classifier, explainers, max_batch=batch,
                                   cache_size=2 * requests,
                                   executor=executor)
            try:
                start = time.perf_counter()
                handles = [engine.submit_async(images[i], 0, "echo")
                           for i in range(requests)]
                engine.drain()
                elapsed = time.perf_counter() - start
                assert all(h.done for h in handles)
                if requests / elapsed > best:
                    best = requests / elapsed
                    stats = executor.transport_stats()
            finally:
                engine.close()
        section[f"{transport}_rps"] = round(best, 2)
        section[f"{transport}_payload_mb_s"] = round(
            best * payload_per_request / 1e6, 2)
        section[f"{transport}_pickled_bytes_per_request"] = round(
            stats["pipe_payload_bytes"] / requests, 1)
        if transport == "shm":
            section["shm_copies_avoided"] = stats["copies_avoided"]
            section["shm_arena_bytes"] = stats["arena_bytes"]
            section["shm_overlap_occupancy"] = stats["overlap_occupancy"]
            section["shm_fallbacks"] = stats["fallbacks"]
        print(f"transport A/B ({requests} reqs, {side}x{side}, "
              f"batch {batch}): {transport:4s} "
              f"{section[f'{transport}_rps']:7.1f} req/s, "
              f"{section[f'{transport}_payload_mb_s']:6.1f} MB/s payload, "
              f"{section[f'{transport}_pickled_bytes_per_request']:.0f} "
              "pickled B/req")
    if (section["shm_pickled_bytes_per_request"]
            >= section["pipe_pickled_bytes_per_request"]):
        raise SystemExit(
            "transport regression: shm pickled "
            f"{section['shm_pickled_bytes_per_request']} B/req, expected "
            "strictly fewer than pipe's "
            f"{section['pipe_pickled_bytes_per_request']} B/req")
    return section


def dedup_workload(classifier, images, labels, unique: int,
                   repeats: int) -> dict:
    """Duplicate-heavy traffic; verifies exactly-once compute.

    Verification is direct: the explainer is wrapped with a counter of
    images actually explained, so the check cannot be fooled by counter
    bookkeeping (re-inserting an existing cache key, say) — exactly
    ``unique`` maps must have been computed for ``unique * repeats``
    requests.
    """
    from repro.explain import GradCAMExplainer
    from repro.explain.base import Explainer

    inner = GradCAMExplainer(classifier)
    computed = {"images": 0}

    class CountingGradCAM(Explainer):
        name = "gradcam"
        needs_gradients = True

        def explain_batch(self, imgs, labs, targets=None):
            computed["images"] += len(imgs)
            return inner.explain_batch(imgs, labs, targets)

    engine = ExplainEngine(classifier, {"gradcam": CountingGradCAM()},
                           max_batch=4, cache_size=512, cache_shards=4,
                           executor="serial")
    rng = np.random.default_rng(0)
    order = rng.permutation(np.repeat(np.arange(unique), repeats))
    for i in order:
        engine.submit_async(images[i], int(labels[i]), "gradcam")
    engine.drain()
    stats = engine.stats()
    total = unique * repeats
    if computed["images"] != unique:
        raise SystemExit(
            f"dedup violated: {computed['images']} maps computed for "
            f"{unique} unique requests")
    if stats["cache_inserts"] != unique:
        raise SystemExit(
            f"dedup violated: {stats['cache_inserts']} cache inserts for "
            f"{unique} unique requests")
    if stats["requests_served"] != total:
        raise SystemExit(
            f"lost requests: served {stats['requests_served']} of {total}")
    return {
        "total_requests": total,
        "unique_requests": unique,
        "computed": stats["cache_inserts"],
        "dedup_fanouts": stats["dedup_hits"],
        "cache_hits": stats["cache_hits"],
        "batches_run": stats["batches_run"],
        "dedup_hit_rate": round(
            (stats["dedup_hits"] + stats["cache_hits"]) / total, 4),
    }


def shard_balance(n_keys: int = 512, shards: int = 8) -> dict:
    """Distinct-digest fill: how evenly crc32 routing spreads load.

    Balance is measured on per-shard *insert* counters (the routing
    decision), not post-eviction sizes — sizes are clamped by each
    shard's capacity, which would make any imbalance invisible.
    """
    from repro.explain.base import SaliencyResult

    cache = ShardedSaliencyCache(capacity=n_keys, shards=shards)
    for i in range(n_keys):
        cache.put((f"digest-{i:06d}", "m", 0, None),
                  SaliencyResult(np.zeros((2, 2)), 0))
    routed = [s.inserts for s in cache.shards]
    return {
        "keys": n_keys,
        "shards": shards,
        "routed_per_shard": routed,
        "shard_sizes": cache.shard_sizes(),
        "imbalance_max_over_mean": round(max(routed) / (n_keys / shards), 3),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="current",
                        help="entry name in the JSON (seed | current | ...)")
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--requests", type=int, default=48,
                        help="mixed-workload request count")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int,
                        default=max(2, min(4, os.cpu_count() or 1)))
    parser.add_argument("--executor", nargs="+", choices=EXECUTORS,
                        default=list(EXECUTORS),
                        help="throughput flavours to run (results merge "
                        "into the label, so partial runs compose; the "
                        "dedup/shard sections ride with 'serial', the "
                        "transport A/B with 'process')")
    parser.add_argument("--transport", choices=("auto", "shm", "pipe"),
                        default="auto",
                        help="pin the mixed-workload process pool to one "
                        "transport (the A/B section always runs both)")
    parser.add_argument("--skip-transport-bench", action="store_true",
                        help="skip the shm-vs-pipe A/B section (used by "
                        "the pipe-pinned CI smoke so only the shm smoke "
                        "records the A/B keys)")
    args = parser.parse_args()

    dataset = make_dataset("brain_tumor1", "train", image_size=IMAGE_SIZE,
                           seed=0, counts={0: args.requests,
                                           1: args.requests})
    images = dataset.images[:args.requests]
    labels = dataset.labels[:args.requests]
    num_classes = dataset.num_classes
    in_channels = dataset.image_shape[0]
    classifier, _ = serve_spec(num_classes, in_channels).materialize()

    make_executor_fns = {
        "serial": lambda: "serial",
        "threaded": lambda: ThreadedExecutor(workers=args.workers),
        "process": lambda: ProcessExecutor(
            serve_spec(num_classes, in_channels), workers=args.workers,
            transport=args.transport),
    }
    rps = {}
    for flavour in args.executor:
        rps[flavour], plan_stats = throughput(
            num_classes, in_channels, images, labels,
            make_executor_fns[flavour], args.repeats)
        print(f"mixed workload ({args.requests} reqs, 4 methods): "
              f"{flavour:8s} {rps[flavour]:7.1f} req/s "
              f"({os.cpu_count()} cpu, {args.workers} workers)")
        if plan_stats is not None:
            # The in-process plan cache; process-pool runs replay on the
            # workers' per-replica caches (engine-side counters stay 0).
            print(f"    plans: compiled={plan_stats['compiled']} "
                  f"replay_hits={plan_stats['replay_hits']} "
                  f"fallbacks={plan_stats['fallbacks']} "
                  f"arena={plan_stats['arena_bytes'] / 1024:.0f}KiB")

    doc = {}
    if os.path.exists(args.out):
        with open(args.out) as fh:
            doc = json.load(fh)
    # Merge into the label's entry rather than replacing it, so the
    # `admission` section bench_admission.py writes for the same label
    # — and the rps keys of flavours run by a previous partial
    # invocation (CI's dedicated `--executor process` smoke) — survive.
    entry = doc.setdefault(args.label, {})
    entry.update({f"{flavour}_rps": round(value, 2)
                  for flavour, value in rps.items()})

    if "process" in args.executor and not args.skip_transport_bench:
        entry["transport"] = transport_workload(
            num_classes, in_channels, args.workers, args.repeats)

    if "serial" in args.executor:
        dedup = dedup_workload(classifier, images, labels,
                               unique=min(8, args.requests), repeats=4)
        print(f"dedup workload: {dedup['total_requests']} requests -> "
              f"{dedup['computed']} computed (exactly once per unique), "
              f"{dedup['dedup_fanouts']} dedup fan-outs + "
              f"{dedup['cache_hits']} cache hits "
              f"({dedup['dedup_hit_rate']:.0%} duplicate traffic absorbed)")
        balance = shard_balance()
        print(f"shard balance (routed keys): {balance['routed_per_shard']} "
              f"(max/mean {balance['imbalance_max_over_mean']:.2f})")
        entry["dedup"] = dedup
        entry["shard_balance"] = balance

    # Speedups derive from whatever the merged entry now holds, so a
    # process-only rerun refreshes process_speedup against the stored
    # serial baseline instead of dropping it.
    serial_rps = entry.get("serial_rps")
    for flavour in ("threaded", "process"):
        flavour_rps = entry.get(f"{flavour}_rps")
        if serial_rps and flavour_rps:
            entry[f"{flavour}_speedup"] = round(flavour_rps / serial_rps, 3)
            print(f"{flavour} vs serial: {entry[f'{flavour}_speedup']:.2f}x")
    entry.update({
        "pool_workers": args.workers,
        "cpu_count": os.cpu_count(),
        "requests": args.requests,
        "image_size": IMAGE_SIZE,
        "classifier_width": WIDTH,
        "python": platform.python_version(),
        "numpy": np.__version__,
    })
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
