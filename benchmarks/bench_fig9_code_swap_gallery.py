"""Fig. 9: synthetic cases combining IS and CS codes across classes.

Semantic coherency: ``G(c_B, s_A)`` keeps A's individual structure while
carrying B's class features.  We save the montage arrays and verify the
classifier assigns the CS-donor's class while the synthetic image stays
closer to the IS-donor in pixel space.
"""

import os

import numpy as np
import pytest

from common import (BENCH_DATASETS, RESULTS_DIR, format_table, get_context,
                    write_result)

_ROWS = []


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_fig9_code_swap(dataset, benchmark):
    ctx = get_context(dataset)
    test = ctx.test_set
    normal = test.images[test.labels == 0][:4]
    abnormal = test.images[test.labels != 0][:4]
    abnormal_labels = test.labels[test.labels != 0][:4]

    swapped_to_abnormal, swapped_to_normal = benchmark(
        lambda: ctx.cae.swap_codes(abnormal, normal))
    # swap_codes(a, b) -> (G(c_b, s_a), G(c_a, s_b)):
    # first output keeps abnormal IS with normal CS, second the reverse.

    pred_to_normal = ctx.classifier.predict(swapped_to_abnormal)
    pred_to_abnormal = ctx.classifier.predict(swapped_to_normal)

    # Identity preservation: synthetic closer to its IS donor than CS donor.
    dist_is = np.abs(swapped_to_normal - normal).mean()
    dist_cs = np.abs(swapped_to_normal - abnormal).mean()

    rows = [
        ("abnormal IS + normal CS -> pred normal",
         f"{(pred_to_normal == 0).mean():.1%}"),
        ("normal IS + abnormal CS -> pred abnormal",
         f"{np.isin(pred_to_abnormal, abnormal_labels).mean():.1%}"),
        ("pixel dist to IS donor", f"{dist_is:.4f}"),
        ("pixel dist to CS donor", f"{dist_cs:.4f}"),
    ]
    _ROWS.append((dataset, rows[0][1], rows[1][1]))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    np.savez(os.path.join(RESULTS_DIR, f"fig9_{dataset}.npz"),
             normal=normal, abnormal=abnormal,
             abnormal_is_normal_cs=swapped_to_abnormal,
             normal_is_abnormal_cs=swapped_to_normal)
    text = format_table(f"Fig 9 ({dataset}) — CS/IS recombination checks",
                        ("check", "value"), rows)
    write_result(f"fig9_{dataset}", text)

    # Shape report: identity preservation (closer to IS donor).
    status = "PASS" if dist_is < dist_cs else "MARGINAL"
    print(f"[shape] {dataset}: dist_is {dist_is:.4f} vs dist_cs "
          f"{dist_cs:.4f} -> {status}")
