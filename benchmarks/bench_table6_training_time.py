"""Table VI: training-time comparison of the four generative methods.

We measure the wall time of a fixed, small training budget for each
method (same budget CAE uses), then report it scaled to the method's
full benchmark budget.  The paper's finding is a *relative* one — CAE
needs the least training of the four generative approaches on every
dataset; StyLEx and LAGAN the most (they train on top of an already
expensive generator / per-lesion supervision).
"""

import time

import pytest

from common import BENCH_DATASETS, BENCH_SCALE, format_table, get_context, \
    write_result

from repro.core import train_cae
from repro.explain import train_icam, train_lagan, train_stylex

PROBE_ITERATIONS = 6    # per-method probe budget (GAN steps)
PROBE_EPOCHS = 1

_ROWS = []


def _probe_times(ctx):
    """Seconds per training unit for each generative method."""
    train = ctx.train_set
    timings = {}

    start = time.perf_counter()
    train_cae(train, iterations=PROBE_ITERATIONS, config=ctx.config)
    timings["cae"] = (time.perf_counter() - start) / PROBE_ITERATIONS

    start = time.perf_counter()
    train_icam(train, iterations=PROBE_ITERATIONS, config=ctx.config)
    timings["icam"] = (time.perf_counter() - start) / PROBE_ITERATIONS

    start = time.perf_counter()
    train_stylex(train, ctx.classifier, epochs=PROBE_EPOCHS)
    timings["stylex"] = time.perf_counter() - start

    start = time.perf_counter()
    train_lagan(train, ctx.classifier, epochs=PROBE_EPOCHS)
    timings["lagan"] = time.perf_counter() - start
    return timings


@pytest.mark.parametrize("dataset", BENCH_DATASETS[:2])
def test_table6_training_time(dataset, benchmark):
    ctx = get_context(dataset)
    timings = _probe_times(ctx)

    # Full-budget projections: GAN methods x benchmark iterations; the
    # epoch methods x their benchmark epochs.
    projected = {
        "icam": timings["icam"] * BENCH_SCALE.cae_iterations,
        "lagan": timings["lagan"] * BENCH_SCALE.aux_epochs,
        "stylex": timings["stylex"] * BENCH_SCALE.aux_epochs,
        "cae": timings["cae"] * BENCH_SCALE.cae_iterations,
    }
    _ROWS.append((dataset,) + tuple(f"{projected[m]:.1f}"
                                    for m in ("icam", "lagan", "stylex",
                                              "cae")))
    text = format_table(
        f"Table VI ({dataset}) — projected training time (s) at the "
        "benchmark budget",
        ("ICAM-reg", "LAGAN", "StyLEx", "CAE (ours)"),
        [tuple(f"{projected[m]:.1f}" for m in ("icam", "lagan", "stylex",
                                               "cae"))])
    write_result(f"table6_{dataset}", text)

    # Benchmark one BBCFE training step (CAE's training unit cost).
    from repro.core import CAEModel, CAETrainer
    model = CAEModel(ctx.train_set.num_classes, ctx.config)
    trainer = CAETrainer(model, ctx.config)
    benchmark(lambda: trainer.fit(ctx.train_set, iterations=1,
                                  batch_size=4))


def test_table6_summary(benchmark):
    if not _ROWS:
        pytest.skip("no per-dataset rows")
    text = format_table("Table VI — summary (projected training seconds)",
                        ("dataset", "ICAM-reg", "LAGAN", "StyLEx",
                         "CAE (ours)"), _ROWS)
    write_result("table6_summary", text)
    benchmark(lambda: None)
