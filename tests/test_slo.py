"""Tests for the request-context layer: priority classes, deadlines,
tenants, SLO-aware flush ordering, and context carriage through both
process-pool transports."""

import json
import os
import subprocess
import sys
import time

import numpy as np
import pytest
from conftest import GatedExplainer, StubExplainer
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explain.base import SaliencyResult
from repro.serve import (DeadlineExceeded, EngineOverloaded, ExplainEngine,
                         MicroBatchScheduler, ProcessExecutor, RequestContext,
                         SaliencyCache, SaliencyStore, ShardedSaliencyCache,
                         ThreadedExecutor, demo_spec, have_shared_memory,
                         pack_ctxs, unpack_ctxs)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _img(i: int, side: int = 4) -> np.ndarray:
    return np.full((1, side, side), float(i), dtype=np.float32)


def _key(i: int):
    return (f"digest-{i:04d}", "m", 0, None)


def _result(value: float = 1.0) -> SaliencyResult:
    return SaliencyResult(np.full((4, 4), value), 0)


# ----------------------------------------------------------------------
# RequestContext itself
# ----------------------------------------------------------------------
class TestRequestContext:
    def test_defaults_and_validation(self):
        ctx = RequestContext()
        assert ctx.priority == "normal"
        assert ctx.deadline is None and ctx.tenant is None
        assert ctx.trace_id
        with pytest.raises(ValueError):
            RequestContext(priority="urgent")

    def test_ensure_normalizes(self):
        assert RequestContext.ensure(None).priority == "normal"
        assert RequestContext.ensure("bulk").priority == "bulk"
        ctx = RequestContext(tenant="t")
        assert RequestContext.ensure(ctx) is ctx
        with pytest.raises(TypeError):
            RequestContext.ensure(42)

    def test_with_timeout_and_expiry(self):
        ctx = RequestContext.with_timeout(10_000)
        assert not ctx.expired()
        assert 0 < ctx.remaining_ms() <= 10_000
        dead = RequestContext(deadline=time.monotonic() - 0.001)
        assert dead.expired()

    def test_stamp_is_set_if_unset(self):
        ctx = RequestContext().stamp("admitted")
        first = ctx.admitted_at
        assert first is not None
        assert ctx.stamp("admitted").admitted_at == first

    def test_latency_needs_both_ends(self):
        ctx = RequestContext()
        assert ctx.latency_ms() is None
        ctx.stamp("admitted").stamp("resolved")
        assert ctx.latency_ms() >= 0.0


# ----------------------------------------------------------------------
# Scheduler ordering properties
# ----------------------------------------------------------------------
class TestFlushOrdering:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(["interactive", "normal", "bulk"]),
                    min_size=1, max_size=24))
    def test_fifo_never_inverted_within_one_class(self, classes):
        # Property: whatever the class mix, flattening the popped
        # batches preserves each class's submission order exactly.
        sched = MicroBatchScheduler(max_batch=3)
        for i, cls in enumerate(classes):
            sched.enqueue("m", _img(i), 0, None, _key(i), object(),
                          ctx=RequestContext(priority=cls))
        batches, expired = sched.pop_batches()
        assert not expired
        popped = {"interactive": [], "normal": [], "bulk": []}
        for queue_key, requests in batches:
            popped[queue_key[2]].extend(
                int(r.key[0].split("-")[1]) for r in requests)
        for cls in popped:
            want = [i for i, c in enumerate(classes) if c == cls]
            assert popped[cls] == want, f"FIFO inverted within {cls}"

    def test_fresh_queues_pop_interactive_before_bulk(self):
        sched = MicroBatchScheduler(max_batch=8)
        for i, cls in enumerate(["bulk", "normal", "interactive"]):
            sched.enqueue("m", _img(i), 0, None, _key(i), object(),
                          ctx=RequestContext(priority=cls))
        batches, _ = sched.pop_batches()
        assert [qk[2] for qk, _ in batches] == ["interactive", "normal",
                                                "bulk"]

    def test_aged_bulk_outranks_fresh_interactive(self):
        # A bulk queue that has waited >> rank_gap * aging_ms must pop
        # before a fresh interactive queue: floods delay bulk, never
        # starve it.
        sched = MicroBatchScheduler(max_batch=8, aging_ms=10.0)
        req, _, _ = sched.enqueue("m", _img(0), 0, None, _key(0),
                                  object(),
                                  ctx=RequestContext(priority="bulk"))
        req.enqueued_at -= 0.100           # 10 rank-steps of aging
        sched.enqueue("m", _img(1), 0, None, _key(1), object(),
                      ctx=RequestContext(priority="interactive"))
        batches, _ = sched.pop_batches()
        assert [qk[2] for qk, _ in batches] == ["bulk", "interactive"]

    def test_priority_off_keeps_insertion_order(self):
        sched = MicroBatchScheduler(max_batch=8, priority=False)
        for i, cls in enumerate(["bulk", "interactive"]):
            sched.enqueue("m", _img(i), 0, None, _key(i), object(),
                          ctx=RequestContext(priority=cls))
        batches, _ = sched.pop_batches()
        assert [qk[2] for qk, _ in batches] == ["bulk", "interactive"]


class TestDedupMerge:
    def test_more_urgent_attach_promotes_queued_request(self):
        sched = MicroBatchScheduler(max_batch=8)
        first, _, _ = sched.enqueue("m", _img(0), 0, None, _key(0),
                                    object(),
                                    ctx=RequestContext(priority="bulk"))
        attached, deduped, _ = sched.enqueue(
            "m", _img(0), 0, None, _key(0), object(),
            ctx=RequestContext(priority="interactive"))
        assert deduped and attached is first
        assert first.ctx.priority == "interactive"
        assert first.queue_key[2] == "interactive"
        assert sched.promotions == 1
        batches, _ = sched.pop_batches()
        assert [qk[2] for qk, _ in batches] == ["interactive"]
        assert len(batches[0][1][0].handles) == 2

    def test_less_urgent_attach_never_demotes(self):
        sched = MicroBatchScheduler(max_batch=8)
        first, _, _ = sched.enqueue(
            "m", _img(0), 0, None, _key(0), object(),
            ctx=RequestContext(priority="interactive"))
        sched.enqueue("m", _img(0), 0, None, _key(0), object(),
                      ctx=RequestContext(priority="bulk"))
        assert first.ctx.priority == "interactive"
        assert sched.promotions == 0

    def test_dedup_deadline_loosest_wins(self):
        sched = MicroBatchScheduler(max_batch=8)
        tight = RequestContext.with_timeout(50)
        first, _, _ = sched.enqueue("m", _img(0), 0, None, _key(0),
                                    object(), ctx=tight)
        loose = RequestContext.with_timeout(5_000)
        sched.enqueue("m", _img(0), 0, None, _key(0), object(), ctx=loose)
        assert first.ctx.deadline == loose.deadline
        # An undeadlined handle must get its result: None dominates.
        sched.enqueue("m", _img(0), 0, None, _key(0), object(),
                      ctx=RequestContext())
        assert first.ctx.deadline is None


# ----------------------------------------------------------------------
# Deadlines end to end
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_request_never_reaches_executor(self):
        stub = StubExplainer()
        engine = ExplainEngine(None, {"stub": stub}, max_batch=8,
                               executor="serial")
        with engine:
            ctx = RequestContext.with_timeout(15, priority="interactive",
                                              tenant="acme")
            handle = engine.submit_async(_img(0), 0, "stub", ctx=ctx)
            time.sleep(0.03)               # deadline passes while queued
            engine.kick()                  # sweep resolves it
            with pytest.raises(DeadlineExceeded) as err:
                handle.result()
            assert err.value.ctx is ctx
            assert stub.computed == 0      # no executor dispatch
            stats = engine.stats()
            assert stats["deadline_expired"] == 1
            assert stats["tenants"]["acme"]["deadline_expired"] == 1
            assert stats["unresolved"] == 0

    def test_dead_on_arrival_is_resolved_without_queueing(self):
        stub = StubExplainer()
        engine = ExplainEngine(None, {"stub": stub}, max_batch=8,
                               executor="serial")
        with engine:
            ctx = RequestContext(deadline=time.monotonic() - 0.01)
            handle = engine.submit_async(_img(0), 0, "stub", ctx=ctx)
            assert handle.done
            with pytest.raises(DeadlineExceeded):
                handle.result()
            assert stub.computed == 0
            assert engine.stats()["queues"] == {}

    def test_expiry_frees_admission_slot_without_compute(self):
        stub = StubExplainer()
        engine = ExplainEngine(None, {"stub": stub}, max_batch=8,
                               max_pending=1, policy="reject",
                               executor="serial")
        with engine:
            engine.submit_async(_img(0), 0, "stub",
                                ctx=RequestContext.with_timeout(15))
            with pytest.raises(EngineOverloaded):
                engine.submit_async(_img(1), 0, "stub")
            time.sleep(0.03)
            engine.kick()                  # expiry releases the slot
            survivor = engine.submit_async(_img(2), 0, "stub")
            engine.drain()
            assert survivor.result().label == 0
            assert stub.computed == 1      # only the survivor computed

    def test_drain_sweeps_expired_without_kick(self):
        stub = StubExplainer()
        engine = ExplainEngine(None, {"stub": stub}, max_batch=8,
                               executor="serial")
        with engine:
            handle = engine.submit_async(
                _img(0), 0, "stub", ctx=RequestContext.with_timeout(10))
            live = engine.submit_async(_img(1), 0, "stub")
            time.sleep(0.03)
            engine.drain()
            with pytest.raises(DeadlineExceeded):
                handle.result()
            assert live.result().label == 0
            assert stub.computed == 1


# ----------------------------------------------------------------------
# kick(): capacity-throttled, priority-ordered dispatch
# ----------------------------------------------------------------------
class TestKickThrottle:
    def test_kick_dispatches_interactive_first_up_to_capacity(self):
        ga, gb = GatedExplainer(), GatedExplainer()
        engine = ExplainEngine(None, {"a": ga, "b": gb}, max_batch=8,
                               max_delay_ms=1.0,
                               executor=ThreadedExecutor(workers=1))
        try:
            engine.submit_async(_img(0), 0, "a", ctx="bulk")
            engine.submit_async(_img(1), 0, "b", ctx="interactive")
            time.sleep(0.01)               # both queues past max_delay
            assert engine.kick() == 1      # capacity 1: one batch only
            assert gb.entered.wait(timeout=5)   # ... the interactive one
            assert not ga.entered.is_set()
            assert engine.kick() == 0      # worker busy: nothing launched
            ga.release.set()
            gb.release.set()
            engine.drain()                 # unthrottled: bulk runs now
            assert ga.computed == 1 and gb.computed == 1
        finally:
            ga.release.set()
            gb.release.set()
            engine.close()


# ----------------------------------------------------------------------
# Operator stats: queues, tenants
# ----------------------------------------------------------------------
class TestStats:
    def test_queue_stats_depth_and_age(self):
        sched = MicroBatchScheduler(max_batch=8)
        for i in range(2):
            sched.enqueue("m", _img(i), 0, None, _key(i), object(),
                          ctx=RequestContext(priority="interactive"))
        sched.enqueue("other", _img(9, side=6), 0, None, _key(9),
                      object(), ctx=RequestContext(priority="bulk"))
        stats = sched.queue_stats()
        assert set(stats) == {"m@1x4x4#interactive", "other@1x6x6#bulk"}
        inter = stats["m@1x4x4#interactive"]
        assert inter["depth"] == 2 and inter["handles"] == 2
        assert inter["oldest_ms"] >= 0.0
        assert inter["limit"] == 8
        assert sched.queue_stats() != {} and sched.pop_batches()
        assert sched.queue_stats() == {}   # empty queues are elided

    def test_engine_stats_expose_queues_and_tenants(self):
        stub = StubExplainer()
        engine = ExplainEngine(None, {"stub": stub}, max_batch=8,
                               executor="serial")
        with engine:
            engine.submit_async(_img(0), 0, "stub",
                                ctx=RequestContext(tenant="acme"))
            stats = engine.stats()
            assert stats["queues"]["stub@1x4x4#normal"]["depth"] == 1
            assert stats["priority"] is True
            engine.drain()
            stats = engine.stats()
            assert stats["tenants"]["acme"]["served"] == 1
            # The duplicate resolves from cache: tenant hit recorded.
            engine.submit_async(_img(0), 0, "stub",
                                ctx=RequestContext(tenant="acme"))
            engine.drain()
            assert engine.stats()["tenants"]["acme"]["served"] == 2

    def test_cache_counts_tenant_hits(self):
        cache = SaliencyCache(capacity=4)
        cache.put(_key(0), _result())
        assert cache.get(_key(0), tenant="acme") is not None
        assert cache.get(_key(0)) is not None          # anonymous: uncounted
        assert cache.stats()["tenant_hits"] == {"acme": 1}
        sharded = ShardedSaliencyCache(capacity=8, shards=2)
        sharded.put(_key(1), _result())
        sharded.get(_key(1), tenant="globex")
        sharded.get(_key(1), tenant="globex")
        assert sharded.stats()["tenant_hits"] == {"globex": 2}

    def test_store_counts_tenant_hits(self, tmp_path):
        store = SaliencyStore(str(tmp_path / "store"))
        try:
            store.put(_key(0), _result())
            store.flush()
            assert store.get(_key(0), tenant="acme") is not None
            assert store.get(_key(0)) is not None
            assert store.stats()["tenant_hits"] == {"acme": 1}
        finally:
            store.close()

    def test_store_flush_deadline_uses_monotonic_clock(self):
        # PRs 7/8 computed the flush timeout from os.times().elapsed,
        # whose resolution is a whole clock tick (10 ms); pin the fix.
        with open(os.path.join(REPO_ROOT, "src", "repro", "serve",
                               "store.py")) as fh:
            source = fh.read()
        for line in source.splitlines():   # comments may mention it
            assert "os.times" not in line.split("#", 1)[0]


# ----------------------------------------------------------------------
# Context carriage over the process-pool transports
# ----------------------------------------------------------------------
class TestTransportCarriage:
    def test_pack_ctxs_elides_contextless_batches(self):
        assert pack_ctxs(None) is None
        assert pack_ctxs([None, None]) is None
        ctx = RequestContext(priority="bulk", tenant="acme")
        wire = pack_ctxs([ctx, None])
        assert wire == (("bulk", None, "acme", ctx.trace_id), None)
        assert unpack_ctxs(wire) == wire
        assert unpack_ctxs(None) is None

    @pytest.mark.parametrize("transport", [
        "pipe",
        pytest.param("shm", marks=pytest.mark.skipif(
            not have_shared_memory(),
            reason="multiprocessing.shared_memory unavailable")),
    ])
    def test_worker_stamps_ride_both_transports(self, transport):
        spec = demo_spec(("gradcam",), width=8)
        executor = ProcessExecutor(spec, workers=1, transport=transport)
        try:
            rng = np.random.default_rng(3)
            images = rng.standard_normal((2, 1, 16, 16)) \
                .astype(np.float32)
            labels = np.zeros(2, dtype=np.int64)
            ctxs = [RequestContext(priority="interactive",
                                   tenant="acme"),
                    RequestContext(priority="bulk", tenant="globex")]
            results, batch_ms = executor.run_batch(
                "gradcam", images, labels, None, ctxs=ctxs)
            assert len(results) == 2 and batch_ms >= 0.0
            for ctx in ctxs:
                assert ctx.worker_pid is not None
                assert ctx.worker_pid != os.getpid()
                assert ctx.worker_recv_at <= ctx.worker_done_at
            # Context-free traffic still runs (and stamps nothing).
            bare, _ = executor.run_batch("gradcam", images, labels, None)
            assert len(bare) == 2
            (stats,) = executor.worker_stats()
            assert stats["tenants"] == {"acme": 1, "globex": 1}
            assert stats["priorities"] == {"interactive": 1, "bulk": 1}
        finally:
            executor.shutdown()

    @pytest.mark.skipif(not have_shared_memory(),
                        reason="shared memory unavailable")
    def test_transport_parity_of_stamped_fields(self):
        # Identical batch through pipe and shm: both transports must
        # deliver the same stamped shape of context (parity pin for the
        # conditional wire extension).
        spec = demo_spec(("gradcam",), width=8)
        images = np.random.default_rng(5).standard_normal(
            (1, 1, 16, 16)).astype(np.float32)
        labels = np.zeros(1, dtype=np.int64)
        stamped = {}
        for transport in ("pipe", "shm"):
            executor = ProcessExecutor(spec, workers=1,
                                       transport=transport)
            try:
                ctx = RequestContext(tenant="t")
                executor.run_batch("gradcam", images, labels, None,
                                   ctxs=[ctx])
                stamped[transport] = (ctx.worker_pid is not None,
                                      ctx.worker_recv_at is not None,
                                      ctx.worker_done_at is not None)
            finally:
                executor.shutdown()
        assert stamped["pipe"] == stamped["shm"] == (True, True, True)


# ----------------------------------------------------------------------
# explain_batch spawns per-element contexts
# ----------------------------------------------------------------------
class TestBatchContext:
    def test_explain_batch_spawns_per_element_stamps(self):
        stub = StubExplainer()
        engine = ExplainEngine(None, {"stub": stub}, max_batch=8,
                               executor="serial")
        with engine:
            template = RequestContext(priority="bulk", tenant="acme")
            images = np.stack([_img(0), _img(1)])
            results = engine.explain_batch(images, np.zeros(2, np.int64),
                                           "stub", ctx=template)
            assert len(results) == 2
            stats = engine.stats()
            assert stats["tenants"]["acme"]["served"] == 2
            # The template itself was never stamped (spawn() copies).
            assert template.admitted_at is None


# ----------------------------------------------------------------------
# check_bench gates the SLO keys
# ----------------------------------------------------------------------
class TestCheckBenchGate:
    SCRIPT = os.path.join(REPO_ROOT, "tools", "check_bench.py")

    def test_self_check_passes(self):
        proc = subprocess.run([sys.executable, self.SCRIPT,
                               "--self-check"],
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr

    def test_p95_regression_fails_the_gate(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(
            {"current": {"slo": {"interactive_p95_ms": 10.0}}}))
        cur.write_text(json.dumps(
            {"ci": {"slo": {"interactive_p95_ms": 100.0}}}))
        proc = subprocess.run(
            [sys.executable, self.SCRIPT, str(base), str(cur),
             "--current-label", "ci"],
            capture_output=True, text=True)
        assert proc.returncode == 1
        assert "interactive_p95_ms" in proc.stdout + proc.stderr

    def test_committed_baseline_has_slo_section(self):
        with open(os.path.join(REPO_ROOT, "BENCH_serve.json")) as fh:
            doc = json.load(fh)
        slo = doc["current"]["slo"]
        for cls in ("interactive", "normal", "bulk"):
            assert f"{cls}_p95_ms" in slo and f"{cls}_p99_ms" in slo
        assert "deadline_miss_rate" in slo
        assert "priority_on_served_rps" in slo
