"""Tests for the sharded/deduplicating/async ``repro.serve`` runtime:
cache shards, scheduler dedup fan-out, executors, heterogeneous-shape
queues, and the thread-safety substrate they rely on."""

import threading
import zlib

import numpy as np
import pytest
from conftest import FlakyExplainer, GatedExplainer, StubExplainer

from repro import nn
from repro.explain import GradCAMExplainer, OcclusionExplainer
from repro.explain.base import Explainer, SaliencyResult
from repro.serve import (ExplainEngine, SaliencyCache, SerialExecutor,
                         ShardedSaliencyCache, ThreadedExecutor,
                         image_digest, make_executor, request_key)


def _keys_for_shard(shard: int, shards: int, count: int):
    """Deterministically craft cache keys whose digests route to one
    shard (the cache routes on ``crc32(digest) % shards``)."""
    keys = []
    i = 0
    while len(keys) < count:
        digest = f"digest-{i}"
        if zlib.crc32(digest.encode()) % shards == shard:
            keys.append((digest, "m", 0, None))
        i += 1
    return keys


def _result(value: float = 1.0) -> SaliencyResult:
    return SaliencyResult(np.full((4, 4), value), 0)


class TestShardedSaliencyCache:
    def test_same_key_routes_to_same_shard(self):
        cache = ShardedSaliencyCache(capacity=16, shards=4)
        key = ("abc123", "gradcam", 1, None)
        cache.put(key, _result())
        assert key in cache
        assert cache.get(key) is not None
        assert cache.hits == 1

    def test_sizes_and_eviction_accounting_aggregate(self):
        cache = ShardedSaliencyCache(capacity=16, shards=4)
        for i in range(40):
            cache.put((f"d{i}", "m", 0, None), _result(i))
        assert len(cache) == sum(cache.shard_sizes())
        assert cache.inserts == 40
        assert cache.evictions == cache.inserts - len(cache)
        for shard, size in zip(cache.shards, cache.shard_sizes()):
            assert size <= shard.capacity
        stats = cache.stats()
        assert stats["shards"] == 4
        assert stats["size"] == len(cache)
        assert stats["shard_sizes"] == cache.shard_sizes()

    def test_per_shard_lru_eviction(self):
        # capacity 8 over 4 shards -> 2 entries per shard; 5 keys all
        # crafted onto shard 1 must leave the 2 most recent, 3 evicted,
        # and every other shard untouched.
        cache = ShardedSaliencyCache(capacity=8, shards=4)
        keys = _keys_for_shard(1, 4, 5)
        for i, key in enumerate(keys):
            cache.put(key, _result(i))
        assert cache.shard_sizes()[1] == 2
        assert sum(cache.shard_sizes()) == 2
        assert cache.evictions == 3
        assert keys[-1] in cache and keys[-2] in cache
        assert keys[0] not in cache

    def test_shards_clamped_to_capacity(self):
        cache = ShardedSaliencyCache(capacity=2, shards=8)
        assert len(cache.shards) == 2

    def test_capacity_split_evenly(self):
        cache = ShardedSaliencyCache(capacity=10, shards=4)
        assert sorted(s.capacity for s in cache.shards) == [2, 2, 3, 3]
        assert sum(s.capacity for s in cache.shards) == 10

    def test_single_shard_matches_plain_lru(self):
        sharded = ShardedSaliencyCache(capacity=2, shards=1)
        plain = SaliencyCache(capacity=2)
        keys = [(f"d{i}", "m", 0, None) for i in range(3)]
        for i, key in enumerate(keys):
            sharded.put(key, _result(i))
            plain.put(key, _result(i))
        assert (keys[0] in sharded) == (keys[0] in plain) is False
        assert sharded.evictions == plain.evictions == 1


@pytest.fixture()
def engine(tiny_classifier):
    return ExplainEngine(
        tiny_classifier,
        {"gradcam": GradCAMExplainer(tiny_classifier),
         "occlusion": OcclusionExplainer(tiny_classifier, window=4,
                                         stride=4)},
        max_batch=4, cache_size=32, cache_shards=4)


@pytest.fixture()
def sample(tiny_test_set):
    return tiny_test_set.images, tiny_test_set.labels


class TestDedup:
    def test_duplicate_submits_share_one_computation(self, engine, sample):
        images, labels = sample
        handles = [engine.submit(images[0], int(labels[0]), "gradcam")
                   for _ in range(3)]
        assert engine.pending_count("gradcam") == 1      # one unique
        assert engine.stats()["dedup_hits"] == 2
        assert engine.stats()["pending_handles"] == 3
        engine.flush("gradcam")
        results = [h.result() for h in handles]
        assert results[0] is results[1] is results[2]    # fanned out
        stats = engine.stats()
        assert stats["batches_run"] == 1
        assert stats["requests_served"] == 3
        assert stats["cache_inserts"] == 1

    def test_explain_batch_duplicates_computed_once(self, engine, sample):
        images, labels = sample
        batch = images[[0, 0, 1]]
        labs = labels[[0, 0, 1]]
        results = engine.explain_batch(batch, labs, "occlusion")
        assert len(results) == 3
        assert results[0] is results[1]
        stats = engine.stats()
        assert stats["batches_run"] == 1                 # 2 unique, 1 batch
        assert stats["dedup_hits"] == 1
        assert stats["cache_inserts"] == 2

    def test_different_label_or_target_not_deduped(self, engine, sample):
        images, labels = sample
        engine.submit(images[0], 0, "gradcam")
        engine.submit(images[0], 1, "gradcam")
        engine.submit(images[0], 0, "gradcam", target_label=1)
        assert engine.pending_count("gradcam") == 3
        assert engine.stats()["dedup_hits"] == 0

    def test_duplicate_of_inflight_batch_attaches(self, tiny_classifier,
                                                  sample):
        """A duplicate arriving while its twin's batch is running on a
        worker must attach to the in-flight request, not recompute."""
        release = threading.Event()
        entered = threading.Event()
        computed = {"images": 0}

        class Blocking(Explainer):
            name = "block"

            def explain_batch(self, images, labels, target_labels=None):
                computed["images"] += len(images)
                entered.set()
                assert release.wait(timeout=5)
                return [SaliencyResult(np.zeros(images.shape[2:]), int(y))
                        for y in labels]

        images, labels = sample
        with ExplainEngine(tiny_classifier, {"block": Blocking()},
                           max_batch=1, executor="threaded") as engine:
            h1 = engine.submit_async(images[0], int(labels[0]), "block")
            assert entered.wait(timeout=5)       # batch is now in flight
            h2 = engine.submit_async(images[0], int(labels[0]), "block")
            release.set()
            assert engine.drain() == 2
            assert computed["images"] == 1       # exactly one pass
            assert h1.result() is h2.result()
            stats = engine.stats()
            assert stats["dedup_hits"] == 1
            assert stats["requests_served"] == 2

    def test_dedup_result_carries_digest(self, engine, sample):
        images, labels = sample
        result = engine.explain(images[0], int(labels[0]), "gradcam")
        expected = request_key(images[0], "gradcam", int(labels[0]), None)
        assert result.image_digest == expected[0]


class TestDigestOncePerRequest:
    def test_submit_hashes_each_image_once(self, engine, sample,
                                           monkeypatch):
        import repro.serve.engine as engine_mod
        calls = []
        real = image_digest

        def counting(image):
            calls.append(1)
            return real(image)

        monkeypatch.setattr(engine_mod, "image_digest", counting)
        images, labels = sample
        engine.explain(images[0], int(labels[0]), "gradcam")
        assert len(calls) == 1                 # submit + insert share it
        engine.explain(images[0], int(labels[0]), "gradcam")
        assert len(calls) == 2                 # cache hit: one more probe


class _ShapeStub(Explainer):
    name = "stub"

    def explain_batch(self, images, labels, target_labels=None):
        return [SaliencyResult(np.full(images.shape[2:], images.shape[-1],
                                       dtype=float), int(y))
                for y in labels]


class TestHeterogeneousShapes:
    def test_shape_queues_flush_independently(self, tiny_classifier):
        engine = ExplainEngine(tiny_classifier, {"stub": _ShapeStub()},
                               max_batch=2)
        big = [engine.submit(np.full((1, 16, 16), i, dtype=np.float32),
                             0, "stub") for i in range(1)]
        small = [engine.submit(np.full((1, 8, 8), i, dtype=np.float32),
                               0, "stub") for i in range(1)]
        assert engine.pending_count("stub") == 2
        # Filling the 16x16 queue auto-flushes only that queue.
        big.append(engine.submit(np.full((1, 16, 16), 9, dtype=np.float32),
                                 0, "stub"))
        assert all(h.done for h in big)
        assert not small[0].done
        assert engine.pending_count("stub") == 1
        engine.flush("stub")
        assert small[0].done
        assert small[0].result().saliency.shape == (8, 8)
        assert big[0].result().saliency.shape == (16, 16)
        assert engine.stats()["batches_run"] == 2

    def test_never_stacks_mixed_shapes(self, tiny_classifier):
        seen = []

        class Recorder(Explainer):
            name = "rec"

            def explain_batch(self, images, labels, target_labels=None):
                seen.append(images.shape)
                return [SaliencyResult(np.zeros(images.shape[2:]), int(y))
                        for y in labels]

        engine = ExplainEngine(tiny_classifier, {"rec": Recorder()},
                               max_batch=8)
        for i in range(3):
            engine.submit(np.full((1, 16, 16), i, dtype=np.float32),
                          0, "rec")
        for i in range(2):
            engine.submit(np.full((1, 8, 8), i, dtype=np.float32),
                          0, "rec")
        engine.flush()
        assert sorted(seen) == [(2, 1, 8, 8), (3, 1, 16, 16)]


class TestExecutors:
    def test_make_executor_resolution(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor("serial"), SerialExecutor)
        threaded = make_executor("threaded")
        assert isinstance(threaded, ThreadedExecutor)
        threaded.shutdown()
        with pytest.raises(ValueError):
            make_executor("hyperdrive")

    def test_threaded_default_workers_derive_from_cpu_count(self):
        # Not a hardcoded constant: the default pool sizes to the
        # visible cores, clamped to [1, 8].
        from repro.serve import default_worker_count
        import os as _os
        expected = max(1, min(_os.cpu_count() or 1, 8))
        assert default_worker_count() == expected
        executor = ThreadedExecutor()
        try:
            assert executor.workers == expected
        finally:
            executor.shutdown()
        via_factory = make_executor("threaded")
        try:
            assert via_factory.workers == expected
        finally:
            via_factory.shutdown()
        explicit = ThreadedExecutor(workers=3)
        try:
            assert explicit.workers == 3
        finally:
            explicit.shutdown()

    def test_shutdown_nowait_cancels_queued_futures(self):
        # Regression: shutdown(wait=False) is the fatal-error path —
        # queued-but-unstarted work must be *cancelled*, not left as
        # futures no thread will ever run (a close() after a wedged
        # batch would otherwise hang any caller still waiting on the
        # backlog).
        executor = ThreadedExecutor(workers=1)
        started, release = threading.Event(), threading.Event()

        def blocker():
            started.set()
            return release.wait(10)

        first = executor.submit(blocker)
        assert started.wait(5)               # occupies the lone worker
        backlog = [executor.submit(lambda: None) for _ in range(4)]
        try:
            executor.shutdown(wait=False)
            assert all(f.cancelled() for f in backlog)
        finally:
            release.set()
        assert first.result(timeout=10) is True

    def test_threaded_matches_serial(self, tiny_classifier, sample):
        images, labels = sample

        def build(executor):
            return ExplainEngine(
                tiny_classifier,
                {"gradcam": GradCAMExplainer(tiny_classifier),
                 "occlusion": OcclusionExplainer(tiny_classifier, window=4,
                                                 stride=4)},
                max_batch=3, cache_size=64, cache_shards=4,
                executor=executor)

        serial, threaded = build("serial"), build("threaded")
        with threaded:
            pairs = []
            for i in range(6):
                for m in ("gradcam", "occlusion"):
                    pairs.append((serial.submit_async(images[i],
                                                      int(labels[i]), m),
                                  threaded.submit_async(images[i],
                                                        int(labels[i]), m)))
            assert serial.drain() == threaded.drain() == len(pairs)
            for a, b in pairs:
                np.testing.assert_allclose(a.result().saliency,
                                           b.result().saliency,
                                           rtol=1e-5, atol=1e-6)

    def test_submit_async_resolves_via_handle_result(self, tiny_classifier,
                                                     sample):
        images, labels = sample
        with ExplainEngine(tiny_classifier,
                           {"gradcam": GradCAMExplainer(tiny_classifier)},
                           max_batch=2, executor="threaded") as engine:
            h1 = engine.submit_async(images[0], int(labels[0]), "gradcam")
            h2 = engine.submit_async(images[1], int(labels[1]), "gradcam")
            # Full queue dispatched without blocking; result() waits on
            # the in-flight future (no flush needed).
            assert h1.result().saliency.shape == images[0].shape[1:]
            assert h2.result().label == int(labels[1])
            assert engine.pending_count() == 0

    def test_async_failure_requeues_for_retry(self, tiny_classifier,
                                              sample):
        class Flaky(Explainer):
            name = "flaky"

            def __init__(self):
                self.calls = 0

            def explain_batch(self, images, labels, target_labels=None):
                self.calls += 1
                if self.calls == 1:
                    raise RuntimeError("transient backend failure")
                return [SaliencyResult(np.zeros(images.shape[2:]), int(y))
                        for y in labels]

        images, labels = sample
        with ExplainEngine(tiny_classifier, {"flaky": Flaky()},
                           max_batch=2, executor="threaded") as engine:
            engine.submit_async(images[0], int(labels[0]), "flaky")
            handle = engine.submit_async(images[1], int(labels[1]), "flaky")
            with pytest.raises(RuntimeError, match="transient"):
                engine.drain()
            assert engine.pending_count("flaky") == 2    # requeued
            assert engine.drain() == 2                   # retry succeeds
            assert handle.result().label == int(labels[1])

    def test_drain_empty_engine_is_noop(self, engine):
        assert engine.drain() == 0


def _img(i: int) -> np.ndarray:
    return np.full((1, 4, 4), float(i), dtype=np.float32)


class TestEngineLifecycle:
    def test_close_drains_queued_requests(self):
        """``close()`` must resolve still-queued async requests instead
        of shutting the executor down under them (which silently
        stranded their handles)."""
        engine = ExplainEngine(None, {"instant": StubExplainer()}, max_batch=8,
                               executor="threaded")
        handles = [engine.submit_async(_img(i), 0, "instant")
                   for i in range(3)]          # below max_batch: queued
        assert engine.pending_count() == 3
        engine.close()
        assert all(h.done for h in handles)
        assert engine.pending_count() == 0

    def test_close_drains_inflight_batches(self):
        parked = GatedExplainer()
        engine = ExplainEngine(None, {"parked": parked}, max_batch=1,
                               executor="threaded")
        handle = engine.submit_async(_img(0), 0, "parked")
        assert parked.entered.wait(timeout=5)
        parked.release.set()
        engine.close()
        assert handle.done
        assert handle.result().label == 0

    def test_close_retries_once_then_raises_on_persistent_failure(self):
        broken = FlakyExplainer(failures=None)     # every batch fails
        engine = ExplainEngine(None, {"broken": broken}, max_batch=8)
        engine.submit_async(_img(0), 0, "broken")
        with pytest.raises(RuntimeError, match="backend failure"):
            engine.close()
        assert broken.calls == 2               # initial drain + one retry
        engine.close()                         # idempotent: no re-drain
        assert broken.calls == 2

    def test_close_after_transient_failure_resolves_on_retry(self):
        engine = ExplainEngine(None, {"flaky": FlakyExplainer()}, max_batch=8)
        handle = engine.submit_async(_img(0), 0, "flaky")
        engine.close()                         # retry drain resolves it
        assert handle.result().label == 0


class TestDrainAccounting:
    def test_retry_drain_reports_banked_successes(self):
        """A drain that re-raises must bank the handle counts of the
        batches that *did* resolve, so drain-after-retry reports the
        true total instead of losing them."""
        engine = ExplainEngine(None,
                               {"good": StubExplainer(),
                                "flaky": FlakyExplainer()},
                               max_batch=1)
        engine.submit_async(_img(0), 0, "good")     # dispatches, succeeds
        engine.submit_async(_img(1), 0, "flaky")    # dispatches, fails
        with pytest.raises(RuntimeError, match="transient"):
            engine.drain()
        # The successful batch's count was banked, not discarded: the
        # retry drain reports both handles.
        assert engine.drain() == 2
        assert engine.stats()["requests_served"] == 2


class TestPendingHandleConservation:
    def test_inflight_handles_stay_visible(self):
        """Handles attached to a running batch must not vanish from
        ``stats()['pending_handles']`` mid-flight: every submitted
        handle is pending until the moment it resolves."""
        parked = GatedExplainer()
        engine = ExplainEngine(None, {"parked": parked}, max_batch=1,
                               executor="threaded")
        with engine:
            engine.submit_async(_img(0), 0, "parked")
            assert parked.entered.wait(timeout=5)     # batch in flight
            engine.submit_async(_img(0), 0, "parked")  # dedups onto it
            stats = engine.stats()
            assert stats["pending"] == 0               # queue is empty
            assert stats["pending_handles"] == 2       # but both visible
            parked.release.set()
            assert engine.drain() == 2
            assert engine.stats()["pending_handles"] == 0
            assert engine.stats()["requests_served"] == 2


class TestThreadSafetySubstrate:
    def test_grad_switch_is_thread_local(self):
        observed = {}

        def worker():
            observed["worker"] = nn.is_grad_enabled()

        with nn.no_grad():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert not nn.is_grad_enabled()
        assert observed["worker"] is True      # default, not leaked False
        assert nn.is_grad_enabled()

    def test_frozen_is_reference_counted(self, tiny_classifier):
        params = list(tiny_classifier.parameters())
        assert all(p.requires_grad for p in params)
        with nn.frozen(tiny_classifier):
            assert not any(p.requires_grad for p in params)
            with nn.frozen(tiny_classifier):
                assert not any(p.requires_grad for p in params)
            # Inner exit must not unfreeze while the outer scope holds.
            assert not any(p.requires_grad for p in params)
        assert all(p.requires_grad for p in params)

    def test_frozen_concurrent_scopes_restore_flags(self, tiny_classifier):
        barrier = threading.Barrier(2)
        errors = []

        def hold():
            try:
                with nn.frozen(tiny_classifier):
                    barrier.wait(timeout=5)
                    barrier.wait(timeout=5)
            except Exception as exc:        # pragma: no cover - diagnostic
                errors.append(exc)

        t = threading.Thread(target=hold)
        t.start()
        barrier.wait(timeout=5)             # other thread holds the freeze
        with nn.frozen(tiny_classifier):
            pass                            # overlapping scope exits first
        assert not any(p.requires_grad
                       for p in tiny_classifier.parameters())
        barrier.wait(timeout=5)
        t.join(timeout=5)
        assert not errors
        assert all(p.requires_grad for p in tiny_classifier.parameters())
