"""Unit tests for the synthetic dataset substrate."""

import numpy as np
import pytest

from repro.config import DATASET_NAMES, TABLE1_COUNTS
from repro.data import (DataLoader, ImageDataset, center_crop, load_pair,
                        make_dataset, random_horizontal_flip, resize_bilinear,
                        resize_nearest, table1_counts, to_unit_range,
                        train_test_split)
from repro.data import painting


class TestPainting:
    def test_gaussian_blob_peak_at_center(self):
        blob = painting.gaussian_blob(16, 8, 8, 2, 2)
        assert blob[8, 8] == pytest.approx(blob.max())
        assert blob.max() == pytest.approx(1.0)

    def test_ellipse_mask_inside_outside(self):
        mask = painting.ellipse_mask(32, 16, 16, 8, 8)
        assert mask[16, 16] > 0.9
        assert mask[0, 0] == 0.0

    def test_stroke_on_segment(self):
        line = painting.stroke(16, 8, 2, 8, 13, thickness=1.0)
        assert line[8, 7] > 0.5
        assert line[0, 0] == 0.0

    def test_smooth_noise_bounded(self, rng):
        field = painting.smooth_noise(32, rng, scale=4)
        assert np.abs(field).max() <= 1.0 + 1e-9

    def test_box_blur_preserves_constant(self):
        img = np.full((8, 8), 2.5)
        assert np.allclose(painting.box_blur(img, 2), 2.5)

    def test_box_blur_zero_radius_identity(self, rng):
        img = rng.standard_normal((8, 8))
        assert painting.box_blur(img, 0) is img

    def test_wavy_line_amplitude(self):
        line = painting.wavy_line(64, 32.0, 5.0, 1.0, 0.0)
        assert line.max() <= 37.0 + 1e-9
        assert line.min() >= 27.0 - 1e-9

    def test_vignette_darkens_corners(self):
        v = painting.vignette(32, 0.3)
        assert v[16, 16] > v[0, 0]

    def test_normalize01(self):
        out = painting.normalize01(np.array([-1.0, 0.5, 2.0]))
        assert np.allclose(out, [0.0, 0.5, 1.0])


class TestImageDataset:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ImageDataset(np.zeros((4, 8, 8)), np.zeros(4))

    def test_label_length_validation(self):
        with pytest.raises(ValueError):
            ImageDataset(np.zeros((4, 1, 8, 8)), np.zeros(3))

    def test_getitem_returns_sample(self):
        ds = ImageDataset(np.zeros((2, 1, 4, 4)), np.array([0, 1]),
                          masks=np.zeros((2, 4, 4)))
        sample = ds[1]
        assert sample.label == 1
        assert sample.mask.shape == (4, 4)

    def test_subset_preserves_masks(self):
        ds = ImageDataset(np.zeros((4, 1, 4, 4)), np.array([0, 1, 0, 1]),
                          masks=np.ones((4, 4, 4)))
        sub = ds.subset([0, 2])
        assert len(sub) == 2
        assert sub.masks is not None
        assert np.all(sub.labels == 0)

    def test_class_counts(self):
        ds = ImageDataset(np.zeros((5, 1, 2, 2)),
                          np.array([0, 0, 1, 1, 1]))
        assert list(ds.class_counts()) == [2, 3]

    def test_indices_of_class(self):
        ds = ImageDataset(np.zeros((3, 1, 2, 2)), np.array([0, 1, 0]))
        assert list(ds.indices_of_class(0)) == [0, 2]


class TestDataLoader:
    def _dataset(self, n=10):
        return ImageDataset(np.arange(n * 4, dtype=float).reshape(n, 1, 2, 2),
                            np.arange(n) % 2)

    def test_batches_cover_dataset(self):
        loader = DataLoader(self._dataset(), batch_size=3, shuffle=False)
        total = sum(len(labels) for _, labels in loader)
        assert total == 10

    def test_drop_last(self):
        loader = DataLoader(self._dataset(), batch_size=3, shuffle=False,
                            drop_last=True)
        assert len(loader) == 3
        sizes = [len(labels) for _, labels in loader]
        assert all(s == 3 for s in sizes)

    def test_shuffle_changes_order(self):
        ds = self._dataset(32)
        loader = DataLoader(ds, batch_size=32, shuffle=True,
                            rng=np.random.default_rng(0))
        images, _ = next(iter(loader))
        assert not np.allclose(images, ds.images)

    def test_augment_hook_applied(self):
        calls = []

        def augment(images, rng):
            calls.append(len(images))
            return images
        loader = DataLoader(self._dataset(), batch_size=5, augment=augment)
        list(loader)
        assert sum(calls) == 10


class TestGenerators:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_images_in_unit_range(self, name):
        ds = make_dataset(name, "train", image_size=16, seed=0,
                          counts={0: 3, 1: 3})
        assert ds.images.min() >= 0.0
        assert ds.images.max() <= 1.0

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_abnormal_images_have_masks(self, name):
        ds = make_dataset(name, "train", image_size=16, seed=0,
                          counts={0: 3, 1: 3})
        abnormal_masks = ds.masks[ds.labels == 1]
        assert all(m.max() > 0 for m in abnormal_masks)

    @pytest.mark.parametrize("name", ("oct", "brain_tumor1", "chest_xray"))
    def test_normal_images_have_empty_masks(self, name):
        ds = make_dataset(name, "train", image_size=16, seed=0,
                          counts={0: 3, 1: 3})
        normal_masks = ds.masks[ds.labels == 0]
        assert all(m.max() == 0 for m in normal_masks)

    def test_deterministic_generation(self):
        a = make_dataset("oct", "train", image_size=16, seed=7,
                         counts={0: 4, 1: 4})
        b = make_dataset("oct", "train", image_size=16, seed=7,
                         counts={0: 4, 1: 4})
        assert np.allclose(a.images, b.images)
        assert np.all(a.labels == b.labels)

    def test_seed_changes_content(self):
        a = make_dataset("oct", "train", image_size=16, seed=1,
                         counts={0: 4, 1: 4})
        b = make_dataset("oct", "train", image_size=16, seed=2,
                         counts={0: 4, 1: 4})
        assert not np.allclose(a.images, b.images)

    def test_splits_differ(self):
        tr = make_dataset("face", "train", image_size=16, seed=0,
                          counts={0: 4, 1: 4})
        te = make_dataset("face", "test", image_size=16, seed=0,
                          counts={0: 4, 1: 4})
        assert not np.allclose(tr.images, te.images)

    def test_oct_has_four_classes(self):
        ds = make_dataset("oct", "train", image_size=16, seed=0,
                          counts={0: 2, 1: 2, 2: 2, 3: 2})
        assert ds.num_classes == 4
        assert set(ds.class_names) == {"NORMAL", "CNV", "DME", "DRUSEN"}

    def test_lesions_change_pixels_under_mask(self):
        """Class-associated features must live where the mask says."""
        ds = make_dataset("brain_tumor1", "train", image_size=32, seed=0,
                          counts={0: 1, 1: 8})
        for img, label, mask in zip(ds.images, ds.labels, ds.masks):
            if label == 1:
                inside = img[0][mask > 0.5]
                assert inside.size > 0
                # Tumor core is bright relative to the mean brain tissue.
                assert inside.mean() > img[0].mean()

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            make_dataset("nope")

    def test_bad_split_raises(self):
        with pytest.raises(ValueError):
            make_dataset("oct", split="validation")


class TestRegistry:
    def test_table1_counts_scaled(self):
        counts = table1_counts("oct", "train", divisor=100)
        row = TABLE1_COUNTS["oct"]
        assert counts[0] == row["train_normal"] // 100
        # abnormal split across three sub-classes
        assert set(counts) == {0, 1, 2, 3}

    def test_table1_counts_floor(self):
        counts = table1_counts("brain_tumor1", "test", divisor=10 ** 9)
        assert all(v >= 2 for v in counts.values())

    def test_table1_unknown_raises(self):
        with pytest.raises(KeyError):
            table1_counts("bogus", "train")

    def test_load_pair(self):
        tr, te = load_pair("brain_tumor1", image_size=16, divisor=400)
        assert tr.name.endswith("train")
        assert te.name.endswith("test")


class TestTransforms:
    def test_center_crop(self, rng):
        x = rng.standard_normal((2, 1, 10, 10))
        out = center_crop(x, 6)
        assert out.shape == (2, 1, 6, 6)
        assert np.allclose(out, x[:, :, 2:8, 2:8])

    def test_center_crop_too_small_raises(self, rng):
        with pytest.raises(ValueError):
            center_crop(rng.standard_normal((1, 1, 4, 4)), 8)

    def test_resize_nearest_shape(self, rng):
        out = resize_nearest(rng.standard_normal((1, 1, 8, 8)), 16)
        assert out.shape == (1, 1, 16, 16)

    def test_resize_bilinear_constant_preserved(self):
        x = np.full((1, 1, 8, 8), 0.7)
        out = resize_bilinear(x, 16)
        assert np.allclose(out, 0.7)

    def test_resize_bilinear_downscale(self, rng):
        out = resize_bilinear(rng.standard_normal((1, 2, 16, 16)), 8)
        assert out.shape == (1, 2, 8, 8)

    def test_random_flip_probability_extremes(self, rng):
        x = np.arange(8, dtype=float).reshape(1, 1, 1, 8)
        assert np.allclose(random_horizontal_flip(x, rng, p=0.0), x)
        flipped = random_horizontal_flip(x, rng, p=1.0)
        assert np.allclose(flipped[0, 0, 0], x[0, 0, 0, ::-1])

    def test_flip_does_not_mutate_input(self, rng):
        x = np.arange(8, dtype=float).reshape(1, 1, 1, 8)
        original = x.copy()
        random_horizontal_flip(x, rng, p=1.0)
        assert np.allclose(x, original)

    def test_to_unit_range(self):
        assert np.allclose(to_unit_range(np.array([-1.0, 0.5, 3.0])),
                           [0.0, 0.5, 1.0])


class TestTrainTestSplit:
    def test_stratified_proportions(self, rng):
        ds = ImageDataset(np.zeros((100, 1, 2, 2)),
                          np.repeat([0, 1], [80, 20]))
        train, test = train_test_split(ds, test_fraction=0.25, rng=rng)
        assert len(train) + len(test) == 100
        # Both classes present in both splits.
        assert set(np.unique(train.labels)) == {0, 1}
        assert set(np.unique(test.labels)) == {0, 1}
