"""Edge-case tests for explainers using lightweight mock models.

These tests isolate explainer *logic* (path truncation, weighting,
normalisation) from training quality by mocking the classifier and
generative model.
"""

import numpy as np
import pytest

from repro.core.manifold import ClassAssociatedManifold
from repro.explain.base import Explainer, SaliencyResult
from repro.explain.cae_explainer import CAEExplainer


class MockClassifier:
    """Deterministic classifier: class 1 probability = mean pixel value."""

    num_classes = 2

    def predict_proba(self, images, batch_size=64):
        images = np.asarray(images)
        p1 = images.mean(axis=(1, 2, 3))
        return np.stack([1 - p1, p1], axis=1)

    def predict(self, images, batch_size=64):
        return self.predict_proba(images).argmax(axis=1)


class MockCAE:
    """Fake CAE whose decoded brightness equals the CS code's first entry."""

    class _Cfg:
        cs_dim = 2

    config = _Cfg()

    def encode(self, images, batch_size=64):
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        n = len(images)
        cs = np.stack([images.mean(axis=(1, 2, 3)), np.zeros(n)], axis=1)
        is_codes = np.zeros((n, 1, 2, 2))
        return cs, is_codes

    def decode(self, cs_codes, is_codes, batch_size=64):
        cs_codes = np.atleast_2d(np.asarray(cs_codes))
        n = len(cs_codes)
        brightness = np.clip(cs_codes[:, 0], 0, 1)
        return brightness[:, None, None, None] * np.ones((n, 1, 8, 8))


@pytest.fixture()
def mock_setup():
    codes = np.array([[0.1, 0.0]] * 5 + [[0.9, 0.0]] * 5)
    labels = np.repeat([0, 1], 5)
    manifold = ClassAssociatedManifold(codes, labels)
    return MockCAE(), manifold, MockClassifier()


class TestCAEExplainerLogic:
    def test_series_stops_at_flip(self, mock_setup):
        cae, manifold, clf = mock_setup
        explainer = CAEExplainer(cae, manifold, clf, steps=10,
                                 stop_at_flip=True)
        dark = np.full((1, 8, 8), 0.1)      # class 0 territory
        series, probs = explainer.generate_series(dark, 0, 1)
        # The mock flips at brightness > 0.5 — well before 10 steps.
        assert len(series) < 10
        assert clf.predict(series[-1:])[0] == 1

    def test_series_full_length_without_stop(self, mock_setup):
        cae, manifold, clf = mock_setup
        explainer = CAEExplainer(cae, manifold, clf, steps=7,
                                 stop_at_flip=False)
        dark = np.full((1, 8, 8), 0.1)
        series, probs = explainer.generate_series(dark, 0, 1)
        assert len(series) == 7

    def test_probs_decrease_for_source_class(self, mock_setup):
        cae, manifold, clf = mock_setup
        explainer = CAEExplainer(cae, manifold, clf, steps=6,
                                 stop_at_flip=False)
        dark = np.full((1, 8, 8), 0.1)
        __, probs = explainer.generate_series(dark, 0, 1)
        # Source-class (0) probability must fall along the guided path.
        assert probs[-1] < probs[0]

    def test_saliency_nonnegative_and_finite(self, mock_setup):
        cae, manifold, clf = mock_setup
        explainer = CAEExplainer(cae, manifold, clf, steps=5)
        result = explainer.explain(np.full((1, 8, 8), 0.1), 0, 1)
        assert np.isfinite(result.saliency).all()
        assert result.saliency.min() >= 0.0


class TestExplainerBase:
    def test_explain_batch_uses_targets(self):
        captured = []

        class Recorder(Explainer):
            def explain(self, image, label, target_label=None):
                captured.append((label, target_label))
                return SaliencyResult(np.zeros(image.shape[1:]), label,
                                      target_label)

        images = np.zeros((3, 1, 4, 4))
        labels = np.array([0, 1, 1])
        targets = np.array([1, 0, 0])
        Recorder().explain_batch(images, labels, targets)
        assert captured == [(0, 1), (1, 0), (1, 0)]

    def test_base_explain_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Explainer().explain(np.zeros((1, 4, 4)), 0)


class TestPerturbationEdgeCases:
    def test_patch_selection_handles_borders(self):
        from repro.eval.perturbation import _select_patch_centers
        saliency = np.zeros((6, 6))
        saliency[0, 0] = 2.0     # corner maximum
        saliency[5, 5] = 1.0
        centers = _select_patch_centers(saliency, 2, patch=3)
        assert centers[0] == (0, 0)
        assert centers[1] == (5, 5)

    def test_patch_selection_more_patches_than_peaks(self):
        from repro.eval.perturbation import _select_patch_centers
        saliency = np.zeros((4, 4))
        centers = _select_patch_centers(saliency, 4, patch=3)
        assert len(centers) == 4      # falls back to remaining pixels

    def test_degradation_curve_of_mock(self, mock_setup):
        """With the mean-brightness mock classifier, covering bright
        pixels with random values must reduce the class-1 probability of
        a bright image."""
        from repro.eval.perturbation import perturbation_curve
        __, __, clf = mock_setup

        class BrightExplainer(Explainer):
            def explain(self, image, label, target_label=None):
                return SaliencyResult(image[0].copy(), label)

        bright = np.ones((1, 1, 8, 8)) * 0.95
        curve = perturbation_curve(BrightExplainer(), clf, bright,
                                   np.array([1]), n_patches=4, patch=3,
                                   rng=np.random.default_rng(0),
                                   fill="random")
        assert curve.drops[-1] > 0
