"""Unit tests for ``repro.nn.plan`` trace/replay and the serving-layer
:class:`~repro.serve.plans.PlanCache` (compile-once / replay-thereafter,
frozen-set revalidation, dtype invalidation, LRU bounds).

Explainer-level plan-vs-tape parity for all ten Table II methods lives
in ``test_explain_batch.py``; this file covers the machinery itself.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.plan import PlanMismatch, PlanUnsupported, trace
from repro.serve.plans import PlanCache


def _mlp(rng):
    l1 = nn.Linear(16, 8, rng=rng)
    l2 = nn.Linear(8, 4, rng=rng)
    return l1, l2


def _tape_run(l1, l2, images, labels):
    x = nn.Tensor(images, requires_grad=True)
    hidden = l1(x).relu()
    loss = nn.class_score_sum(l2(hidden), labels)
    loss.backward()
    return hidden.data, float(loss.data), x.grad


class TestTraceReplay:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.l1, self.l2 = _mlp(rng)
        self.images = rng.standard_normal((3, 16)).astype(np.float32)
        self.labels = np.array([0, 3, 1], dtype=np.int64)

    def _compile(self):
        def core(tr):
            x = tr.input("x", self.images)
            lab = tr.aux_input("labels", self.labels)
            hidden = self.l1(x).relu()
            tr.output("hidden", hidden)
            tr.grad("x_grad", x)
            tr.loss(nn.class_score_sum(self.l2(hidden), lab))
        return trace(core)

    def test_replay_matches_tape_across_inputs(self):
        plan = self._compile()
        rng = np.random.default_rng(7)
        for _ in range(2):                    # two fresh batches, one plan
            images = rng.standard_normal((3, 16)).astype(np.float32)
            labels = rng.integers(0, 4, size=3).astype(np.int64)
            out = plan.replay({"x": images, "labels": labels})
            hidden, loss, x_grad = _tape_run(self.l1, self.l2,
                                             images, labels)
            np.testing.assert_allclose(out["hidden"], hidden, atol=1e-6)
            np.testing.assert_allclose(out["x_grad"], x_grad, atol=1e-6)

    def test_replay_rejects_shape_dtype_and_missing_input(self):
        plan = self._compile()
        with pytest.raises(PlanMismatch):
            plan.replay({"x": self.images[:2], "labels": self.labels[:2]})
        with pytest.raises(PlanMismatch):
            plan.replay({"x": self.images.astype(np.float64),
                         "labels": self.labels})
        with pytest.raises(PlanMismatch):
            plan.replay({"x": self.images})

    def test_baked_labels_are_unsupported(self):
        """class_score_sum labels must come through aux_input — a plan
        that baked the trace batch's labels would silently explain the
        wrong classes on replay."""
        def core(tr):
            x = tr.input("x", self.images)
            hidden = self.l1(x).relu()
            tr.grad("x_grad", x)
            tr.loss(nn.class_score_sum(self.l2(hidden), self.labels))
        with pytest.raises(PlanUnsupported):
            trace(core)

    def test_non_scalar_loss_rejected(self):
        def core(tr):
            x = tr.input("x", self.images)
            tr.loss(self.l1(x))
        with pytest.raises(PlanUnsupported):
            trace(core)

    def test_plan_without_outputs_rejected(self):
        def core(tr):
            x = tr.input("x", self.images)
            self.l1(x)
        with pytest.raises(PlanUnsupported):
            trace(core)

    def test_all_const_subgraphs_fold(self):
        def core(tr):
            x = tr.input("x", self.images)
            scale = nn.Tensor(2.0) * nn.Tensor(3.0)   # constant subgraph
            tr.output("y", x * scale)
        plan = trace(core)
        assert plan.folded_ops >= 1
        out = plan.replay({"x": self.images})
        np.testing.assert_allclose(out["y"], self.images * 6.0, atol=1e-6)

    def test_replay_returns_arena_views(self):
        plan = self._compile()
        first = plan.replay({"x": self.images, "labels": self.labels})
        kept = first["hidden"].copy()
        other = np.asarray(self.images * 3.0, dtype=np.float32)
        plan.replay({"x": other, "labels": self.labels})
        # Documented contract: returned arrays are views into the arena,
        # valid until the next replay.
        assert not np.array_equal(first["hidden"], kept)


class _TinyPlanExplainer:
    """Minimal plan-eligible explainer over a linear head (no conv cost:
    keeps the cache tests fast and model-free)."""

    name = "tinyplan"
    needs_gradients = True
    plan_eligible = True
    compile_calls = 0

    def __init__(self, layer):
        self.layer = layer

    def _results(self, maps, labels):
        from repro.explain.base import SaliencyResult
        return [SaliencyResult(maps[i].reshape(4, 4), int(labels[i]))
                for i in range(len(labels))]

    def explain_batch(self, images, labels, target_labels=None):
        x = nn.Tensor(np.asarray(images), requires_grad=True)
        nn.class_score_sum(self.layer(x), np.asarray(labels)).backward()
        return self._results(x.grad, labels)

    def compile_plan(self, images, labels):
        type(self).compile_calls += 1

        def core(tr):
            x = tr.input("x", np.asarray(images))
            lab = tr.aux_input("labels", np.asarray(labels))
            tr.grad("x_grad", x)
            tr.loss(nn.class_score_sum(self.layer(x), lab))
        return trace(core)

    def explain_batch_planned(self, plan, images, labels,
                              target_labels=None):
        out = plan.replay({"x": np.asarray(images),
                           "labels": np.asarray(labels)})
        return self._results(out["x_grad"].copy(), labels)


class _TapeOnlyExplainer:
    name = "tapeonly"
    needs_gradients = False
    plan_eligible = False

    def explain_batch(self, images, labels, target_labels=None):
        from repro.explain.base import SaliencyResult
        assert not nn.is_grad_enabled()       # cache must apply no_grad
        return [SaliencyResult(np.zeros(images.shape[2:]), int(y))
                for y in labels]


@pytest.fixture()
def tiny_plan_setup():
    rng = np.random.default_rng(1)
    layer = nn.Linear(16, 4, rng=rng)
    explainer = _TinyPlanExplainer(layer)
    images = rng.standard_normal((3, 16)).astype(np.float32)
    labels = np.array([0, 2, 1], dtype=np.int64)
    cache = PlanCache()
    yield cache, explainer, images, labels
    cache.close()


class TestPlanCache:
    def test_compile_once_then_replay(self, tiny_plan_setup):
        cache, explainer, images, labels = tiny_plan_setup
        before = _TinyPlanExplainer.compile_calls
        tape = explainer.explain_batch(images, labels)
        for _ in range(3):
            results = cache.run(explainer, images, labels, None)
        assert _TinyPlanExplainer.compile_calls == before + 1
        stats = cache.stats()
        assert stats["compiled"] == 1
        assert stats["replay_hits"] == 3
        assert stats["fallbacks"] == 0
        assert stats["arena_bytes"] > 0
        for t, p in zip(tape, results):
            np.testing.assert_allclose(p.saliency, t.saliency, atol=1e-6)

    def test_new_shape_compiles_new_plan(self, tiny_plan_setup):
        cache, explainer, images, labels = tiny_plan_setup
        cache.run(explainer, images, labels, None)
        wide = np.concatenate([images, images])
        cache.run(explainer, wide, np.concatenate([labels, labels]), None)
        assert cache.stats()["compiled"] == 2
        assert cache.stats()["plans"] == 2

    def test_ineligible_method_falls_back(self, tiny_plan_setup):
        cache, _, images, labels = tiny_plan_setup
        batch = np.zeros((3, 1, 4, 4), dtype=np.float32)
        results = cache.run(_TapeOnlyExplainer(), batch, labels, None)
        assert len(results) == 3
        stats = cache.stats()
        assert stats["fallbacks"] == 1
        assert stats["compiled"] == 0

    def test_frozen_transition_falls_back_then_recovers(
            self, tiny_plan_setup):
        cache, explainer, images, labels = tiny_plan_setup
        cache.run(explainer, images, labels, None)
        with nn.frozen(explainer.layer):
            # Fingerprint differs from compile time: tape fallback, the
            # entry survives.
            cache.run(explainer, images, labels, None)
            assert cache.stats()["fallbacks"] == 1
        # Frozen set reverted: the cached plan is valid again.
        cache.run(explainer, images, labels, None)
        stats = cache.stats()
        assert stats["replay_hits"] == 2
        assert stats["compiled"] == 1

    def test_dtype_round_trip_invalidates(self, tiny_plan_setup):
        cache, explainer, images, labels = tiny_plan_setup
        cache.run(explainer, images, labels, None)
        assert cache.stats()["plans"] == 1
        try:
            nn.set_default_dtype(np.float64)
            assert cache.stats()["plans"] == 0
            assert cache.stats()["invalidations"] == 1
        finally:
            nn.set_default_dtype(np.float32)
        # Recompiles cleanly after the round trip.
        cache.run(explainer, images, labels, None)
        assert cache.stats()["compiled"] == 2
        assert cache.stats()["plans"] == 1

    def test_close_unregisters_listeners(self, tiny_plan_setup):
        cache, explainer, images, labels = tiny_plan_setup
        cache.run(explainer, images, labels, None)
        cache.close()
        try:
            nn.set_default_dtype(np.float64)   # must not touch the cache
        finally:
            nn.set_default_dtype(np.float32)
        assert cache.stats()["invalidations"] == 0

    def test_lru_bound_evicts(self):
        rng = np.random.default_rng(2)
        explainer = _TinyPlanExplainer(nn.Linear(16, 4, rng=rng))
        cache = PlanCache(max_plans=1)
        try:
            labels = np.array([0, 1], dtype=np.int64)
            a = rng.standard_normal((2, 16)).astype(np.float32)
            b = rng.standard_normal((4, 16)).astype(np.float32)
            cache.run(explainer, a, labels, None)
            cache.run(explainer, b, np.tile(labels, 2), None)
            stats = cache.stats()
            assert stats["plans"] == 1
            assert stats["evictions"] == 1
        finally:
            cache.close()


class TestEnginePlanIntegration:
    def test_engine_stats_plans_section(self, tiny_classifier,
                                        tiny_train_set):
        from repro.explain import GradCAMExplainer
        from repro.serve import ExplainEngine

        images = tiny_train_set.images[:4]
        labels = tiny_train_set.labels[:4]
        engine = ExplainEngine(tiny_classifier,
                               {"gradcam": GradCAMExplainer(tiny_classifier)},
                               max_batch=2)
        try:
            engine.explain_batch(images[:2], labels[:2], "gradcam")
            engine.explain_batch(images[2:], labels[2:], "gradcam")
            plans = engine.stats()["plans"]
            assert plans["compiled"] == 1
            assert plans["replay_hits"] == 2
            assert plans["arena_bytes"] > 0
        finally:
            engine.close()

    def test_engine_plans_off(self, tiny_classifier, tiny_train_set):
        from repro.explain import GradCAMExplainer
        from repro.serve import ExplainEngine

        engine = ExplainEngine(tiny_classifier,
                               {"gradcam": GradCAMExplainer(tiny_classifier)},
                               max_batch=2, plans=False)
        try:
            engine.explain_batch(tiny_train_set.images[:2],
                                 tiny_train_set.labels[:2], "gradcam")
            assert engine.stats()["plans"] is None
        finally:
            engine.close()
