"""Shared fixtures: tiny datasets and trained models reused across tests.

Training fixtures are session-scoped and deliberately small (16x16
images, few iterations) so the whole suite runs in minutes on CPU while
still exercising real training dynamics.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.classifiers import SmallResNet, train_classifier
from repro.core import CAEModel, train_cae
from repro.data import make_dataset
from repro.explain.base import Explainer, SaliencyResult


TINY_SIZE = 16


class StubExplainer(Explainer):
    """Deterministic stub for serving-runtime tests: returns zero maps,
    counts the maps it computes, optionally sleeping ``sleep_ms`` per
    map to simulate a method of known cost.  Import it (and the
    variants below) with ``from conftest import StubExplainer``."""

    name = "stub"
    needs_gradients = False

    def __init__(self, sleep_ms: float = 0.0):
        self.sleep_ms = sleep_ms
        self.computed = 0

    def explain_batch(self, images, labels, target_labels=None):
        if self.sleep_ms:
            time.sleep(self.sleep_ms * len(images) / 1000.0)
        self.computed += len(images)
        return [SaliencyResult(np.zeros(images.shape[2:]), int(y))
                for y in labels]


class GatedExplainer(StubExplainer):
    """Stub whose batches park on ``release`` until the test sets it;
    ``entered`` signals that a batch reached the explainer."""

    name = "gated"

    def __init__(self):
        super().__init__()
        self.entered = threading.Event()
        self.release = threading.Event()

    def explain_batch(self, images, labels, target_labels=None):
        self.entered.set()
        assert self.release.wait(timeout=10)
        return super().explain_batch(images, labels, target_labels)


class FlakyExplainer(StubExplainer):
    """Stub whose first ``failures`` batches raise a transient error
    (``failures=None``: every batch fails); ``calls`` counts batches."""

    name = "flaky"

    def __init__(self, failures: int | None = 1):
        super().__init__()
        self.failures = failures
        self.calls = 0

    def explain_batch(self, images, labels, target_labels=None):
        self.calls += 1
        if self.failures is None or self.calls <= self.failures:
            raise RuntimeError("transient backend failure")
        return super().explain_batch(images, labels, target_labels)


def numeric_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar-valued f wrt array x.

    Shared by the tensor/functional gradient-check tests (import it with
    ``from conftest import numeric_grad``); run those checks on float64
    arrays — float32 lacks the precision for 1e-6 differencing.
    """
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        fp = f()
        x[i] = old - eps
        fm = f()
        x[i] = old
        g[i] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


@pytest.fixture(scope="session")
def tiny_config() -> ReproConfig:
    return ReproConfig(image_size=TINY_SIZE, base_channels=8, seed=0)


@pytest.fixture(scope="session")
def tiny_train_set():
    return make_dataset("brain_tumor1", "train", image_size=TINY_SIZE,
                        seed=0, counts={0: 24, 1: 24})


@pytest.fixture(scope="session")
def tiny_test_set():
    return make_dataset("brain_tumor1", "test", image_size=TINY_SIZE,
                        seed=0, counts={0: 8, 1: 8})


@pytest.fixture(scope="session")
def tiny_oct_set():
    return make_dataset("oct", "train", image_size=TINY_SIZE, seed=0,
                        counts={0: 6, 1: 6, 2: 6, 3: 6})


@pytest.fixture(scope="session")
def tiny_classifier(tiny_train_set) -> SmallResNet:
    return train_classifier(tiny_train_set, epochs=6, width=8, seed=0)


@pytest.fixture(scope="session")
def tiny_cae(tiny_train_set, tiny_config) -> CAEModel:
    return train_cae(tiny_train_set, iterations=25, batch_size=4,
                     config=tiny_config)


@pytest.fixture(scope="session")
def tiny_manifold(tiny_cae, tiny_train_set):
    return tiny_cae.build_manifold(tiny_train_set)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
