"""Shared fixtures: tiny datasets and trained models reused across tests.

Training fixtures are session-scoped and deliberately small (16x16
images, few iterations) so the whole suite runs in minutes on CPU while
still exercising real training dynamics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.classifiers import SmallResNet, train_classifier
from repro.core import CAEModel, train_cae
from repro.data import make_dataset


TINY_SIZE = 16


def numeric_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar-valued f wrt array x.

    Shared by the tensor/functional gradient-check tests (import it with
    ``from conftest import numeric_grad``); run those checks on float64
    arrays — float32 lacks the precision for 1e-6 differencing.
    """
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        fp = f()
        x[i] = old - eps
        fm = f()
        x[i] = old
        g[i] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


@pytest.fixture(scope="session")
def tiny_config() -> ReproConfig:
    return ReproConfig(image_size=TINY_SIZE, base_channels=8, seed=0)


@pytest.fixture(scope="session")
def tiny_train_set():
    return make_dataset("brain_tumor1", "train", image_size=TINY_SIZE,
                        seed=0, counts={0: 24, 1: 24})


@pytest.fixture(scope="session")
def tiny_test_set():
    return make_dataset("brain_tumor1", "test", image_size=TINY_SIZE,
                        seed=0, counts={0: 8, 1: 8})


@pytest.fixture(scope="session")
def tiny_oct_set():
    return make_dataset("oct", "train", image_size=TINY_SIZE, seed=0,
                        counts={0: 6, 1: 6, 2: 6, 3: 6})


@pytest.fixture(scope="session")
def tiny_classifier(tiny_train_set) -> SmallResNet:
    return train_classifier(tiny_train_set, epochs=6, width=8, seed=0)


@pytest.fixture(scope="session")
def tiny_cae(tiny_train_set, tiny_config) -> CAEModel:
    return train_cae(tiny_train_set, iterations=25, batch_size=4,
                     config=tiny_config)


@pytest.fixture(scope="session")
def tiny_manifold(tiny_cae, tiny_train_set):
    return tiny_cae.build_manifold(tiny_train_set)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
