"""Tests for the persistent saliency store (tier 2): record round
trips, write-behind semantics, journal replay, crash consistency
(torn-record scan rebuild), segment compaction, the single-writer
lockfile, read-only openers, engine warm restart, process workers
serving store hits, and the cache's derived hit-rate stats."""

import os

import numpy as np
import pytest

from repro.explain.base import Explainer, SaliencyResult
from repro.serve import (ExplainEngine, ProcessExecutor, SaliencyCache,
                         SaliencyStore, StoreClosed, demo_spec,
                         request_key)


def _result(i: int, side: int = 8) -> SaliencyResult:
    rng = np.random.default_rng(i)
    return SaliencyResult(rng.random((side, side)).astype(np.float32),
                          label=i % 3, target_label=None,
                          meta={"source": "test"})


def _key(i: int):
    return (f"digest-{i:04d}", "gradcam", i % 3, None)


def _populate(store: SaliencyStore, n: int, cost: float = 5.0,
              side: int = 8) -> None:
    for i in range(n):
        store.put(_key(i), _result(i, side), cost_ms=cost + i)
    store.flush()


class CountingStub(Explainer):
    """Deterministic explainer whose compute count exposes what the
    store absorbed."""

    needs_gradients = False

    def __init__(self):
        self.computed = 0

    def explain_batch(self, images, labels, target_labels=None):
        self.computed += len(images)
        return [SaliencyResult(images[i].mean(axis=0) * (int(y) + 1),
                               int(y))
                for i, y in enumerate(labels)]


def _images(n: int, side: int = 8) -> np.ndarray:
    rng = np.random.default_rng(11)
    return rng.standard_normal((n, 1, side, side)).astype(np.float32)


# ----------------------------------------------------------------------
class TestStoreBasics:
    def test_round_trip_quantized_and_frozen(self, tmp_path):
        with SaliencyStore(str(tmp_path / "s")) as store:
            original = _result(3)
            store.put(_key(3), original, cost_ms=12.5)
            store.flush()
            hit = store.get(_key(3))
            assert hit is not None
            result, cost = hit
            assert cost == 12.5
            # float16 quantization: a ranking-preserving ~1e-3 round
            # trip, widened back to float32, frozen like tier-1 hits.
            assert result.saliency.dtype == np.float32
            np.testing.assert_allclose(result.saliency,
                                       original.saliency, rtol=2e-3, atol=2e-3)
            assert not result.saliency.flags.writeable
            assert result.label == original.label
            assert result.meta["source"] == "test"
            assert result.image_digest == _key(3)[0]
            assert store.get(_key(99)) is None
            assert store.stats()["misses"] == 1

    def test_pending_queue_hit_before_disk(self, tmp_path):
        store = SaliencyStore(str(tmp_path / "s"), write_behind=False)
        try:
            store.put(_key(1), _result(1), cost_ms=3.0)
            # Nothing drained yet (no flusher thread in synchronous
            # mode), yet the entry is already servable.
            assert store.stats()["writes"] == 0
            hit = store.get(_key(1))
            assert hit is not None and hit[1] == 3.0
            assert store.stats()["pending_hits"] == 1
        finally:
            store.close()

    def test_coalescing_and_drop_oldest(self, tmp_path):
        store = SaliencyStore(str(tmp_path / "s"), queue_depth=2,
                              write_behind=False)
        try:
            store.put(_key(1), _result(1), cost_ms=1.0)
            store.put(_key(1), _result(7), cost_ms=9.0)   # coalesces
            store.put(_key(2), _result(2), cost_ms=1.0)
            store.put(_key(3), _result(3), cost_ms=1.0)   # drops key 1
            stats = store.stats()
            assert stats["coalesced"] == 1
            assert stats["write_drops"] == 1
            store.flush()
            assert store.stats()["writes"] == 2
            assert store.get(_key(1)) is None             # dropped
            hit = store.get(_key(2))
            assert hit is not None
        finally:
            store.close()

    def test_put_rejected_when_closed(self, tmp_path):
        store = SaliencyStore(str(tmp_path / "s"))
        store.close()
        with pytest.raises(StoreClosed):
            store.put(_key(0), _result(0))
        store.close()                                     # idempotent

    def test_len_and_contains_like_stats(self, tmp_path):
        with SaliencyStore(str(tmp_path / "s")) as store:
            _populate(store, 4)
            stats = store.stats()
            assert stats["entries"] == 4
            assert stats["segments"] >= 1
            assert stats["bytes"] > 0


# ----------------------------------------------------------------------
class TestPersistence:
    def test_journal_replay_reopen(self, tmp_path):
        directory = str(tmp_path / "s")
        with SaliencyStore(directory) as store:
            _populate(store, 6, cost=10.0)
        with SaliencyStore(directory) as reopened:
            stats = reopened.stats()
            assert stats["entries"] == 6
            assert stats["rebuilds"] == 0                 # journal path
            for i in range(6):
                hit = reopened.get(_key(i))
                assert hit is not None
                result, cost = hit
                assert cost == 10.0 + i                   # GDSF persisted
                np.testing.assert_allclose(result.saliency,
                                           _result(i).saliency,
                                           rtol=2e-3, atol=2e-3)

    def test_corrupt_journal_falls_back_to_scan(self, tmp_path):
        directory = str(tmp_path / "s")
        with SaliencyStore(directory) as store:
            _populate(store, 5)
        with open(os.path.join(directory, "index.jsonl"), "a") as fh:
            fh.write("not json at all\n")
        with SaliencyStore(directory) as reopened:
            stats = reopened.stats()
            assert stats["rebuilds"] == 1
            assert stats["entries"] == 5
            assert all(reopened.get(_key(i)) is not None
                       for i in range(5))

    def test_torn_tail_record_dropped_scan_keeps_rest(self, tmp_path):
        """Crash consistency: a write torn mid-record (power loss during
        the last append) loses exactly that record.  Reopen detects the
        journal/segment mismatch, CRC-scans the segments, serves every
        earlier entry with its persisted cost, and keeps accepting
        appends."""
        directory = str(tmp_path / "s")
        n = 8
        with SaliencyStore(directory) as store:
            _populate(store, n, cost=20.0)
        segments = sorted(name for name in os.listdir(directory)
                          if name.endswith(".seg"))
        head = os.path.join(directory, segments[-1])
        size = os.path.getsize(head)
        with open(head, "r+b") as fh:
            fh.truncate(size - 7)                 # tear the last record
        reopened = SaliencyStore(directory)
        try:
            stats = reopened.stats()
            assert stats["rebuilds"] == 1
            assert stats["entries"] == n - 1
            assert reopened.get(_key(n - 1)) is None      # torn: gone
            for i in range(n - 1):                        # rest: intact
                hit = reopened.get(_key(i))
                assert hit is not None
                result, cost = hit
                assert cost == 20.0 + i
                np.testing.assert_allclose(result.saliency,
                                           _result(i).saliency,
                                           rtol=2e-3, atol=2e-3)
            # The truncated head still accepts appends.
            reopened.put(_key(100), _result(100), cost_ms=1.0)
            reopened.flush()
            assert reopened.get(_key(100)) is not None
        finally:
            reopened.close()
        # And the post-tear state round-trips through a clean reopen.
        with SaliencyStore(directory) as again:
            assert again.stats()["entries"] == n
            assert again.stats()["rebuilds"] == 0
            assert again.get(_key(100)) is not None


# ----------------------------------------------------------------------
class TestCapacity:
    def test_compaction_bounds_disk_usage(self, tmp_path):
        store = SaliencyStore(str(tmp_path / "s"),
                              capacity_bytes=16 * 1024,
                              segment_bytes=4 * 1024,
                              write_behind=False)
        try:
            for i in range(60):
                store.put(_key(i), _result(i, side=16),
                          cost_ms=float(i % 7))
                store.flush()
            stats = store.stats()
            assert stats["compactions"] >= 1
            assert stats["evictions"] >= 1
            assert stats["bytes"] <= 16 * 1024 + 4 * 1024
            assert 0 < stats["entries"] < 60
            # Every surviving index entry must still decode.
            survivors = [tuple(row[:4]) for row in store.index_snapshot()]
            assert survivors
            for key in survivors:
                key = (key[0], key[1], key[2], key[3])
                assert store.get(key) is not None
        finally:
            store.close()


    def test_stale_snapshot_entry_is_miss_not_error(self, tmp_path):
        """A read-only opener attached via index snapshot must survive
        the writer compacting (deleting) a segment its snapshot still
        points at: the probe is a clean miss — never FileNotFoundError
        — so callers fall back to compute."""
        directory = str(tmp_path / "s")
        with SaliencyStore(directory, capacity_bytes=16 * 1024,
                           segment_bytes=4 * 1024,
                           write_behind=False) as writer:
            for i in range(10):
                writer.put(_key(i), _result(i, side=16), cost_ms=1.0)
            writer.flush()
            reader = SaliencyStore.open_readonly(
                directory, snapshot=writer.index_snapshot())
            try:
                # Flood the writer past capacity so compaction retires
                # segments the reader's one-time snapshot references.
                for i in range(10, 60):
                    writer.put(_key(i), _result(i, side=16), cost_ms=1.0)
                    writer.flush()
                assert writer.stats()["compactions"] >= 1
                for i in range(10):        # hit or miss, never raise
                    reader.get(_key(i))
                assert reader.stats()["misses"] >= 1
            finally:
                reader.close()


# ----------------------------------------------------------------------
class TestSingleWriter:
    def test_second_writer_excluded_until_close(self, tmp_path):
        directory = str(tmp_path / "s")
        store = SaliencyStore(directory)
        with pytest.raises(RuntimeError, match="single-writer"):
            SaliencyStore(directory)
        store.close()
        with SaliencyStore(directory) as second:          # lock released
            assert not second.read_only

    def test_read_only_opener_and_snapshot(self, tmp_path):
        directory = str(tmp_path / "s")
        with SaliencyStore(directory) as writer:
            _populate(writer, 3, cost=4.0)
            # Readers coexist with the live writer: snapshot attach.
            reader = SaliencyStore.open_readonly(
                directory, snapshot=writer.index_snapshot())
            try:
                assert reader.read_only
                hit = reader.get(_key(1))
                assert hit is not None and hit[1] == 5.0
                with pytest.raises(StoreClosed, match="read-only"):
                    reader.put(_key(9), _result(9))
            finally:
                reader.close()
        # Directory-scan read-only open (no writer, no snapshot).
        reader = SaliencyStore.open_readonly(directory)
        try:
            assert all(reader.get(_key(i)) is not None for i in range(3))
        finally:
            reader.close()
        # The reader must not have stolen the writer lock.
        with SaliencyStore(directory) as writer2:
            assert writer2.stats()["entries"] == 3


# ----------------------------------------------------------------------
class TestEngineWarmRestart:
    def test_restart_serves_from_store_without_compute(self, tmp_path):
        directory = str(tmp_path / "store")
        images = _images(6)
        labels = [0, 1, 2, 0, 1, 2]

        first = CountingStub()
        with ExplainEngine(None, {"stub": first}, max_batch=4,
                           store=directory) as engine:
            originals = [engine.explain(images[i], labels[i], "stub")
                         for i in range(6)]
            assert first.computed == 6

        # Fresh engine, fresh stub, same directory: everything must be
        # served from disk with the persisted costs.
        second = CountingStub()
        with ExplainEngine(None, {"stub": second}, max_batch=4,
                           store=directory) as engine:
            warm = [engine.explain(images[i], labels[i], "stub")
                    for i in range(6)]
            stats = engine.stats()
            assert second.computed == 0
            assert stats["store_served"] == 6
            assert stats["weighted_hit_rate"] == 1.0
            assert stats["store"]["hits"] == 6
            for w, o in zip(warm, originals):
                np.testing.assert_allclose(w.saliency, o.saliency,
                                           rtol=2e-3, atol=2e-3)
                assert w.label == o.label
                assert w.image_digest == o.image_digest

    def test_all_store_hit_batch_skips_scheduler_observe(self, tmp_path):
        """A batch every request of which was a worker store hit did no
        compute: it must not feed the scheduler a fabricated
        zero-millisecond observation that would drag the adaptive
        per-map cost estimate toward zero."""
        from repro.explain.base import SaliencyResult as SR

        class _StoreHitExecutor:
            """Remote-compute stub whose every result is a store hit."""

            name = "fake-remote"

            def submit(self, fn, *args):
                from concurrent.futures import Future
                future = Future()
                future.set_running_or_notify_cancel()
                try:
                    future.set_result(fn(*args))
                except BaseException as exc:   # noqa: BLE001
                    future.set_exception(exc)
                return future

            def shutdown(self, wait=True):
                pass

            def run_batch(self, method, images, labels, targets,
                          keys=None):
                results = [SR(np.zeros(images.shape[2:], np.float32),
                              int(y), meta={"store_hit": True,
                                            "store_cost_ms": 7.0})
                           for y in labels]
                return results, 0.0

        engine = ExplainEngine(None, {"stub": CountingStub()},
                               max_batch=2, min_batch=1,
                               store=str(tmp_path / "s"),
                               executor=_StoreHitExecutor())
        try:
            observations = []
            engine._scheduler.observe = (
                lambda *args, **kwargs: observations.append(args))
            engine.explain_batch(_images(2), np.array([0, 1]), "stub")
            assert engine.stats()["batches_run"] >= 1
            assert observations == []
        finally:
            engine.close()

    def test_engine_without_store_reports_none(self):
        with ExplainEngine(None, {"stub": CountingStub()},
                           max_batch=2) as engine:
            engine.explain(_images(1)[0], 0, "stub")
            stats = engine.stats()
            assert stats["store"] is None
            assert stats["store_served"] == 0
            assert stats["hit_rate"] == 0.0


# ----------------------------------------------------------------------
class TestWorkerStore:
    def test_worker_serves_store_hits_read_only(self, tmp_path):
        directory = str(tmp_path / "store")
        spec = demo_spec(("gradcam",))
        classifier, explainers = spec.materialize()
        images = _images(4, side=16)
        labels = np.array([0, 1, 0, 1], dtype=np.int64)

        # Populate through a serial engine sharing the worker's spec.
        with ExplainEngine(classifier, explainers, max_batch=4,
                           store=directory) as engine:
            originals = engine.explain_batch(images, labels, "gradcam")

        executor = ProcessExecutor(spec, workers=1)
        reader = SaliencyStore.open_readonly(directory)
        try:
            attached = executor.attach_store(directory,
                                             reader.index_snapshot())
            assert attached == 1
            keys = [list(request_key(images[i], "gradcam",
                                     int(labels[i]), None))
                    for i in range(4)]
            results, batch_ms = executor.run_batch("gradcam", images,
                                                   labels, None,
                                                   keys=keys)
            assert all(r.meta.get("store_hit") for r in results)
            for r, o in zip(results, originals):
                np.testing.assert_allclose(r.saliency, o.saliency,
                                           rtol=2e-3, atol=2e-3)
            worker = executor.worker_stats()
            assert sum(w["store"]["hits"] for w in worker) == 4
            assert sum(w["maps"] for w in worker) == 0    # no compute

            # Mixed batch: two known keys, two unknown — the worker
            # computes only the misses and bills only their wall time.
            mixed = np.concatenate([images[:2], _images(2, side=16) + 5.0])
            mixed_labels = np.array([0, 1, 0, 1], dtype=np.int64)
            mixed_keys = [list(request_key(mixed[i], "gradcam",
                                           int(mixed_labels[i]), None))
                          for i in range(4)]
            results, _ = executor.run_batch("gradcam", mixed,
                                            mixed_labels, None,
                                            keys=mixed_keys)
            flags = [bool(r.meta.get("store_hit")) for r in results]
            assert flags == [True, True, False, False]
            worker = executor.worker_stats()
            assert sum(w["store"]["hits"] for w in worker) == 6
            assert sum(w["store"]["misses"] for w in worker) == 2
            assert sum(w["maps"] for w in worker) == 2
        finally:
            reader.close()
            executor.shutdown()


# ----------------------------------------------------------------------
class TestCacheRates:
    def test_hit_rate_and_weighted_hit_rate(self):
        cache = SaliencyCache(capacity=8)
        assert cache.stats()["hit_rate"] is None          # no traffic
        assert cache.stats()["weighted_hit_rate"] is None
        cache.put(_key(1), _result(1), cost_ms=30.0)      # computed
        assert cache.get(_key(1)) is not None             # hit: +30
        assert cache.get(_key(2)) is None                 # miss
        stats = cache.stats()
        assert stats["hit_rate"] == 0.5
        assert stats["weighted_hit_rate"] == pytest.approx(0.5)

    def test_uncomputed_inserts_do_not_bill_compute(self):
        cache = SaliencyCache(capacity=8)
        # A tier-2 promotion paid no compute now: the persisted cost
        # rides the entry (for eviction and future hit credit) but the
        # insert itself adds nothing to the requested-compute base.
        cache.put(_key(1), _result(1), cost_ms=40.0, computed=False)
        assert cache.insert_cost_ms == 0.0
        assert cache.get(_key(1)) is not None
        stats = cache.stats()
        assert stats["hit_cost_ms"] == 40.0
        assert stats["weighted_hit_rate"] == 1.0
