"""Integration tests: full pipelines spanning multiple subsystems."""

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.core import train_cae
from repro.data import make_dataset
from repro.eval import (ExperimentContext, ExperimentScale,
                        class_reassignment_rate, latent_separability,
                        perturbation_curve, probe_path)
from repro.explain import CAEExplainer, train_icam


class TestEndToEndExplanation:
    """Train everything on the tiny fixture and explain a test image."""

    def test_cae_explains_test_image(self, tiny_cae, tiny_manifold,
                                     tiny_classifier, tiny_test_set):
        explainer = CAEExplainer(tiny_cae, tiny_manifold, tiny_classifier,
                                 steps=5)
        idx = tiny_test_set.indices_of_class(1)[0]
        result = explainer.explain(tiny_test_set.images[idx], 1, 0)
        assert result.saliency.shape == tiny_test_set.images[idx].shape[1:]
        assert np.isfinite(result.saliency).all()

    def test_aopc_pipeline(self, tiny_cae, tiny_manifold, tiny_classifier,
                           tiny_test_set):
        explainer = CAEExplainer(tiny_cae, tiny_manifold, tiny_classifier,
                                 steps=4)
        curve = perturbation_curve(explainer, tiny_classifier,
                                   tiny_test_set.images[:3],
                                   tiny_test_set.labels[:3],
                                   n_patches=4, patch=3)
        assert np.isfinite(curve.aopc)
        assert curve.pd >= curve.aopc    # max >= mean always

    def test_manifold_separability_pipeline(self, tiny_cae, tiny_test_set):
        codes = tiny_cae.encode_class(tiny_test_set.images)
        mean, std = latent_separability(codes, tiny_test_set.labels,
                                        n_splits=4, n_estimators=10)
        assert 0.0 <= mean <= 1.0

    def test_reassignment_pipeline(self, tiny_cae, tiny_classifier,
                                   tiny_test_set):
        rate = class_reassignment_rate(tiny_cae, tiny_classifier,
                                       tiny_test_set, n_pairs=10)
        assert 0.0 <= rate <= 1.0

    def test_path_probe_pipeline(self, tiny_cae, tiny_manifold,
                                 tiny_classifier, tiny_test_set):
        __, is_code = tiny_cae.encode(tiny_test_set.images[0])
        probe = probe_path(tiny_cae, tiny_classifier,
                           tiny_manifold.centroid(0),
                           tiny_manifold.centroid(1),
                           is_code, target_label=1, steps=5)
        assert len(probe.probs) == 5


class TestMulticlassOCT:
    """The OCT dataset exercises the 1-vs-1 multi-class path."""

    def test_cae_trains_on_four_classes(self, tiny_oct_set):
        config = ReproConfig(image_size=16, base_channels=8, seed=0)
        model = train_cae(tiny_oct_set, iterations=4, batch_size=2,
                          config=config)
        manifold = model.build_manifold(tiny_oct_set)
        assert manifold.classes == (0, 1, 2, 3)
        assert len(manifold.counter_classes(0)) == 3

    def test_multiclass_paths_exist_to_every_counter(self, tiny_oct_set):
        config = ReproConfig(image_size=16, base_channels=8, seed=0)
        model = train_cae(tiny_oct_set, iterations=2, batch_size=2,
                          config=config)
        manifold = model.build_manifold(tiny_oct_set)
        code = manifold.codes[0]
        for counter in manifold.counter_classes(0):
            path = manifold.plan_path(code, 0, counter, steps=3)
            assert path.target_label == counter


class TestICAMComparison:
    """CAE and ICAM share architecture; compare their latent spaces."""

    def test_both_models_encode_same_shapes(self, tiny_train_set,
                                            tiny_config, tiny_cae):
        icam = train_icam(tiny_train_set, iterations=3, batch_size=2,
                          config=tiny_config)
        cae_codes = tiny_cae.encode_class(tiny_train_set.images[:4])
        icam_codes = icam.encode_attribute(tiny_train_set.images[:4])
        assert cae_codes.shape == icam_codes.shape


class TestExperimentContext:
    def test_context_builds_and_caches(self, tmp_path):
        scale = ExperimentScale(image_size=16, train_divisor=2000,
                                classifier_epochs=1, classifier_width=8,
                                cae_iterations=2, aux_epochs=1,
                                base_channels=8)
        ctx = ExperimentContext("brain_tumor1", scale,
                                cache_dir=str(tmp_path))
        clf = ctx.classifier
        assert "classifier" in ctx.train_times

        # Second context re-loads from cache without retraining.
        ctx2 = ExperimentContext("brain_tumor1", scale,
                                 cache_dir=str(tmp_path))
        clf2 = ctx2.classifier
        assert "classifier" not in ctx2.train_times
        images = ctx.test_set.images[:2]
        assert np.allclose(clf.predict_proba(images),
                           clf2.predict_proba(images))

    def test_cae_cache_roundtrip(self, tmp_path):
        scale = ExperimentScale(image_size=16, train_divisor=2000,
                                classifier_epochs=1, classifier_width=8,
                                cae_iterations=2, aux_epochs=1,
                                base_channels=8)
        ctx = ExperimentContext("brain_tumor1", scale,
                                cache_dir=str(tmp_path))
        cae = ctx.cae
        ctx2 = ExperimentContext("brain_tumor1", scale,
                                 cache_dir=str(tmp_path))
        images = ctx.test_set.images[:2]
        assert np.allclose(cae.encode_class(images),
                           ctx2.cae.encode_class(images))

    def test_sample_test_images(self, tmp_path):
        scale = ExperimentScale(image_size=16, train_divisor=2000)
        ctx = ExperimentContext("brain_tumor1", scale,
                                cache_dir=str(tmp_path))
        images, labels, masks = ctx.sample_test_images(3, abnormal_only=True)
        assert np.all(labels != 0)
        assert len(images) <= 3

    def test_engine_process_executor_wiring(self, tmp_path, monkeypatch):
        """``engine(executor="process", workers=N)`` must derive the
        worker-side spec from the context and own the resulting pool
        (reconfiguring the engine shuts it down).  The pool itself is
        faked — its spec replication is covered by the process-executor
        suite; this test pins the context wiring."""
        import repro.serve.executor as executor_mod

        created = {}

        class FakePool:
            name = "process"

            def __init__(self, spec, workers=2):
                created["spec"] = spec
                created["workers"] = workers

            def submit(self, fn, *args):
                from concurrent.futures import Future
                future = Future()
                future.set_result(fn(*args))
                return future

            def shutdown(self, wait=True):
                created["shutdown"] = True

        monkeypatch.setattr(executor_mod, "ProcessExecutor", FakePool)
        scale = ExperimentScale(image_size=16, train_divisor=2000,
                                classifier_epochs=1, classifier_width=8,
                                cae_iterations=2, aux_epochs=1,
                                base_channels=8, min_train_per_class=8,
                                min_test_per_class=4)
        ctx = ExperimentContext("brain_tumor1", scale,
                                cache_dir=str(tmp_path))
        engine = ctx.engine(include=("gradcam",), executor="process",
                            workers=3)
        assert engine.stats()["executor"] == "process"
        assert created["workers"] == 3
        spec = created["spec"]
        assert spec.factory == "repro.eval.pipeline:context_explainers"
        assert spec.kwargs["dataset_name"] == "brain_tumor1"
        assert spec.kwargs["include"] == ("gradcam",)
        # The spec is materializable in any process: it rebuilds the
        # same classifier from the disk cache the engine() call warmed.
        classifier, explainers = spec.materialize()
        assert set(explainers) == {"gradcam"}
        images = ctx.test_set.images[:2]
        np.testing.assert_allclose(classifier.predict_proba(images),
                                   ctx.classifier.predict_proba(images))
        # Reconfiguring invalidates the context-owned pool.
        ctx.engine(include=("gradcam",), executor="serial")
        assert created.get("shutdown") is True
